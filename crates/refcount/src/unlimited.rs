//! The ideal tracker: unbounded per-register dual counters with
//! instantaneous checkpoint recovery.
//!
//! Functionally this is an ISRB with unlimited entries and unbounded
//! counters, implemented independently (hash map keyed by register rather
//! than positional slots) so property tests can cross-check the two.

use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareRequest, SharingTracker, StorageReport,
    TrackerStats,
};
use regshare_types::hasher::FastMap;
use regshare_types::{PhysReg, RegClass};
use std::collections::VecDeque;

type Key = (u8, u16);

#[inline]
fn key(class: RegClass, preg: PhysReg) -> Key {
    (class.index() as u8, preg.index() as u16)
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    referenced: u64,
    committed: u64,
    referenced_committed: u64,
}

regshare_types::impl_snap!(Entry {
    referenced,
    committed,
    referenced_committed
});

/// The ideal (oracle) sharing tracker. See the module docs.
///
/// # Examples
///
/// ```
/// use regshare_refcount::{UnlimitedTracker, SharingTracker, ShareRequest,
///                         ShareKind, ReclaimRequest, ReclaimDecision};
/// use regshare_types::{ArchReg, PhysReg, RegClass};
///
/// let mut t = UnlimitedTracker::new();
/// let req = ShareRequest { class: RegClass::Int, preg: PhysReg::new(4),
///                          kind: ShareKind::Bypass { arch_dst: ArchReg::int(0) } };
/// assert!(t.try_share(&req));
/// let rec = ReclaimRequest { class: RegClass::Int, preg: PhysReg::new(4), arch: ArchReg::int(0), renews: false };
/// assert_eq!(t.on_reclaim(&rec), ReclaimDecision::Keep);
/// assert_eq!(t.on_reclaim(&rec), ReclaimDecision::Free);
/// ```
#[derive(Debug, Default)]
pub struct UnlimitedTracker {
    live: FastMap<Key, Entry>,
    checkpoints: VecDeque<(CheckpointId, FastMap<Key, u64>)>,
    next_ckpt: CheckpointId,
    stats: TrackerStats,
}

impl UnlimitedTracker {
    /// Creates an empty tracker.
    pub fn new() -> UnlimitedTracker {
        UnlimitedTracker::default()
    }

    fn free_key(&mut self, k: Key) {
        self.live.remove(&k);
        self.stats.entries_freed += 1;
        for (_, snap) in &mut self.checkpoints {
            snap.remove(&k);
        }
    }

    fn restore_with(
        &mut self,
        lookup: impl Fn(&Entry, Key) -> u64,
        freed: &mut Vec<(RegClass, PhysReg)>,
    ) {
        // Sort so the freed-register order (and thus downstream free-list
        // order) is independent of hash-map iteration order — required for
        // snapshot/resume runs to replay identically.
        let mut keys: Vec<Key> = self.live.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let e = self.live[&k];
            let ref_ck = lookup(&e, k);
            let class = if k.0 == 0 {
                RegClass::Int
            } else {
                RegClass::Fp
            };
            let preg = PhysReg::new(k.1 as usize);
            if e.committed > ref_ck {
                self.free_key(k);
                freed.push((class, preg));
            } else if e.committed == 0 && ref_ck == 0 {
                self.free_key(k);
            } else {
                self.live.get_mut(&k).expect("live entry").referenced = ref_ck;
            }
        }
    }
}

impl SharingTracker for UnlimitedTracker {
    fn name(&self) -> &'static str {
        "unlimited"
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        let e = self.live.entry(key(req.class, req.preg)).or_default();
        e.referenced += 1;
        self.stats.shares_accepted += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.live.len());
        true
    }

    fn on_sharer_commit(&mut self, req: &ShareRequest) {
        if let Some(e) = self.live.get_mut(&key(req.class, req.preg)) {
            e.referenced_committed += 1;
        }
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.stats.reclaims += 1;
        let k = key(req.class, req.preg);
        match self.live.get_mut(&k) {
            None => ReclaimDecision::Free,
            Some(e) => {
                self.stats.reclaim_cam_hits += 1;
                debug_assert!(e.committed <= e.referenced);
                if e.referenced == e.committed {
                    self.free_key(k);
                    ReclaimDecision::Free
                } else {
                    e.committed += 1;
                    ReclaimDecision::Keep
                }
            }
        }
    }

    fn checkpoint(&mut self) -> CheckpointId {
        let id = self.next_ckpt;
        self.next_ckpt += 1;
        let snap = self
            .live
            .iter()
            .map(|(&k, e)| (k, e.referenced))
            .collect::<FastMap<Key, u64>>();
        self.checkpoints.push_back((id, snap));
        self.stats.checkpoints_taken += 1;
        id
    }

    fn restore(&mut self, id: CheckpointId, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        while let Some((back_id, _)) = self.checkpoints.back() {
            if *back_id > id {
                self.checkpoints.pop_back();
            } else {
                break;
            }
        }
        let (ck_id, snap) = self.checkpoints.pop_back().expect("checkpoint exists");
        assert_eq!(ck_id, id, "restore to unknown checkpoint");
        self.restore_with(|_, k| snap.get(&k).copied().unwrap_or(0), freed);
    }

    fn release_checkpoint(&mut self, id: CheckpointId) {
        if let Some(pos) = crate::tracker::ckpt_pos(&self.checkpoints, id, |c| c.0) {
            self.checkpoints.remove(pos);
        }
    }

    fn restore_to_committed(&mut self, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        self.checkpoints.clear();
        self.restore_with(|e, _| e.referenced_committed, freed);
    }

    fn storage(&self) -> StorageReport {
        // Idealized: two 32-bit counters per physical register, both classes,
        // with a full referenced image per checkpoint.
        let regs = 2 * 256;
        StorageReport {
            main_bits: regs * 64,
            per_checkpoint_bits: regs * 32,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.live.contains_key(&key(class, preg))
    }

    fn shared_count(&self) -> usize {
        self.live.len()
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        regshare_types::snapshot::encode_map_sorted(&self.live, w);
        w.put_len(self.checkpoints.len());
        for (id, snap) in &self.checkpoints {
            w.put_u64(*id);
            regshare_types::snapshot::encode_map_sorted(snap, w);
        }
        w.put_u64(self.next_ckpt);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        self.live = regshare_types::snapshot::decode_map(r)?;
        let n = r.get_len()?;
        let mut checkpoints = VecDeque::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u64()?;
            let snap = regshare_types::snapshot::decode_map(r)?;
            checkpoints.push_back((id, snap));
        }
        self.checkpoints = checkpoints;
        self.next_ckpt = r.get_u64()?;
        self.stats = Snap::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ShareKind;
    use regshare_types::ArchReg;

    fn share(p: usize) -> ShareRequest {
        ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(0),
            },
        }
    }

    fn reclaim(p: usize) -> ReclaimRequest {
        ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            arch: ArchReg::int(0),
            renews: false,
        }
    }

    #[test]
    fn never_rejects() {
        let mut t = UnlimitedTracker::new();
        for p in 0..500 {
            for _ in 0..10 {
                assert!(t.try_share(&share(p)));
            }
        }
        assert_eq!(t.stats().shares_accepted, 5000);
    }

    #[test]
    fn figure3_example_matches_isrb() {
        let mut t = UnlimitedTracker::new();
        assert!(t.try_share(&share(1)));
        let ck = t.checkpoint();
        assert!(t.try_share(&share(1)));
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert_eq!(freed, vec![(RegClass::Int, PhysReg::new(1))]);
    }

    #[test]
    fn commit_flush_keeps_architectural_shares() {
        let mut t = UnlimitedTracker::new();
        t.try_share(&share(2));
        t.on_sharer_commit(&share(2));
        t.try_share(&share(2)); // speculative
        let mut freed = Vec::new();
        t.restore_to_committed(&mut freed);
        assert!(t.is_shared(RegClass::Int, PhysReg::new(2)));
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Free);
    }
}

//! Dependency-free binary snapshot codec shared by every stateful crate.
//!
//! Snapshots are flat little-endian byte streams with length-prefixed
//! containers — no self-description, no schema evolution, no external
//! crates. A snapshot file starts with a fixed header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RGSH"
//! 4       4     format version (u32 LE), currently 2
//! 8       8     context digest (u64 LE): CoreConfig ⊕ Program
//! ```
//!
//! The header is the compatibility contract: [`read_header`] refuses a
//! stream whose magic, version or digest does not match, with a typed
//! [`SnapError`] naming exactly what disagreed. Everything after the
//! header is the subsystem payload, written field by field via the
//! [`Snap`] (owned value) and [`Snapshot`] (load-into-place) traits.
//!
//! Canonical form: encoders must be deterministic functions of logical
//! state — hash maps are written in sorted key order ([`encode_map_sorted`])
//! — so `encode(decode(bytes)) == bytes` holds for every valid snapshot.
//!
//! # Examples
//!
//! ```
//! use regshare_types::snapshot::{Snap, SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! vec![1u64, 2, 3].encode(&mut w);
//! let bytes = w.finish();
//! let mut r = SnapReader::new(&bytes);
//! assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![1, 2, 3]);
//! ```

use crate::{ArchReg, Cycle, HistorySnapshot, PhysReg, RegClass, SeqNum};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Magic bytes opening every snapshot stream.
pub const MAGIC: [u8; 4] = *b"RGSH";

/// Current snapshot format version. Bump on ANY layout change — there is
/// deliberately no migration path: an old snapshot is refused, never
/// reinterpreted. Version 2: RDA free-slot stack joined the payload.
pub const FORMAT_VERSION: u32 = 2;

/// Typed decode failure. Every malformed input maps to one of these —
/// decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The stream was written by a different format version.
    BadVersion {
        /// Version recorded in the stream.
        found: u32,
        /// The only version this build reads ([`FORMAT_VERSION`]).
        supported: u32,
    },
    /// The stream was captured under a different `CoreConfig`/program.
    ConfigDigestMismatch {
        /// Digest recorded in the stream.
        found: u64,
        /// Digest of the configuration we tried to restore onto.
        expected: u64,
    },
    /// The stream ended before a field could be read in full.
    ShortRead {
        /// Byte offset at which the read started.
        offset: usize,
        /// Bytes the field needed.
        needed: usize,
        /// Total stream length.
        len: usize,
    },
    /// A structurally invalid value (bad enum tag, out-of-range index,
    /// non-UTF-8 string...).
    Corrupt {
        /// Byte offset of the offending value.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic { found } => {
                write!(f, "not a regshare snapshot (magic {found:02x?})")
            }
            SnapError::BadVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads version {supported})"
            ),
            SnapError::ConfigDigestMismatch { found, expected } => write!(
                f,
                "snapshot was captured under a different configuration \
                 (digest {found:016x}, expected {expected:016x})"
            ),
            SnapError::ShortRead {
                offset,
                needed,
                len,
            } => write!(
                f,
                "snapshot truncated: need {needed} byte(s) at offset {offset}, \
                 stream is {len} byte(s)"
            ),
            SnapError::Corrupt { offset, what } => {
                write!(f, "snapshot corrupt at offset {offset}: invalid {what}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian stream builder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    #[inline]
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a container length as a `u64`.
    #[inline]
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Appends raw bytes with no length prefix (fixed-size payloads).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a snapshot stream; every read is bounds-checked and
/// returns [`SnapError::ShortRead`] instead of panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte stream.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left in the stream.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Builds a [`SnapError::Corrupt`] anchored at the current offset —
    /// for decoders rejecting a structurally invalid value (enum tag,
    /// range check) they have already consumed.
    pub fn corrupt(&self, what: &'static str) -> SnapError {
        SnapError::Corrupt {
            offset: self.pos,
            what,
        }
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::ShortRead {
                offset: self.pos,
                needed: n,
                len: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.get_bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.get_bytes(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.get_bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.get_bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    #[inline]
    pub fn get_u128(&mut self) -> Result<u128, SnapError> {
        Ok(u128::from_le_bytes(self.get_bytes(16)?.try_into().unwrap()))
    }

    /// Reads a container length, rejecting lengths that could not
    /// possibly fit in the remaining stream (every element encodes to at
    /// least one byte), so corrupt prefixes cannot trigger huge
    /// allocations.
    pub fn get_len(&mut self) -> Result<usize, SnapError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw).map_err(|_| self.corrupt("container length"))?;
        if len > self.remaining() {
            return Err(SnapError::ShortRead {
                offset: self.pos,
                needed: len,
                len: self.buf.len(),
            });
        }
        Ok(len)
    }

    /// Fails with [`SnapError::Corrupt`] unless the stream is fully
    /// consumed — trailing garbage means the payload and the reader
    /// disagree about the layout.
    pub fn expect_eof(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(self.corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// Writes the snapshot header (magic, format version, context digest).
pub fn write_header(w: &mut SnapWriter, context_digest: u64) {
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(context_digest);
}

/// Reads and validates the snapshot header against `expected_digest`,
/// in check order: magic, version, digest.
pub fn read_header(r: &mut SnapReader<'_>, expected_digest: u64) -> Result<(), SnapError> {
    let magic: [u8; 4] = r.get_bytes(4)?.try_into().unwrap();
    if magic != MAGIC {
        return Err(SnapError::BadMagic { found: magic });
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let digest = r.get_u64()?;
    if digest != expected_digest {
        return Err(SnapError::ConfigDigestMismatch {
            found: digest,
            expected: expected_digest,
        });
    }
    Ok(())
}

/// An owned value with a canonical binary encoding.
///
/// For plain data (counters, queue entries, µ-ops). Stateful subsystems
/// that must be rebuilt from their configuration first implement
/// [`Snapshot`] instead.
pub trait Snap: Sized {
    /// Appends the canonical encoding of `self`.
    fn encode(&self, w: &mut SnapWriter);
    /// Decodes one value, consuming exactly what [`Snap::encode`] wrote.
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// A stateful subsystem that saves into / loads from a snapshot stream
/// **in place** (the receiver is first rebuilt from its configuration,
/// then overwritten with the recorded state). Object-safe, so trait
/// objects like the sharing trackers can participate.
pub trait Snapshot {
    /// Appends the subsystem's complete logical state.
    fn save_state(&self, w: &mut SnapWriter);
    /// Overwrites the subsystem's state from the stream.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

macro_rules! snap_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snap for $ty {
            #[inline]
            fn encode(&self, w: &mut SnapWriter) {
                w.$put(*self);
            }
            #[inline]
            fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$get()
            }
        }
    };
}

snap_prim!(u8, put_u8, get_u8);
snap_prim!(u16, put_u16, get_u16);
snap_prim!(u32, put_u32, get_u32);
snap_prim!(u64, put_u64, get_u64);
snap_prim!(u128, put_u128, get_u128);

impl Snap for usize {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        usize::try_from(r.get_u64()?).map_err(|_| r.corrupt("usize"))
    }
}

impl Snap for i32 {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u32(*self as u32);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_u32()? as i32)
    }
}

impl Snap for i64 {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.get_u64()? as i64)
    }
}

impl Snap for bool {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(r.corrupt("bool")),
        }
    }
}

impl Snap for String {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let bytes = r.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| r.corrupt("utf-8 string"))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(r.corrupt("Option tag")),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let len = r.get_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<T: Snap> Snap for Box<T> {
    fn encode(&self, w: &mut SnapWriter) {
        (**self).encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn encode(&self, w: &mut SnapWriter) {
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        match out.try_into() {
            Ok(arr) => Ok(arr),
            // We pushed exactly N elements above.
            Err(_) => unreachable!("array length mismatch"),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn encode(&self, w: &mut SnapWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Snap for RegClass {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(self.index() as u8);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(RegClass::Int),
            1 => Ok(RegClass::Fp),
            _ => Err(r.corrupt("RegClass")),
        }
    }
}

impl Snap for ArchReg {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u8(self.flat() as u8);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let flat = r.get_u8()? as usize;
        if flat >= ArchReg::COUNT {
            return Err(r.corrupt("ArchReg"));
        }
        Ok(ArchReg::from_flat(flat))
    }
}

impl Snap for PhysReg {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u16(self.index() as u16);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PhysReg::new(r.get_u16()? as usize))
    }
}

impl Snap for SeqNum {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SeqNum(r.get_u64()?))
    }
}

impl Snap for Cycle {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Cycle(r.get_u64()?))
    }
}

impl Snap for HistorySnapshot {
    fn encode(&self, w: &mut SnapWriter) {
        w.put_u64(self.ghist);
        w.put_u16(self.path);
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(HistorySnapshot {
            ghist: r.get_u64()?,
            path: r.get_u16()?,
        })
    }
}

/// Encodes a hash map in **sorted key order** — the canonical form that
/// makes `encode(decode(bytes)) == bytes` hold regardless of the map's
/// insertion history.
pub fn encode_map_sorted<K, V, S>(map: &HashMap<K, V, S>, w: &mut SnapWriter)
where
    K: Snap + Ord,
    V: Snap,
    S: BuildHasher,
{
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.put_len(entries.len());
    for (k, v) in entries {
        k.encode(w);
        v.encode(w);
    }
}

/// Decodes a hash map written by [`encode_map_sorted`].
pub fn decode_map<K, V, S>(r: &mut SnapReader<'_>) -> Result<HashMap<K, V, S>, SnapError>
where
    K: Snap + Eq + Hash,
    V: Snap,
    S: BuildHasher + Default,
{
    let len = r.get_len()?;
    let mut map = HashMap::with_capacity_and_hasher(len, S::default());
    for _ in 0..len {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        map.insert(k, v);
    }
    Ok(map)
}

/// Implements [`Snap`] for a struct by encoding its listed fields in
/// order. The field list is the layout contract — keep it exhaustive and
/// stable, and bump [`FORMAT_VERSION`] when it changes.
#[macro_export]
macro_rules! impl_snap {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::snapshot::Snap for $ty {
            fn encode(&self, w: &mut $crate::snapshot::SnapWriter) {
                $( $crate::snapshot::Snap::encode(&self.$field, w); )*
            }
            fn decode(
                r: &mut $crate::snapshot::SnapReader<'_>,
            ) -> Result<Self, $crate::snapshot::SnapError> {
                Ok(Self { $( $field: $crate::snapshot::Snap::decode(r)? ),* })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::FastMap;

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.encode(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        r.expect_eof().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xabu8);
        round_trip(0xab_cdu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX - 7);
        round_trip(usize::MAX);
        round_trip(-42i32);
        round_trip(i64::MIN);
        round_trip(true);
        round_trip(String::from("snapshot"));
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip(VecDeque::from(vec![9u64, 8]));
        round_trip([1u16, 2, 3]);
        round_trip((1u8, 2u64));
        round_trip((1u8, 2u64, String::from("x")));
        round_trip(Box::new(5u32));
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(RegClass::Fp);
        round_trip(ArchReg::fp(3));
        round_trip(PhysReg::new(129));
        round_trip(SeqNum(77));
        round_trip(Cycle(123_456));
        round_trip(HistorySnapshot {
            ghist: 0b1011,
            path: 0x7fff,
        });
    }

    #[test]
    fn short_reads_are_typed_not_panics() {
        let mut w = SnapWriter::new();
        w.put_u32(7);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            u64::decode(&mut r),
            Err(SnapError::ShortRead { needed: 8, .. })
        ));
    }

    #[test]
    fn huge_length_prefix_is_rejected_before_allocating() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(SnapError::ShortRead { .. })
        ));
    }

    #[test]
    fn invalid_tags_are_corrupt() {
        for (bytes, what) in [
            (vec![2u8], "bool"),
            (vec![9u8], "Option tag"),
            (vec![5u8], "RegClass"),
            (vec![200u8], "ArchReg"),
        ] {
            let mut r = SnapReader::new(&bytes);
            let err = match what {
                "bool" => bool::decode(&mut r).unwrap_err(),
                "Option tag" => Option::<u8>::decode(&mut r).unwrap_err(),
                "RegClass" => RegClass::decode(&mut r).unwrap_err(),
                _ => ArchReg::decode(&mut r).unwrap_err(),
            };
            assert_eq!(err, SnapError::Corrupt { offset: 1, what });
        }
    }

    #[test]
    fn header_checks_in_order() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 0x1234);
        let good = w.finish();
        let mut r = SnapReader::new(&good);
        read_header(&mut r, 0x1234).unwrap();
        r.expect_eof().unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_header(&mut SnapReader::new(&bad_magic), 0x1234),
            Err(SnapError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            read_header(&mut SnapReader::new(&bad_version), 0x1234),
            Err(SnapError::BadVersion { .. })
        ));

        assert_eq!(
            read_header(&mut SnapReader::new(&good), 0x9999),
            Err(SnapError::ConfigDigestMismatch {
                found: 0x1234,
                expected: 0x9999
            })
        );
    }

    #[test]
    fn maps_encode_canonically() {
        let mut a: FastMap<u64, u64> = FastMap::default();
        let mut b: FastMap<u64, u64> = FastMap::default();
        for k in [9u64, 3, 7, 1] {
            a.insert(k, k * 2);
        }
        for k in [1u64, 7, 3, 9] {
            b.insert(k, k * 2);
        }
        let enc = |m: &FastMap<u64, u64>| {
            let mut w = SnapWriter::new();
            encode_map_sorted(m, &mut w);
            w.finish()
        };
        assert_eq!(enc(&a), enc(&b));
        let bytes = enc(&a);
        let decoded: FastMap<u64, u64> = decode_map(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(decoded, a);
        assert_eq!(enc(&decoded), bytes);
    }

    #[test]
    fn errors_display_their_payload() {
        let cases: Vec<(SnapError, &str)> = vec![
            (SnapError::BadMagic { found: *b"NOPE" }, "not a regshare"),
            (
                SnapError::BadVersion {
                    found: 9,
                    supported: FORMAT_VERSION,
                },
                "version 9",
            ),
            (
                SnapError::ConfigDigestMismatch {
                    found: 1,
                    expected: 2,
                },
                "different configuration",
            ),
            (
                SnapError::ShortRead {
                    offset: 4,
                    needed: 8,
                    len: 6,
                },
                "truncated",
            ),
            (
                SnapError::Corrupt {
                    offset: 3,
                    what: "bool",
                },
                "invalid bool",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}

//! The daemon and its client, one binary.
//!
//! Daemon:
//!
//! ```text
//! serve --listen 127.0.0.1:7878 --cache-dir .regshare-cache \
//!       [--cache-max-bytes N] [--workers N] [--max-pending N] [--timeout-ms N]
//! ```
//!
//! Client (body to stdout, provenance meta line to stderr, exit 1 on a
//! server-reported error):
//!
//! ```text
//! serve --client 127.0.0.1:7878 --scenario scenarios/smoke.scenario \
//!       [--format table|json] [--warmup N] [--measure N] [--retry N]
//! serve --client 127.0.0.1:7878 --ping | --stats | --shutdown
//! ```
//!
//! An address containing `/` is a Unix-domain socket path.

use regshare_bench::Scenario;
use regshare_serve::client::Connection;
use regshare_serve::engine::{Engine, EngineConfig, Format};
use regshare_serve::server::Server;
use std::sync::Arc;

struct Args {
    listen: Option<String>,
    client: Option<String>,
    scenario: Option<String>,
    format: Format,
    warmup: Option<u64>,
    measure: Option<u64>,
    retry: u32,
    ping: bool,
    stats: bool,
    shutdown: bool,
    engine: EngineConfig,
}

fn usage() -> String {
    "usage:\n  serve --listen <addr> [--cache-dir DIR] [--cache-max-bytes N] \
     [--workers N] [--max-pending N] [--timeout-ms N]\n  serve --client <addr> \
     --scenario FILE [--format table|json] [--warmup N] [--measure N] [--retry N]\n  \
     serve --client <addr> --ping | --stats | --shutdown\n\
     an <addr> containing '/' is a unix socket path\n"
        .to_string()
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        client: None,
        scenario: None,
        format: Format::Table,
        warmup: None,
        measure: None,
        retry: 0,
        ping: false,
        stats: false,
        shutdown: false,
        engine: EngineConfig::default(),
    };
    fn value(argv: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    fn num<T: std::str::FromStr>(v: String, flag: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
    }
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--listen" => args.listen = Some(value(&mut argv, "--listen")?),
            "--client" => args.client = Some(value(&mut argv, "--client")?),
            "--scenario" => args.scenario = Some(value(&mut argv, "--scenario")?),
            "--format" => {
                args.format = match value(&mut argv, "--format")?.as_str() {
                    "table" => Format::Table,
                    "json" => Format::Json,
                    other => return Err(format!("--format: expected table|json, got {other:?}")),
                }
            }
            "--warmup" => args.warmup = Some(num(value(&mut argv, "--warmup")?, "--warmup")?),
            "--measure" => args.measure = Some(num(value(&mut argv, "--measure")?, "--measure")?),
            "--retry" => args.retry = num(value(&mut argv, "--retry")?, "--retry")?,
            "--ping" => args.ping = true,
            "--stats" => args.stats = true,
            "--shutdown" => args.shutdown = true,
            "--cache-dir" => args.engine.cache_dir = value(&mut argv, "--cache-dir")?,
            "--cache-max-bytes" => {
                args.engine.cache_max_bytes = Some(num(
                    value(&mut argv, "--cache-max-bytes")?,
                    "--cache-max-bytes",
                )?)
            }
            "--workers" => args.engine.workers = num(value(&mut argv, "--workers")?, "--workers")?,
            "--max-pending" => {
                args.engine.max_pending = num(value(&mut argv, "--max-pending")?, "--max-pending")?
            }
            "--timeout-ms" => {
                args.engine.timeout_ms = num(value(&mut argv, "--timeout-ms")?, "--timeout-ms")?
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (&args.listen, &args.client) {
        (Some(_), Some(_)) => Err("--listen and --client are mutually exclusive".to_string()),
        (None, None) => Err("need --listen (daemon) or --client (request)".to_string()),
        _ => Ok(args),
    }
}

fn run_daemon(addr: &str, config: EngineConfig) -> Result<(), String> {
    let engine = Arc::new(Engine::new(config.clone()).map_err(|e| e.to_string())?);
    let server = Server::bind(addr, engine).map_err(|e| e.to_string())?;
    eprintln!(
        "serve: listening on {} (cache {}, {} max pending, {} ms timeout)",
        server.local_addr(),
        config.cache_dir,
        config.max_pending,
        config.timeout_ms,
    );
    server.run().map_err(|e| e.to_string())
}

fn run_client(addr: &str, args: &Args) -> Result<(), String> {
    let mut conn = Connection::connect(addr, args.retry).map_err(|e| e.to_string())?;
    let reply = if args.ping {
        conn.ping()
    } else if args.stats {
        conn.stats()
    } else if args.shutdown {
        conn.shutdown()
    } else {
        let path = args
            .scenario
            .as_deref()
            .ok_or("--client needs --scenario (or --ping/--stats/--shutdown)")?;
        let mut scenario = Scenario::load(path).map_err(|e| e.to_string())?;
        if let Some(w) = args.warmup {
            scenario.options.warmup = Some(w);
        }
        if let Some(m) = args.measure {
            scenario.options.measure = Some(m);
        }
        conn.run(&scenario.render(), args.format)
    };
    match reply.map_err(|e| e.to_string())? {
        Ok(reply) => {
            // Body to stdout, provenance to stderr: the body stays
            // byte-diffable against the batch binaries' output.
            print!("{}", reply.body);
            eprintln!("[serve: {}]", reply.meta);
            Ok(())
        }
        Err(server_err) => Err(format!("server: {server_err}")),
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("serve: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    let result = if let Some(addr) = &args.listen {
        run_daemon(addr, args.engine.clone())
    } else {
        run_client(args.client.as_deref().unwrap(), &args)
    };
    if let Err(e) = result {
        eprintln!("serve: {e}");
        std::process::exit(1);
    }
}

//! Property tests: *finite* ISRBs against the unlimited-oracle tracker.
//!
//! The repo-level `isrb_property.rs` suite proves the unlimited ISRB
//! equivalent to the independently implemented [`UnlimitedTracker`]; these
//! tests cover the finite design points the paper actually builds (small
//! entry counts, narrow never-decremented counters) with the safety
//! property the reclaim protocol rests on: **a physical register is never
//! freed while the ISRB still records an outstanding mapping** — the
//! reclaim that observes `referenced == committed` is by construction the
//! one removing the *last* mapping.

use proptest::prelude::*;
use regshare_refcount::{
    Isrb, IsrbConfig, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
    UnlimitedTracker,
};
use regshare_types::{ArchReg, PhysReg, RegClass};

const PREGS: usize = 10;

#[derive(Debug, Clone)]
enum Ev {
    Share(u8),
    SharerCommit(u8),
    Reclaim(u8),
    Checkpoint,
    Restore,
    CommitFlush,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (0u8..PREGS as u8).prop_map(Ev::Share),
        2 => (0u8..PREGS as u8).prop_map(Ev::SharerCommit),
        5 => (0u8..PREGS as u8).prop_map(Ev::Reclaim),
        1 => Just(Ev::Checkpoint),
        1 => Just(Ev::Restore),
        1 => Just(Ev::CommitFlush),
    ]
}

/// Share/reclaim-only traffic (no recovery events), where an exact
/// outstanding-mapping model is possible.
fn flat_ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (0u8..PREGS as u8).prop_map(Ev::Share),
        2 => (0u8..PREGS as u8).prop_map(Ev::SharerCommit),
        5 => (0u8..PREGS as u8).prop_map(Ev::Reclaim),
    ]
}

fn share(p: u8) -> ShareRequest {
    ShareRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p as usize),
        kind: ShareKind::Bypass {
            arch_dst: ArchReg::int((p % 16) as usize),
        },
    }
}

fn reclaim(p: u8) -> ReclaimRequest {
    ReclaimRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p as usize),
        arch: ArchReg::int((p % 16) as usize),
        renews: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Exact model, no recovery events: with `outstanding[p]` counting the
    /// live mappings of `p` (original + accepted sharers), every reclaim of
    /// a tracked register must Keep until — and Free exactly at — the last
    /// outstanding mapping, across finite geometries with saturating
    /// counters.
    #[test]
    fn never_freed_with_outstanding_mappings(
        (entries, counter_bits, events) in (
            1usize..=8,
            2u32..=4,
            proptest::collection::vec(flat_ev_strategy(), 1..250),
        )
    ) {
        let mut isrb = Isrb::new(IsrbConfig {
            entries,
            counter_bits,
            ..IsrbConfig::default()
        });
        // outstanding[p] == 0 ⇔ p untracked (only its original mapping).
        let mut outstanding = [0u32; PREGS];
        for ev in events {
            match ev {
                Ev::Share(p) => {
                    let pi = p as usize;
                    if isrb.try_share(&share(p)) {
                        outstanding[pi] = outstanding[pi].max(1) + 1;
                        prop_assert!(isrb.is_shared(RegClass::Int, PhysReg::new(pi)));
                    } else {
                        // Rejected share (capacity or saturation) must not
                        // create tracking state for an untracked register.
                        prop_assert_eq!(
                            isrb.is_shared(RegClass::Int, PhysReg::new(pi)),
                            outstanding[pi] > 0
                        );
                    }
                }
                Ev::SharerCommit(p) => {
                    if isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                        isrb.on_sharer_commit(&share(p));
                    }
                }
                Ev::Reclaim(p) => {
                    let pi = p as usize;
                    let decision = if outstanding[pi] > 0 {
                        isrb.on_reclaim(&reclaim(p))
                    } else {
                        // Plain overwrite of an untracked register: always
                        // a CAM miss, always freeable.
                        let d = isrb.on_reclaim(&reclaim(p));
                        prop_assert_eq!(d, ReclaimDecision::Free);
                        continue;
                    };
                    // The safety property: Free only at the last mapping.
                    if outstanding[pi] > 1 {
                        prop_assert_eq!(
                            decision,
                            ReclaimDecision::Keep,
                            "p{} freed with {} outstanding mappings",
                            p,
                            outstanding[pi]
                        );
                        outstanding[pi] -= 1;
                        prop_assert!(isrb.is_shared(RegClass::Int, PhysReg::new(pi)));
                    } else {
                        prop_assert_eq!(
                            decision,
                            ReclaimDecision::Free,
                            "p{} kept alive past its last mapping",
                            p
                        );
                        outstanding[pi] = 0;
                        prop_assert!(!isrb.is_shared(RegClass::Int, PhysReg::new(pi)));
                    }
                }
                Ev::Checkpoint | Ev::Restore | Ev::CommitFlush => unreachable!(),
            }
            prop_assert!(isrb.shared_count() <= entries);
        }
    }

    /// Full event mix (checkpoints, restores, commit flushes): a finite-
    /// capacity ISRB fed only the shares it accepted must stay in lockstep
    /// with the unlimited-oracle tracker fed the same accepted stream —
    /// identical reclaim decisions, identical recovery free-lists,
    /// identical shared sets. Wide counters isolate the capacity dimension.
    #[test]
    fn finite_isrb_matches_oracle_on_accepted_stream(
        (entries, events) in (1usize..=8, proptest::collection::vec(ev_strategy(), 1..250))
    ) {
        let mut isrb = Isrb::new(IsrbConfig {
            entries,
            counter_bits: 31,
            ..IsrbConfig::default()
        });
        let mut ideal = UnlimitedTracker::new();
        let mut ckpts: Vec<(u64, u64)> = Vec::new();
        // Loose plausibility bound on reclaims (one per live mapping).
        let mut mappings = [0i32; PREGS];
        for ev in events {
            match ev {
                Ev::Share(p) => {
                    if isrb.try_share(&share(p)) {
                        // Forward only accepted shares: the optimization is
                        // aborted (not retried) on rejection, so the oracle
                        // never sees it.
                        prop_assert!(ideal.try_share(&share(p)));
                        if mappings[p as usize] == 0 {
                            mappings[p as usize] = 1;
                        }
                        mappings[p as usize] += 1;
                    }
                }
                Ev::SharerCommit(p) => {
                    if isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                        isrb.on_sharer_commit(&share(p));
                        ideal.on_sharer_commit(&share(p));
                    }
                }
                Ev::Reclaim(p) => {
                    if mappings[p as usize] > 0 {
                        let a = isrb.on_reclaim(&reclaim(p));
                        let b = ideal.on_reclaim(&reclaim(p));
                        prop_assert_eq!(a, b, "reclaim decision diverged for p{}", p);
                        mappings[p as usize] -= 1;
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                            mappings[p as usize] = 0;
                        }
                    }
                }
                Ev::Checkpoint => ckpts.push((isrb.checkpoint(), ideal.checkpoint())),
                Ev::Restore => {
                    if let Some((a, b)) = ckpts.pop() {
                        let mut fa = Vec::new();
                        let mut fb = Vec::new();
                        isrb.restore(a, &mut fa);
                        ideal.restore(b, &mut fb);
                        fa.sort();
                        fb.sort();
                        prop_assert_eq!(&fa, &fb, "restore freed different registers");
                        for (_, preg) in fa {
                            mappings[preg.index()] = 0;
                        }
                        for (p, m) in mappings.iter_mut().enumerate() {
                            if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                                *m = (*m).min(1);
                            }
                        }
                    }
                }
                Ev::CommitFlush => {
                    let mut fa = Vec::new();
                    let mut fb = Vec::new();
                    isrb.restore_to_committed(&mut fa);
                    ideal.restore_to_committed(&mut fb);
                    fa.sort();
                    fb.sort();
                    prop_assert_eq!(&fa, &fb, "commit flush freed different registers");
                    ckpts.clear();
                    for (_, preg) in fa {
                        mappings[preg.index()] = 0;
                    }
                    for (p, m) in mappings.iter_mut().enumerate() {
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                            *m = (*m).min(1);
                        }
                    }
                }
            }
            prop_assert!(isrb.shared_count() <= entries, "occupancy exceeded capacity");
            for p in 0..PREGS {
                prop_assert_eq!(
                    isrb.is_shared(RegClass::Int, PhysReg::new(p)),
                    ideal.is_shared(RegClass::Int, PhysReg::new(p)),
                    "shared-set diverged for p{}", p
                );
            }
        }
    }
}

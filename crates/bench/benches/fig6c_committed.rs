//! **Figure 6(c)**: bypassing from committed instructions (lazy register
//! reclaiming via the ROB `release_head` pointer) vs in-window SMB only,
//! at unlimited and 24-entry ISRB.
//!
//! Paper shape: generally marginal (only the STLF/L1 latency can be hidden
//! for committed producers), sometimes harmful at 24 entries because
//! committed bypasses consume ISRB entries that in-window bypassing needs;
//! latency-bound outliers (astar) still profit.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::CoreConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    let mut t = Table::new(vec![
        "bench",
        "eagerUnl%",
        "lazyUnl%",
        "eager24%",
        "lazy24%",
        "byp_from_committed",
    ]);
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for wl in suite() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string()];
        let mut from_committed = 0;
        for (i, (entries, lazy)) in [(0usize, false), (0, true), (24, false), (24, true)]
            .into_iter()
            .enumerate()
        {
            let mut cfg = CoreConfig::hpca16().with_smb().with_isrb_entries(entries);
            cfg.smb_from_committed = lazy;
            let m = measure(&wl, cfg, window);
            let sp = speedup_pct(base.ipc(), m.ipc());
            geo[i].push(1.0 + sp / 100.0);
            cells.push(format!("{sp:+.2}"));
            if lazy && entries == 0 {
                from_committed = m.stats.bypass_from_committed;
            }
        }
        cells.push(format!("{from_committed}"));
        t.row(cells);
    }
    println!("# Figure 6(c): eager vs lazy reclaim (bypass from committed)\n");
    t.print();
    for (i, l) in ["eager-unl", "lazy-unl", "eager-24", "lazy-24"]
        .iter()
        .enumerate()
    {
        let g = (geomean(&geo[i]).unwrap_or(1.0) - 1.0) * 100.0;
        println!("geomean speedup, {l}: {g:+.2}%");
    }
}

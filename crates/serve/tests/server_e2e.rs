//! End-to-end over real sockets: bind, ping, submit the `.scenario` text
//! format over the wire, verify cold/warm provenance and byte-identical
//! bodies, protocol errors, stats, shutdown — on TCP and (on Unix) a
//! Unix-domain socket.

use regshare_bench::{render_report, RunOptions, Scenario, VariantSpec};
use regshare_serve::client::Connection;
use regshare_serve::engine::{Engine, EngineConfig, Format};
use regshare_serve::server::Server;
use std::path::PathBuf;
use std::sync::Arc;

fn tiny(name: &str) -> Scenario {
    Scenario::builder(name)
        .options(RunOptions::default().warmup(500).measure(1_500))
        .workloads(&["crafty"])
        .variant("base", VariantSpec::hpca16())
        .variant("both", VariantSpec::preset("me_smb"))
        .build()
        .unwrap()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("regshare-serve-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_server(addr: &str, dir: &TempDir) -> (String, std::thread::JoinHandle<()>) {
    let engine = Arc::new(
        Engine::new(EngineConfig {
            cache_dir: dir.0.join("cache").to_str().unwrap().to_string(),
            workers: 2,
            ..EngineConfig::default()
        })
        .unwrap(),
    );
    let server = Server::bind(addr, engine).unwrap();
    let bound = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().unwrap());
    (bound, handle)
}

#[test]
fn tcp_end_to_end() {
    let dir = TempDir::new("tcp");
    // Port 0: the OS picks a free port; local_addr reports it.
    let (addr, handle) = start_server("127.0.0.1:0", &dir);
    let mut conn = Connection::connect(&addr, 5).unwrap();

    // Liveness.
    let pong = conn.ping().unwrap().unwrap();
    assert_eq!(pong.meta, "pong len=0");

    // Cold run: the checked-in text format is the wire format.
    let scenario = tiny("e2e_tcp");
    let cold = conn
        .run(&scenario.render(), Format::Table)
        .unwrap()
        .unwrap();
    assert_eq!(cold.meta_field("cells"), Some(2));
    assert_eq!(cold.meta_field("computed"), Some(2));
    let grid = scenario.to_sweep().unwrap().run().unwrap();
    assert_eq!(cold.body, render_report(&scenario, &grid).unwrap());

    // Warm run on a second connection: fully cached, byte-identical.
    let mut conn2 = Connection::connect(&addr, 0).unwrap();
    let warm = conn2
        .run(&scenario.render(), Format::Table)
        .unwrap()
        .unwrap();
    assert_eq!(warm.meta_field("computed"), Some(0));
    assert_eq!(warm.meta_field("cached"), Some(2));
    assert_eq!(warm.body, cold.body);

    // A bad scenario is a typed wire error, and the connection survives.
    let err = conn
        .run("scenario bad\nworkload no_such_workload\n", Format::Table)
        .unwrap()
        .unwrap_err();
    assert!(err.starts_with("scenario: "), "got {err:?}");
    assert!(conn.ping().unwrap().is_ok(), "connection still usable");

    // Counters made it into stats.
    let stats = conn.stats().unwrap().unwrap();
    assert!(stats.body.contains("computed_cells 2"), "{}", stats.body);
    assert!(stats.body.contains("cache_entries 2"), "{}", stats.body);

    // Shutdown stops the accept loop and joins cleanly.
    let bye = conn.shutdown().unwrap().unwrap();
    assert_eq!(bye.meta, "bye len=0");
    handle.join().unwrap();
}

#[test]
fn unknown_variant_is_one_err_line_and_daemon_keeps_serving() {
    let dir = TempDir::new("unknown-variant");
    let (addr, handle) = start_server("127.0.0.1:0", &dir);
    let mut conn = Connection::connect(&addr, 5).unwrap();

    // A variant naming a config preset that does not exist: the reply is
    // exactly one typed `err` line — the daemon neither panics nor drops
    // the connection.
    let bad = "name = \"bad_variant\"\nwarmup = 500\nmeasure = 1500\n\
               \n[variant.base]\npreset = \"hpca16\"\n\
               \n[variant.doom]\npreset = \"no_such_preset\"\n";
    let err = conn.run(bad, Format::Table).unwrap().unwrap_err();
    assert!(err.starts_with("scenario: "), "got {err:?}");
    assert!(!err.contains('\n'), "error replies are one line");

    // The same connection immediately serves a real request — an
    // assembled corpus kernel addressed through the text format.
    let good = "name = \"after_err\"\nkind = \"asm\"\nkernel = \"quicksort\"\n\
                warmup = 500\nmeasure = 1500\n\
                \n[variant.base]\npreset = \"hpca16\"\n";
    let ok = conn.run(good, Format::Table).unwrap().unwrap();
    assert_eq!(ok.meta_field("cells"), Some(1));
    assert!(ok.body.contains("asm-quicksort"), "{}", ok.body);

    conn.shutdown().unwrap().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_commands_get_protocol_errors() {
    use std::io::{BufRead, BufReader, Write};
    let dir = TempDir::new("proto");
    let (addr, handle) = start_server("127.0.0.1:0", &dir);

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.write_all(b"frobnicate\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("err protocol: "), "got {line:?}");

    // The connection is still alive after the error.
    stream.write_all(b"ping\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "ok pong len=0\n");

    stream.write_all(b"shutdown\n").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "ok bye len=0\n");
    handle.join().unwrap();
}

#[cfg(unix)]
#[test]
fn unix_socket_end_to_end() {
    let dir = TempDir::new("unix");
    std::fs::create_dir_all(&dir.0).unwrap();
    let sock = dir.0.join("serve.sock").to_str().unwrap().to_string();
    let (addr, handle) = start_server(&sock, &dir);
    assert_eq!(addr, sock);

    let mut conn = Connection::connect(&sock, 5).unwrap();
    let scenario = tiny("e2e_unix");
    let cold = conn.run(&scenario.render(), Format::Json).unwrap().unwrap();
    assert_eq!(cold.meta_field("computed"), Some(2));
    assert!(cold.body.contains("\"cached\": false"));

    let warm = conn.run(&scenario.render(), Format::Json).unwrap().unwrap();
    assert_eq!(warm.meta_field("computed"), Some(0));
    assert!(warm.body.contains("\"cached\": true"));

    conn.shutdown().unwrap().unwrap();
    handle.join().unwrap();
    assert!(
        !std::path::Path::new(&sock).exists(),
        "socket file cleaned up on shutdown"
    );
}

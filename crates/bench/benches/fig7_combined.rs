//! **Figure 7** + §6.3: ME and SMB combined, as a function of ISRB size,
//! plus the counter-width study and the ISRB traffic statistics.
//!
//! Paper shape: with 32 entries combined performance is often higher than
//! either mechanism alone and ≈ unlimited (5.5% vs 5.6% geomean in the
//! paper); 24 entries is a good tradeoff; 16 entries often loses to the
//! best single mechanism because ME and SMB compete for entries. 3-bit
//! counters are within ~0.1% gmean of 32-bit. Mean µ-op distance between
//! ISRB allocations ≈ 20; between reclaim CAM checks ≈ 3-4.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::CoreConfig;
use regshare_core::TrackerKind;
use regshare_refcount::IsrbConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    let mut t = Table::new(vec![
        "bench",
        "both16%",
        "both24%",
        "both32%",
        "bothUnl%",
        "me_only%",
        "smb_only%",
    ]);
    let sizes = [16usize, 24, 32, 0];
    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut share_dist = Vec::new();
    let mut cam_dist = Vec::new();
    for wl in suite() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string()];
        for (i, &n) in sizes.iter().enumerate() {
            let m = measure(
                &wl,
                CoreConfig::hpca16()
                    .with_me()
                    .with_smb()
                    .with_isrb_entries(n),
                window,
            );
            let sp = speedup_pct(base.ipc(), m.ipc());
            geo[i].push(1.0 + sp / 100.0);
            cells.push(format!("{sp:+.2}"));
            if n == 32 {
                if let Some(d) = m.stats.share_distance.mean() {
                    share_dist.push(d);
                }
                if let Some(d) = m.stats.reclaim_check_distance.mean() {
                    cam_dist.push(d);
                }
            }
        }
        let me = measure(
            &wl,
            CoreConfig::hpca16().with_me().with_isrb_entries(0),
            window,
        );
        let smb = measure(
            &wl,
            CoreConfig::hpca16().with_smb().with_isrb_entries(0),
            window,
        );
        let me_sp = speedup_pct(base.ipc(), me.ipc());
        let smb_sp = speedup_pct(base.ipc(), smb.ipc());
        geo[4].push(1.0 + me_sp / 100.0);
        geo[5].push(1.0 + smb_sp / 100.0);
        cells.push(format!("{me_sp:+.2}"));
        cells.push(format!("{smb_sp:+.2}"));
        t.row(cells);
    }
    println!("# Figure 7: ME + SMB combined vs ISRB size\n");
    t.print();
    for (i, l) in [
        "both-16",
        "both-24",
        "both-32",
        "both-unl",
        "me-only-unl",
        "smb-only-unl",
    ]
    .iter()
    .enumerate()
    {
        let g = (geomean(&geo[i]).unwrap_or(1.0) - 1.0) * 100.0;
        println!("geomean speedup, {l}: {g:+.2}%");
    }

    // §6.3 counter width study on a representative subset.
    println!("\n# §6.3: counter width (32-entry ISRB, ME+SMB)\n");
    let mut tw = Table::new(vec!["bench", "1bit%", "2bit%", "3bit%", "4bit%", "31bit%"]);
    for wl in suite() {
        if !["crafty", "hmmer", "astar", "applu", "namd", "bzip"].contains(&wl.name) {
            continue;
        }
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string()];
        for bits in [1u32, 2, 3, 4, 31] {
            let cfg = CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_tracker(TrackerKind::Isrb(IsrbConfig {
                    entries: 32,
                    counter_bits: bits,
                    ..IsrbConfig::hpca16()
                }));
            let m = measure(&wl, cfg, window);
            cells.push(format!("{:+.2}", speedup_pct(base.ipc(), m.ipc())));
        }
        tw.row(cells);
    }
    tw.print();

    // §6.3 ISRB traffic.
    println!("\n# §6.3: ISRB traffic (32-entry, ME+SMB)");
    println!(
        "mean µ-op distance between ISRB allocations:   {:.1} (paper: 19.7, min 3.8)",
        share_dist.iter().sum::<f64>() / share_dist.len().max(1) as f64
    );
    println!(
        "mean µ-op distance between reclaim CAM checks: {:.1} (paper: 3.4, min 2.3)",
        cam_dist.iter().sum::<f64>() / cam_dist.len().max(1) as f64
    );
}

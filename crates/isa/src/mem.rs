//! Sparse byte-addressable memory for the functional interpreter.

use regshare_types::hasher::{mix64, FastMap};
use regshare_types::Addr;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse paged memory.
///
/// Uninitialized bytes read as a deterministic pseudo-random pattern derived
/// from the address ([`mix64`]), so data-dependent branches over untouched
/// memory behave identically across runs without pre-initialization.
///
/// # Examples
///
/// ```
/// use regshare_isa::mem::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write(0x2000, 8, 0xdead_beef);
/// assert_eq!(m.read(0x2000, 8), 0xdead_beef);
/// // Deterministic "uninitialized" reads:
/// assert_eq!(m.read(0x9000, 8), m.read(0x9000, 8));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: FastMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    /// Deterministic content of an untouched byte.
    #[inline]
    fn background_byte(addr: Addr) -> u8 {
        (mix64(addr >> 3) >> ((addr & 7) * 8)) as u8
    }

    #[inline]
    fn read_byte(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => Self::background_byte(addr),
        }
    }

    #[inline]
    fn write_byte(&mut self, addr: Addr, value: u8) {
        let page = self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| {
            let mut p = Box::new([0u8; PAGE_SIZE]);
            let base = addr & !((PAGE_SIZE as u64) - 1);
            for (i, b) in p.iter_mut().enumerate() {
                *b = Self::background_byte(base + i as u64);
            }
            p
        });
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `size` bytes (1, 2, 4 or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn read(&self, addr: Addr, size: u8) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut v = 0u64;
        for i in (0..size as u64).rev() {
            v = (v << 8) | self.read_byte(addr + i) as u64;
        }
        v
    }

    /// Writes the low `size` bytes (1, 2, 4 or 8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn write(&mut self, addr: Addr, size: u8, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        for i in 0..size as u64 {
            self.write_byte(addr + i, (value >> (i * 8)) as u8);
        }
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// A copy-on-write overlay over a base [`SparseMemory`], used for wrong-path
/// execution: wrong-path stores land in the overlay and never reach the
/// architectural memory.
///
/// # Examples
///
/// ```
/// use regshare_isa::mem::{SparseMemory, MemOverlay};
/// let mut base = SparseMemory::new();
/// base.write(0x100, 8, 7);
/// let mut ov = MemOverlay::new();
/// ov.write(0x100, 8, 99);
/// assert_eq!(ov.read(&base, 0x100, 8), 99);
/// assert_eq!(base.read(0x100, 8), 7); // base untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemOverlay {
    bytes: FastMap<u64, u8>,
}

impl MemOverlay {
    /// Creates an empty overlay.
    pub fn new() -> MemOverlay {
        MemOverlay::default()
    }

    /// Reads through the overlay, falling back to `base`.
    pub fn read(&self, base: &SparseMemory, addr: Addr, size: u8) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut v = 0u64;
        for i in (0..size as u64).rev() {
            let b = self
                .bytes
                .get(&(addr + i))
                .copied()
                .unwrap_or_else(|| base.read_byte(addr + i));
            v = (v << 8) | b as u64;
        }
        v
    }

    /// Writes into the overlay only.
    pub fn write(&mut self, addr: Addr, size: u8, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        for i in 0..size as u64 {
            self.bytes.insert(addr + i, (value >> (i * 8)) as u8);
        }
    }

    /// Number of overlaid bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the overlay is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl regshare_types::snapshot::Snapshot for SparseMemory {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            w.put_u64(k);
            w.put_bytes(&self.pages[&k][..]);
        }
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        let len = r.get_len()?;
        self.pages.clear();
        for _ in 0..len {
            let k = r.get_u64()?;
            let bytes = r.get_bytes(PAGE_SIZE)?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            self.pages.insert(k, page);
        }
        Ok(())
    }
}

impl regshare_types::snapshot::Snapshot for MemOverlay {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        regshare_types::snapshot::encode_map_sorted(&self.bytes, w);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        self.bytes = regshare_types::snapshot::decode_map(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip_all_sizes() {
        let mut m = SparseMemory::new();
        for (size, val) in [
            (1u8, 0xabu64),
            (2, 0xbeef),
            (4, 0xdead_beef),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            let addr = 0x4000 + size as u64 * 64;
            m.write(addr, size, val);
            assert_eq!(m.read(addr, size), val);
        }
    }

    #[test]
    fn narrow_write_preserves_neighbors() {
        let mut m = SparseMemory::new();
        m.write(0x100, 8, 0x1111_2222_3333_4444);
        m.write(0x102, 2, 0xffff);
        assert_eq!(m.read(0x100, 8), 0x1111_2222_ffff_4444);
    }

    #[test]
    fn background_is_deterministic_and_survives_neighbor_write() {
        let m0 = SparseMemory::new();
        let before = m0.read(0x7008, 8);
        let mut m1 = SparseMemory::new();
        // Touch the same page elsewhere; untouched bytes must keep their
        // deterministic background value.
        m1.write(0x7000, 8, 42);
        assert_eq!(m1.read(0x7008, 8), before);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 4; // straddles a page boundary
        m.write(addr, 8, 0xa5a5_5a5a_1234_5678);
        assert_eq!(m.read(addr, 8), 0xa5a5_5a5a_1234_5678);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn overlay_reads_through_and_isolates_writes() {
        let mut base = SparseMemory::new();
        base.write(0x200, 8, 0x10);
        let mut ov = MemOverlay::new();
        assert!(ov.is_empty());
        assert_eq!(ov.read(&base, 0x200, 8), 0x10);
        ov.write(0x204, 4, 0x77);
        assert_eq!(ov.read(&base, 0x200, 8), 0x0000_0077_0000_0010);
        assert_eq!(base.read(0x200, 8), 0x10);
        assert_eq!(ov.len(), 4);
    }

    #[test]
    #[should_panic]
    fn bad_size_panics() {
        let m = SparseMemory::new();
        let _ = m.read(0, 3);
    }
}

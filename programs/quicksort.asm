# quicksort — iterative Lomuto quicksort over 64 pseudo-random u64 words.
#
# An LCG fills the array (the simulated memory is not zero-filled, so every
# element is written before it is read), an explicit work stack at STK
# replaces recursion, and the epilogue verifies both sortedness and sum
# preservation. r15 = 1 on success, 0 on failure.

.equ ARR 0x1000          # 64 * 8 bytes: 0x1000..0x1200
.equ STK 0x3000          # work stack of (lo, hi) address pairs
.equ N   64

# ---- init: a[k] = lcg() >> 33, summing into r13 ----------------------------
    li r11, ARR          # array base (kept for the check phase)
    mov r2, r11          # write cursor
    li r3, N
    li r7, 1             # LCG state
    li r13, 0            # sum of inputs
init:
    mul r7, r7, 6364136223846793005
    add r7, r7, 1442695040888963407
    shr r8, r7, 33
    st r8, r2, 0
    add r13, r13, r8
    add r2, r2, 8
    sub r3, r3, 1
    bne r3, 0, init

# ---- quicksort with an explicit range stack --------------------------------
    li r12, ARR
    add r12, r12, 504    # address of last element (ARR + 8*(N-1))
    li r9, STK
    st r11, r9, 0        # push initial range: lo = first
    st r12, r9, 8        #                     hi = last
    add r9, r9, 16
qloop:
    li r10, STK
    beq r9, r10, check   # stack empty: sorting done
    sub r9, r9, 16
    ld r2, r9, 0         # lo (address)
    ld r3, r9, 8         # hi (address)
    bge r2, r3, qloop    # ranges of 0 or 1 elements need no work
    ld r6, r3, 0         # pivot = *hi
    mov r4, r2           # i = lo
    mov r5, r2           # j = lo
part:
    ld r7, r5, 0
    bge r7, r6, noswap   # *j >= pivot: leave in the high side
    ld r8, r4, 0         # swap *i and *j
    st r7, r4, 0
    st r8, r5, 0
    add r4, r4, 8
noswap:
    add r5, r5, 8
    bne r5, r3, part
    ld r7, r4, 0         # place the pivot: swap *i and *hi
    ld r8, r3, 0
    st r8, r4, 0
    st r7, r3, 0
    st r2, r9, 0         # push (lo, i-1)
    sub r10, r4, 8
    st r10, r9, 8
    add r9, r9, 16
    add r10, r4, 8       # push (i+1, hi)
    st r10, r9, 0
    st r3, r9, 8
    add r9, r9, 16
    jmp qloop

# ---- self-check: ascending order and unchanged element sum -----------------
check:
    mov r2, r11
    ld r7, r2, 0         # prev = a[0]
    mov r14, r7          # running sum
    li r3, 63            # remaining adjacent pairs
chkloop:
    add r2, r2, 8
    ld r8, r2, 0
    blt r8, r7, fail     # descending pair: not sorted
    add r14, r14, r8
    mov r7, r8
    sub r3, r3, 1
    bne r3, 0, chkloop
    bne r14, r13, fail   # sum changed: not a permutation of the input
    li r15, 1
    halt
fail:
    li r15, 0
    halt

//! Content-addressing digests shared by checkpoint images and the serve
//! daemon's result cache.
//!
//! Two on-disk subsystems pin their files to the experiment that produced
//! them: checkpoint images (`crate::checkpoint`, whole-scenario
//! granularity) and the `regshare-serve` result cache (per-cell
//! granularity). Both must key results **identically**, or a checkpointed
//! run and a served run of the same scenario could disagree about what
//! "the same experiment" means. This module is the one definition of that
//! discipline:
//!
//! - [`normalized`] — the canonical form of a scenario for digest
//!   purposes: the window resolved to concrete µ-op counts, and every key
//!   that may legitimately differ between two equivalent invocations
//!   (parallelism, checkpoint plumbing) cleared. Where the window *came
//!   from* (flags, file, environment) can never change an identity.
//! - [`scenario_digest`] — hash of the normalized canonical rendering;
//!   pins whole-scenario artifacts (checkpoint images).
//! - [`cell_digest`] — content address of one (workload × configuration ×
//!   window) cell; pins per-cell artifacts (serve cache entries). Keyed
//!   by the *resolved* [`CoreConfig::digest`], so two variants spelled
//!   differently but simulating identically share one address.
//!
//! All digests are process-local identities, not cross-build promises:
//! every file format embedding one also carries a format version.

use crate::harness::RunWindow;
use crate::options::RunOptions;
use crate::scenario::Scenario;
use regshare_core::CoreConfig;
use regshare_types::hasher::FastHasher;
use std::hash::Hasher;

/// The canonical form of a scenario for digest purposes: window resolved,
/// parallelism and checkpoint/resume plumbing cleared.
pub fn normalized(scenario: &Scenario) -> Scenario {
    let window = scenario.options.window();
    let mut normalized = scenario.clone();
    normalized.options = RunOptions::default()
        .warmup(window.warmup)
        .measure(window.measure);
    normalized.options.jobs = None;
    normalized.checkpoint_interval = None;
    normalized.resume_from = None;
    normalized
}

/// The digest pinning a whole-scenario artifact (a checkpoint image) to
/// its scenario: a hash of [`normalized`]'s canonical rendering.
pub fn scenario_digest(scenario: &Scenario) -> u64 {
    let mut h = FastHasher::default();
    h.write(normalized(scenario).render().as_bytes());
    h.finish()
}

/// The content address of one simulation cell: the workload's registry
/// name, the resolved configuration digest, and the concrete window.
///
/// This is what makes served results cacheable by construction — the
/// deterministic sweep engine guarantees a cell is a pure function of
/// exactly these three inputs, so a cell computed once under this address
/// is correct forever (for this build; see the cache format version).
pub fn cell_digest(workload: &str, cfg: &CoreConfig, window: RunWindow) -> u64 {
    let mut h = FastHasher::default();
    // Domain-separate from scenario_digest streams and make the
    // (name, config, window) framing unambiguous.
    h.write(b"regshare-cell/1\0");
    h.write(workload.as_bytes());
    h.write_u8(0);
    h.write_u64(cfg.digest());
    h.write_u64(window.warmup);
    h.write_u64(window.measure);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::VariantSpec;

    fn tiny() -> Scenario {
        Scenario::builder("digest_unit")
            .options(RunOptions::default().warmup(500).measure(1_500).jobs(2))
            .workloads(&["crafty", "hmmer"])
            .variant("base", VariantSpec::hpca16())
            .variant("both", VariantSpec::preset("me_smb"))
            .build()
            .unwrap()
    }

    #[test]
    fn scenario_digest_ignores_plumbing_but_not_identity() {
        let s = tiny();
        let d = scenario_digest(&s);

        // Parallelism and checkpoint plumbing are not identity.
        let mut replumbed = s.clone();
        replumbed.options.jobs = Some(7);
        replumbed.checkpoint_interval = Some(9);
        replumbed.resume_from = Some("elsewhere.ckpt".into());
        assert_eq!(scenario_digest(&replumbed), d);

        // The window is identity, wherever it came from.
        let mut other_window = s.clone();
        other_window.options = RunOptions::default().warmup(600).measure(1_500);
        assert_ne!(scenario_digest(&other_window), d);

        // So are the variants and the workload list.
        let mut other_variant = s.clone();
        other_variant.variants[1].1 = VariantSpec::preset("me");
        assert_ne!(scenario_digest(&other_variant), d);
        let mut other_workloads = s.clone();
        other_workloads.workloads.pop();
        assert_ne!(scenario_digest(&other_workloads), d);
    }

    #[test]
    fn normalized_resolves_the_window_to_concrete_counts() {
        let s = tiny();
        let n = normalized(&s);
        assert_eq!(n.options.warmup, Some(500));
        assert_eq!(n.options.measure, Some(1_500));
        assert_eq!(n.options.jobs, None);
        assert_eq!(n.checkpoint_interval, None);
        assert_eq!(n.resume_from, None);
        // Normalizing is idempotent.
        assert_eq!(normalized(&n), n);
    }

    #[test]
    fn cell_digest_keys_on_workload_config_and_window() {
        let window = RunWindow {
            warmup: 500,
            measure: 1_500,
        };
        let base = CoreConfig::hpca16();
        let d = cell_digest("crafty", &base, window);
        // Stable for equal inputs.
        assert_eq!(cell_digest("crafty", &base.clone(), window), d);
        // Sensitive to each component.
        assert_ne!(cell_digest("hmmer", &base, window), d);
        assert_ne!(cell_digest("crafty", &base.clone().with_me(), window), d);
        assert_ne!(
            cell_digest(
                "crafty",
                &base,
                RunWindow {
                    warmup: 501,
                    measure: 1_500
                }
            ),
            d
        );
        assert_ne!(
            cell_digest(
                "crafty",
                &base,
                RunWindow {
                    warmup: 500,
                    measure: 1_501
                }
            ),
            d
        );
    }

    #[test]
    fn equivalent_variant_spellings_share_one_cell_address() {
        // `preset = "me_smb"` and `preset = "hpca16"` + explicit toggles
        // resolve to the same machine, so they must share a cache cell.
        let window = RunWindow {
            warmup: 500,
            measure: 1_500,
        };
        let a = VariantSpec::preset("me_smb").to_config().unwrap();
        let b = VariantSpec::hpca16()
            .me(true)
            .smb(true)
            .to_config()
            .unwrap();
        assert_eq!(
            cell_digest("crafty", &a, window),
            cell_digest("crafty", &b, window)
        );
    }
}

//! Speculative memory bypassing under the hood: watch the TAGE-like
//! Instruction Distance predictor learn spill/reload pairs and collapse
//! memory dependencies into register dependencies.
//!
//! ```sh
//! cargo run --release --example memory_bypassing
//! ```

use regshare::core::{CoreConfig, Simulator};
use regshare::types::stats::speedup_pct;
use regshare::workloads::suite;

fn main() {
    let wl = suite()
        .into_iter()
        .find(|w| w.name == "hmmer")
        .expect("known workload");
    let program = wl.build();

    let mut base = Simulator::new(&program, CoreConfig::hpca16());
    base.run(40_000);
    let b0 = *base.stats();
    base.run(160_000);
    let b = base.stats().delta_since(&b0);

    let mut smb = Simulator::new(&program, CoreConfig::hpca16().with_smb());
    // Observe the predictor warming up: bypass rate per 20K-µ-op epoch.
    println!("epoch  bypassed-loads  bypass-misses  traps  false-deps");
    let mut last = *smb.stats();
    for epoch in 0..10 {
        smb.run(20_000);
        let d = smb.stats().delta_since(&last);
        last = *smb.stats();
        println!(
            "{epoch:>5}  {:>14}  {:>13}  {:>5}  {:>10}",
            d.loads_bypassed, d.bypass_mispredictions, d.memory_traps, d.false_dependencies
        );
    }
    let s0 = *smb.stats();
    smb.run(160_000);
    let s = smb.stats().delta_since(&s0);
    println!(
        "\nbaseline: IPC {:.3}, {} traps, {} false deps",
        b.ipc(),
        b.memory_traps,
        b.false_dependencies
    );
    println!(
        "SMB:      IPC {:.3} ({:+.2}%), {} traps, {} false deps, {:.1}% of loads bypassed",
        s.ipc(),
        speedup_pct(b.ipc(), s.ipc()),
        s.memory_traps,
        s.false_dependencies,
        s.pct_loads_bypassed()
    );
}

//! RAS overflow/underflow regression tests: deep call chains under heavy
//! squash traffic must stay architecturally invisible.
//!
//! The return-address stack is speculative state restored from the pooled
//! per-branch `FetchSnap` snapshots on every misprediction recovery (the
//! in-place restore path introduced by the allocation-free refactor). A
//! call chain deeper than the RAS overwrites its oldest entries (overflow);
//! the matching returns then pop a wrapped stack (underflow of the *lost*
//! entries); and a mispredicted data-dependent branch in the middle of the
//! chain forces a wide squash that must restore exactly the pre-branch
//! stack — including its wrap state. Any slip shows up as a digest
//! divergence from the in-order oracle (predictors may mispredict freely;
//! they may never corrupt the committed trace).

use regshare_core::{CoreConfig, Simulator};
use regshare_isa::interp::Machine;
use regshare_isa::op::{AluOp, Cond, MoveWidth, Op, Operand};
use regshare_isa::program::{Program, ProgramBuilder};
use regshare_types::ArchReg;
use regshare_workloads::fuzz::FuzzSpec;
use std::sync::Arc;

const UOPS: u64 = 20_000;

fn r(i: usize) -> ArchReg {
    ArchReg::int(i)
}

/// A call chain `depth` functions deep whose middle function branches on
/// evolving data (unpredictable), looped forever. Depth far beyond the RAS
/// capacity guarantees overflow before the squash and underflow after it.
fn deep_chain_program(depth: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Op::LoadImm {
        dst: r(4),
        imm: 0x3000_0000,
    });
    b.push(Op::LoadImm {
        dst: r(8),
        imm: 0x9e37_79b9,
    });
    let skip = b.push(Op::Jump { target: 0 });
    // Leaf: mutate the data the mid-chain branch will test.
    let mut entry = b.here();
    b.push(Op::IntMul {
        dst: r(8),
        src1: r(8),
        src2: Operand::Imm(0x9e37_79b9_7f4a_7c15),
    });
    b.push(Op::IntAlu {
        op: AluOp::Add,
        dst: r(15),
        src1: r(15),
        src2: Operand::Reg(r(8)),
    });
    b.push(Op::Ret);
    for level in 1..depth {
        let this = b.here();
        if level == depth / 2 {
            // Mid-chain coin flip on loop-varying data: the recovery must
            // restore a RAS that already wrapped `depth/2` times.
            let br = b.push(Op::CondBranch {
                cond: Cond::BitSet,
                src1: r(8),
                src2: Operand::Imm(0),
                target: 0, // patched
            });
            b.push(Op::MovInt {
                dst: r(9),
                src: r(15),
                width: MoveWidth::W64,
            });
            let join = b.here();
            b.patch_target(br, join);
        }
        b.push(Op::Call { target: entry });
        b.push(Op::Ret);
        entry = this;
    }
    let top = b.here();
    b.patch_target(skip, top);
    b.push(Op::Call { target: entry });
    b.push(Op::Jump { target: top });
    b.build()
}

fn check(program: &Program, cfg: CoreConfig, what: &str) {
    let expected = Machine::new(Arc::new(program.clone())).run_digest(UOPS);
    let mut sim = Simulator::new(program, cfg);
    let stats = sim.run(UOPS);
    assert_eq!(stats.committed, UOPS, "{what}: short run");
    assert_eq!(
        sim.arch_digest(),
        expected,
        "{what}: committed trace diverged from the oracle"
    );
    sim.audit_registers()
        .unwrap_or_else(|e| panic!("{what}: register audit failed: {e}"));
}

#[test]
fn deep_calls_overflow_the_ras_and_survive_squashes() {
    // Depth 40 over a 32-entry RAS (Table 1): every outer iteration
    // overflows; every mispredicted mid-chain branch squashes with the
    // stack wrapped.
    let program = deep_chain_program(40);
    check(&program, CoreConfig::hpca16(), "depth40/ras32");
    check(
        &program,
        CoreConfig::hpca16().with_me().with_smb(),
        "depth40/ras32/me+smb",
    );
}

#[test]
fn tiny_ras_always_overflowing_stays_sound() {
    // A 2-entry RAS under a 24-deep chain: essentially every return is
    // mispredicted, so recovery (and the snapshot pool) runs constantly.
    let program = deep_chain_program(24);
    for ras_entries in [1, 2, 4] {
        let mut cfg = CoreConfig::hpca16().with_me().with_smb();
        cfg.ras_entries = ras_entries;
        check(&program, cfg, &format!("depth24/ras{ras_entries}"));
    }
}

#[test]
fn narrow_machine_widens_the_squash_window() {
    // A narrow, small-ROB machine keeps the chain in flight longer, so
    // each misprediction squashes a larger fraction of in-flight calls —
    // the widest restore the pooled snapshots see.
    let program = deep_chain_program(40);
    let mut cfg = CoreConfig::hpca16().with_me().with_smb();
    cfg.ras_entries = 8;
    cfg.rob_entries = 48;
    cfg.iq_entries = 12;
    cfg.frontend_width = 2;
    cfg.issue_width = 2;
    cfg.commit_width = 2;
    check(&program, cfg, "depth40/narrow");
}

#[test]
fn fuzzed_call_profile_agrees_with_the_oracle_under_tiny_ras() {
    // The generator's `calls` profile reaches MAX_CALL_DEPTH (40) chains
    // mixed with branchy blocks; a 4-entry RAS makes every deep chain an
    // overflow/underflow exercise.
    for seed in 1..=3u64 {
        let spec = FuzzSpec::new("calls", seed).unwrap();
        let program = spec.build();
        let mut cfg = CoreConfig::hpca16().with_me().with_smb();
        cfg.ras_entries = 4;
        check(&program, cfg, &format!("fuzz-calls-{seed}/ras4"));
    }
}

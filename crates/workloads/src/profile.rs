//! The 36-workload suite: named profiles mixing motifs with per-benchmark
//! parameters.
//!
//! Names follow the SPEC CPU2000/2006 programs the paper evaluates; each
//! profile's parameters are chosen to reproduce the *behavioural role* that
//! benchmark plays in the paper's figures (e.g. `crafty` is the ME standout,
//! `hmmer` is spill-heavy and DDT-capacity-sensitive, `astar` is
//! STLF-latency-bound with quiet Store Sets, `applu`/`wupwise` lean on
//! load-load bypassing). They are synthetic workloads, not the SPEC
//! programs — see DESIGN.md for the substitution rationale.

use crate::motifs::{
    branchy, call_leaf, move_glue, pointer_alias, pointer_chase, spill_reload, streaming, EmitCtx,
};
use crate::rng::Xorshift;
use regshare_isa::op::Op;
use regshare_isa::program::{Program, ProgramBuilder};

/// INT-flavoured or FP-flavoured workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Integer-dominated.
    Int,
    /// Floating-point-dominated.
    Fp,
}

/// Motif weights and parameters for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Deterministic seed.
    pub seed: u64,
    /// Move-glue blocks per outer iteration.
    pub move_blocks: u32,
    /// Percent of µ-ops in a glue block that are moves.
    pub move_density: f64,
    /// Percent of those moves that are 8/16-bit merges (not eliminable).
    pub merge_pct: f64,
    /// Whether FP moves appear in glue blocks.
    pub fp_moves: bool,
    /// Spill/reload blocks per outer iteration.
    pub spill_blocks: u32,
    /// Distinct spill slots (large values stress the DDT).
    pub spill_slots: u64,
    /// Work µ-ops between spill and reload.
    pub spill_work: usize,
    /// History-correlated path lengths between spill and reload.
    pub variable_paths: bool,
    /// Redundant-load blocks (load-load SMB) per outer iteration.
    pub redundant_blocks: u32,
    /// Loads per redundant chain.
    pub redundant_chain: usize,
    /// Work µ-ops between the loads of a redundant chain. Large values push
    /// the original producer beyond the 8-bit instruction distance / out of
    /// the window, which is what makes load-load bypassing matter (§6.2).
    pub redundant_gap: usize,
    /// Each redundant load's address consumes the previous load's value, so
    /// the chain serializes on load latency (load-load bypassing collapses
    /// it).
    pub redundant_value_chained: bool,
    /// Pointer-alias blocks per outer iteration.
    pub alias_blocks: u32,
    /// Percent of alias-block iterations that actually alias.
    pub alias_pct: f64,
    /// Streaming blocks per outer iteration.
    pub stream_blocks: u32,
    /// Pointer-chase blocks per outer iteration.
    pub chase_blocks: u32,
    /// Branchy blocks per outer iteration.
    pub branchy_blocks: u32,
    /// Taken bias of data-dependent branches (50 = unpredictable).
    pub branch_bias: f64,
    /// Call/leaf blocks per outer iteration.
    pub call_blocks: u32,
    /// Working-set size in KB (streaming / chase regions).
    pub ws_kb: usize,
    /// Fraction (0..1) of generic work that is FP.
    pub fp_mix: f64,
    /// Inner-loop trip count per block.
    pub trips: u64,
}

impl Default for WorkloadProfile {
    fn default() -> WorkloadProfile {
        WorkloadProfile {
            seed: 1,
            move_blocks: 1,
            move_density: 12.0,
            merge_pct: 10.0,
            fp_moves: false,
            spill_blocks: 1,
            spill_slots: 4,
            spill_work: 6,
            variable_paths: false,
            redundant_blocks: 1,
            redundant_chain: 2,
            redundant_gap: 3,
            redundant_value_chained: false,
            alias_blocks: 1,
            alias_pct: 10.0,
            stream_blocks: 0,
            chase_blocks: 0,
            branchy_blocks: 1,
            branch_bias: 85.0,
            call_blocks: 1,
            ws_kb: 64,
            fp_mix: 0.1,
            trips: 8,
        }
    }
}

/// How a workload's program is produced: a hand-tuned motif profile (the
/// 36-entry suite and [`custom`] workloads), a seeded fuzz generator case
/// ([`crate::fuzz`]), or an assembled real-program kernel ([`crate::asm`]).
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// Motif parameters (the suite's parameterization).
    Motif(WorkloadProfile),
    /// A deterministic fuzz-generator case (`fuzz-<profile>-<seed>`).
    Fuzz(crate::fuzz::FuzzSpec),
    /// An assembled kernel (`asm-<name>`, or external assembly text).
    Asm(crate::asm::AsmSpec),
}

/// A named workload.
///
/// Names are owned strings so workloads can come from anywhere — the
/// built-in suite, [`custom`] profiles, fuzz-generated families, or names
/// read out of `.scenario` files at runtime.
#[derive(Debug, Clone)]
pub struct Workload {
    /// SPEC-style (or `fuzz-<profile>-<seed>`) name.
    pub name: String,
    /// INT or FP flavour.
    pub class: WorkloadClass,
    /// Program source.
    pub source: WorkloadSource,
}

impl Workload {
    /// The motif parameters, for suite/custom workloads.
    pub fn motif_profile(&self) -> Option<&WorkloadProfile> {
        match &self.source {
            WorkloadSource::Motif(p) => Some(p),
            WorkloadSource::Fuzz(_) | WorkloadSource::Asm(_) => None,
        }
    }

    /// Compiles the workload into an executable [`Program`] (an infinite
    /// outer loop over its blocks).
    pub fn build(&self) -> Program {
        let p = match &self.source {
            WorkloadSource::Motif(p) => p,
            WorkloadSource::Fuzz(spec) => return spec.build(),
            WorkloadSource::Asm(spec) => return spec.build(),
        };
        let mut b = ProgramBuilder::new();
        let mut rng = Xorshift::new(p.seed);
        let mut region = 0x1000_0000u64;
        let mut next_region = || {
            let r_ = region;
            region += 0x100_0000; // 16MB apart
            r_
        };
        let outer_top = b.here();
        // Interleave block kinds in a deterministic shuffled order.
        let mut blocks: Vec<u8> = Vec::new();
        blocks.extend(std::iter::repeat_n(0u8, p.move_blocks as usize));
        blocks.extend(std::iter::repeat_n(1u8, p.spill_blocks as usize));
        blocks.extend(std::iter::repeat_n(2u8, p.redundant_blocks as usize));
        blocks.extend(std::iter::repeat_n(3u8, p.alias_blocks as usize));
        blocks.extend(std::iter::repeat_n(4u8, p.stream_blocks as usize));
        blocks.extend(std::iter::repeat_n(5u8, p.chase_blocks as usize));
        blocks.extend(std::iter::repeat_n(6u8, p.branchy_blocks as usize));
        blocks.extend(std::iter::repeat_n(7u8, p.call_blocks as usize));
        // Deterministic shuffle.
        for i in (1..blocks.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            blocks.swap(i, j);
        }
        for kind in blocks {
            let reg = next_region();
            let mut ctx = EmitCtx {
                b: &mut b,
                rng: &mut rng,
                region: reg,
                fp_mix: p.fp_mix,
            };
            match kind {
                0 => move_glue(&mut ctx, p.trips, p.move_density, p.merge_pct, p.fp_moves),
                1 => spill_reload(
                    &mut ctx,
                    p.trips,
                    p.spill_slots,
                    p.spill_work,
                    p.variable_paths,
                ),
                2 => crate::motifs::redundant_loads_ext(
                    &mut ctx,
                    p.trips,
                    p.redundant_chain,
                    p.redundant_gap,
                    p.redundant_value_chained,
                ),
                3 => pointer_alias(&mut ctx, p.trips, p.alias_pct, 64),
                4 => streaming(&mut ctx, p.trips, p.ws_kb),
                5 => pointer_chase(&mut ctx, p.trips, p.ws_kb),
                6 => branchy(&mut ctx, p.trips, p.branch_bias),
                _ => call_leaf(&mut ctx, p.trips, 3),
            }
        }
        b.push(Op::Jump { target: outer_top });
        b.build()
    }
}

fn w(name: &'static str, class: WorkloadClass, f: impl FnOnce(&mut WorkloadProfile)) -> Workload {
    let mut profile = WorkloadProfile {
        seed: name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
        }),
        ..WorkloadProfile::default()
    };
    if class == WorkloadClass::Fp {
        profile.fp_mix = 0.55;
        profile.fp_moves = true;
    }
    f(&mut profile);
    Workload {
        name: name.to_string(),
        class,
        source: WorkloadSource::Motif(profile),
    }
}

/// The full 36-workload suite (18 INT + 18 FP), in a stable order.
pub fn suite() -> Vec<Workload> {
    use WorkloadClass::{Fp, Int};
    vec![
        // ---------------- 18 INT ----------------
        // The ME standout: dense move glue on the critical path, branchy.
        w("crafty", Int, |p| {
            p.move_blocks = 2;
            p.move_density = 14.0;
            p.merge_pct = 8.0;
            p.branchy_blocks = 2;
            p.branch_bias = 78.0;
            p.call_blocks = 2;
        }),
        // Very move-rich but with many merges and off-path moves: high
        // elimination rate, modest gain.
        w("vortex", Int, |p| {
            p.move_blocks = 3;
            p.move_density = 22.0;
            p.merge_pct = 30.0;
            p.spill_blocks = 0;
            p.branchy_blocks = 1;
        }),
        // Spill-heavy, DDT-capacity-sensitive, alias traps: the SMB star.
        w("hmmer", Int, |p| {
            p.spill_blocks = 3;
            p.spill_slots = 512;
            p.spill_work = 8;
            p.variable_paths = true;
            p.alias_blocks = 1;
            p.alias_pct = 25.0;
            p.redundant_blocks = 2;
            p.trips = 12;
        }),
        // STLF-latency bound: stable short spill distances + redundant load
        // chains, quiet Store Sets.
        w("astar", Int, |p| {
            p.spill_blocks = 2;
            p.spill_slots = 2;
            p.spill_work = 4;
            p.redundant_blocks = 3;
            p.redundant_chain = 4;
            p.alias_blocks = 0;
            p.branch_bias = 92.0;
        }),
        // Alias/trap heavy with load-load chains.
        w("bzip", Int, |p| {
            p.alias_blocks = 2;
            p.alias_pct = 30.0;
            p.redundant_blocks = 2;
            p.redundant_chain = 3;
            p.spill_blocks = 1;
        }),
        w("gzip", Int, |p| {
            p.alias_blocks = 1;
            p.alias_pct = 15.0;
            p.branchy_blocks = 2;
            p.branch_bias = 70.0;
        }),
        w("vpr", Int, |p| {
            p.branchy_blocks = 3;
            p.branch_bias = 60.0;
            p.spill_blocks = 1;
            p.spill_work = 10;
        }),
        w("gcc", Int, |p| {
            p.move_blocks = 2;
            p.move_density = 16.0;
            p.spill_blocks = 2;
            p.spill_slots = 64;
            p.call_blocks = 3;
            p.branchy_blocks = 2;
            p.branch_bias = 75.0;
        }),
        // Memory-bound pointer chaser: low IPC.
        w("mcf", Int, |p| {
            p.chase_blocks = 4;
            p.ws_kb = 8192;
            p.spill_blocks = 0;
            p.move_blocks = 0;
            p.redundant_blocks = 0;
            p.alias_blocks = 0;
            p.call_blocks = 0;
            p.branchy_blocks = 1;
            p.branch_bias = 65.0;
            p.trips = 24;
        }),
        w("parser", Int, |p| {
            p.branchy_blocks = 2;
            p.branch_bias = 72.0;
            p.move_blocks = 2;
            p.move_density = 18.0;
            p.call_blocks = 2;
        }),
        w("eon", Int, |p| {
            p.fp_mix = 0.35;
            p.move_blocks = 2;
            p.move_density = 24.0;
            p.spill_blocks = 1;
        }),
        w("perlbmk", Int, |p| {
            p.call_blocks = 4;
            p.move_blocks = 2;
            p.move_density = 20.0;
            p.branchy_blocks = 2;
            p.branch_bias = 80.0;
        }),
        w("gap", Int, |p| {
            p.spill_blocks = 2;
            p.spill_slots = 16;
            p.spill_work = 12;
            p.redundant_blocks = 1;
        }),
        w("bzip2", Int, |p| {
            p.alias_blocks = 2;
            p.alias_pct = 20.0;
            p.branchy_blocks = 1;
            p.branch_bias = 68.0;
            p.spill_blocks = 1;
            p.spill_work = 5;
        }),
        w("twolf", Int, |p| {
            p.branchy_blocks = 2;
            p.branch_bias = 64.0;
            p.spill_blocks = 2;
            p.spill_slots = 8;
            p.variable_paths = true;
        }),
        w("gobmk", Int, |p| {
            p.branchy_blocks = 3;
            p.branch_bias = 58.0;
            p.move_blocks = 1;
            p.call_blocks = 2;
        }),
        w("sjeng", Int, |p| {
            p.branchy_blocks = 2;
            p.branch_bias = 62.0;
            p.move_blocks = 2;
            p.move_density = 18.0;
            p.spill_blocks = 1;
            p.variable_paths = true;
        }),
        w("libquantum", Int, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 4096;
            p.move_blocks = 0;
            p.alias_blocks = 0;
            p.branch_bias = 95.0;
        }),
        // ---------------- 18 FP ----------------
        // Load-load star: long redundant chains + spills.
        w("wupwise", Fp, |p| {
            p.spill_blocks = 2;
            p.spill_work = 6;
            p.redundant_blocks = 3;
            p.redundant_chain = 4;
            p.alias_blocks = 1;
            p.alias_pct = 18.0;
        }),
        // The biggest SMB gain in the paper: spills + redundant loads +
        // aliasing traps.
        w("applu", Fp, |p| {
            p.spill_blocks = 3;
            p.spill_work = 5;
            p.redundant_blocks = 3;
            p.redundant_chain = 5;
            p.alias_blocks = 1;
            p.alias_pct = 25.0;
            p.trips = 10;
        }),
        // Few moves but squarely on the critical path.
        w("namd", Fp, |p| {
            p.move_blocks = 1;
            p.move_density = 15.0;
            p.merge_pct = 0.0;
            p.spill_blocks = 1;
            p.stream_blocks = 1;
            p.ws_kb = 128;
        }),
        // False-dependency reduction cases.
        w("gamess", Fp, |p| {
            p.alias_blocks = 2;
            p.alias_pct = 35.0;
            p.spill_blocks = 1;
            p.stream_blocks = 1;
        }),
        w("gromacs", Fp, |p| {
            p.alias_blocks = 2;
            p.alias_pct = 30.0;
            p.redundant_blocks = 1;
            p.stream_blocks = 1;
        }),
        // Noisy distances: limited ISRB filtering helps slightly.
        w("mgrid", Fp, |p| {
            p.spill_blocks = 2;
            p.variable_paths = true;
            p.branch_bias = 55.0;
            p.stream_blocks = 2;
            p.ws_kb = 512;
        }),
        w("swim", Fp, |p| {
            p.stream_blocks = 3;
            p.ws_kb = 4096;
            p.move_blocks = 0;
            p.spill_blocks = 1;
        }),
        w("mesa", Fp, |p| {
            p.move_blocks = 2;
            p.move_density = 18.0;
            p.fp_moves = true;
            p.spill_blocks = 1;
            p.call_blocks = 2;
        }),
        w("art", Fp, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 2048;
            p.branchy_blocks = 2;
            p.branch_bias = 66.0;
        }),
        w("equake", Fp, |p| {
            p.chase_blocks = 1;
            p.ws_kb = 1024;
            p.spill_blocks = 2;
            p.spill_work = 7;
        }),
        w("facerec", Fp, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 256;
            p.redundant_blocks = 2;
        }),
        w("ammp", Fp, |p| {
            p.chase_blocks = 2;
            p.ws_kb = 2048;
            p.spill_blocks = 1;
            p.branch_bias = 75.0;
        }),
        w("lucas", Fp, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 1024;
            p.spill_blocks = 1;
            p.spill_work = 9;
        }),
        w("milc", Fp, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 8192;
            p.redundant_blocks = 1;
            p.move_blocks = 0;
        }),
        w("zeusmp", Fp, |p| {
            p.stream_blocks = 2;
            p.ws_kb = 512;
            p.spill_blocks = 2;
            p.variable_paths = true;
        }),
        w("cactusADM", Fp, |p| {
            p.spill_blocks = 3;
            p.spill_slots = 32;
            p.spill_work = 10;
            p.stream_blocks = 1;
        }),
        w("soplex", Fp, |p| {
            p.branchy_blocks = 2;
            p.branch_bias = 70.0;
            p.spill_blocks = 2;
            p.alias_blocks = 1;
            p.alias_pct = 15.0;
        }),
        w("lbm", Fp, |p| {
            p.stream_blocks = 3;
            p.ws_kb = 8192;
            p.move_blocks = 0;
            p.branchy_blocks = 0;
            p.branch_bias = 98.0;
        }),
    ]
}

/// Looks up one workload by name: first the 36-entry suite, then the fuzz
/// generator's `fuzz-<profile>-<seed>` naming scheme, then the assembled
/// corpus's `asm-<kernel>` names (builds the suite each call; batch lookups
/// should use [`by_names`] / [`try_by_names`], which is how scenario files
/// resolve their workload lists).
pub fn find(name: &str) -> Option<Workload> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .or_else(|| crate::fuzz::FuzzSpec::parse_name(name).map(|s| s.workload()))
        .or_else(|| crate::asm::AsmSpec::parse_name(name).map(|s| s.workload()))
}

/// Every suite workload name, in suite order — the `--list-workloads`
/// registry listing, and the names a scenario file may reference.
pub fn names() -> Vec<String> {
    suite().into_iter().map(|w| w.name).collect()
}

/// The named subset of [`suite`], in `names` order — the sweep-spec way of
/// picking representative workloads. [`try_by_names`] is the non-panicking
/// variant for runtime-supplied (scenario file) names.
///
/// # Panics
///
/// Panics on an unknown name, so a typo fails loudly instead of silently
/// shrinking the sweep.
pub fn by_names(names: &[&str]) -> Vec<Workload> {
    let all = suite();
    names
        .iter()
        .map(|name| {
            all.iter()
                .find(|w| w.name == *name)
                .unwrap_or_else(|| panic!("unknown workload {name:?}"))
                .clone()
        })
        .collect()
}

/// Like [`by_names`], but returns the first unknown name instead of
/// panicking — scenario files surface it as a typed error. Resolves
/// `fuzz-<profile>-<seed>` names through the fuzz generator registry and
/// `asm-<kernel>` names through the assembled corpus, so a scenario's
/// workload list may mix suite, generated and assembled programs.
pub fn try_by_names<S: AsRef<str>>(names: &[S]) -> Result<Vec<Workload>, String> {
    let all = suite();
    names
        .iter()
        .map(|name| {
            let name = name.as_ref();
            all.iter()
                .find(|w| w.name == name)
                .cloned()
                .or_else(|| crate::fuzz::FuzzSpec::parse_name(name).map(|s| s.workload()))
                .or_else(|| crate::asm::AsmSpec::parse_name(name).map(|s| s.workload()))
                .ok_or_else(|| name.to_string())
        })
        .collect()
}

/// Builds a custom named workload from an explicit profile (for studies
/// that need structure outside the 36-entry suite, e.g. the load-load
/// ablation's long redundant chains).
pub fn custom(name: impl Into<String>, class: WorkloadClass, profile: WorkloadProfile) -> Workload {
    Workload {
        name: name.into(),
        class,
        source: WorkloadSource::Motif(profile),
    }
}

/// A small, fast workload for tests and examples.
pub fn mini() -> Workload {
    w("mini", WorkloadClass::Int, |p| {
        p.move_blocks = 1;
        p.spill_blocks = 1;
        p.redundant_blocks = 1;
        p.alias_blocks = 1;
        p.branchy_blocks = 1;
        p.call_blocks = 1;
        p.trips = 4;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::interp::Machine;
    use std::sync::Arc;

    #[test]
    fn suite_has_36_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 36);
        let mut names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 36, "duplicate workload names");
        assert_eq!(
            s.iter().filter(|w| w.class == WorkloadClass::Int).count(),
            18
        );
        assert_eq!(
            s.iter().filter(|w| w.class == WorkloadClass::Fp).count(),
            18
        );
    }

    #[test]
    fn all_programs_build_and_run() {
        for wl in suite() {
            let p = Arc::new(wl.build());
            assert!(p.len() > 30, "{} too small: {}", wl.name, p.len());
            let mut m = Machine::new(p);
            // Run 20K µ-ops: must not halt (infinite outer loop).
            for _ in 0..20_000 {
                m.step();
            }
            assert!(!m.is_halted(), "{} halted unexpectedly", wl.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = suite()[0].build();
        let b = suite()[0].build();
        assert_eq!(a.len(), b.len());
        let mut ma = Machine::new(Arc::new(a));
        let mut mb = Machine::new(Arc::new(b));
        for _ in 0..5_000 {
            let ua = ma.step();
            let ub = mb.step();
            assert_eq!(ua.pc, ub.pc);
            assert_eq!(ua.result, ub.result);
        }
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let s = suite();
        let a = s[0].build();
        let b = s[1].build();
        assert_ne!(a.len(), b.len());
    }

    #[test]
    fn move_star_has_more_moves_than_stream_star() {
        let s = suite();
        let count_moves = |wl: &Workload| {
            let p = Arc::new(wl.build());
            let mut m = Machine::new(p);
            let mut moves = 0;
            for _ in 0..30_000 {
                if m.step().kind.eliminable_move() {
                    moves += 1;
                }
            }
            moves
        };
        let vortex = count_moves(s.iter().find(|w| w.name == "vortex").unwrap());
        let lbm = count_moves(s.iter().find(|w| w.name == "lbm").unwrap());
        assert!(
            vortex > lbm * 2,
            "vortex ({vortex}) should be far more move-dense than lbm ({lbm})"
        );
    }

    #[test]
    fn mini_is_small_and_fast() {
        let p = Arc::new(mini().build());
        assert!(p.len() < 400);
    }

    #[test]
    fn registry_resolves_fuzz_names_alongside_the_suite() {
        assert!(find("crafty").is_some());
        let wl = find("fuzz-balanced-42").expect("fuzz name resolves");
        assert_eq!(wl.name, "fuzz-balanced-42");
        assert!(wl.motif_profile().is_none());
        assert!(wl.build().len() > 10);
        assert!(find("fuzz-doom-42").is_none());

        let both = try_by_names(&["crafty", "fuzz-memory-7"]).unwrap();
        assert_eq!(both[1].name, "fuzz-memory-7");
        assert_eq!(
            try_by_names(&["fuzz-doom-42"]).unwrap_err(),
            "fuzz-doom-42".to_string()
        );
    }
}

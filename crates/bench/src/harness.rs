//! Run-window plumbing shared by all experiments.

use regshare_core::{CoreConfig, SimStats, Simulator};
use regshare_isa::Program;
use regshare_workloads::Workload;

/// Warmup/measurement window (µ-ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunWindow {
    /// µ-ops run before measurement starts (caches/predictors warm up).
    pub warmup: u64,
    /// µ-ops measured.
    pub measure: u64,
}

impl RunWindow {
    /// Default window, overridable via `REGSHARE_WARMUP`/`REGSHARE_MEASURE`.
    #[deprecated(
        since = "0.1.0",
        note = "use RunOptions::window(); the env vars remain as deprecated \
                fallbacks there"
    )]
    pub fn from_env() -> RunWindow {
        crate::options::RunOptions::default().window()
    }

    /// A fast window for smoke tests.
    pub fn quick() -> RunWindow {
        RunWindow {
            warmup: 10_000,
            measure: 40_000,
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Workload name. Owned, so measurements can carry names that only
    /// exist at runtime (workloads resolved from `.scenario` files).
    pub name: String,
    /// Stats over the measured window only.
    pub stats: SimStats,
}

impl Measurement {
    /// IPC over the measured window.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Runs `workload` under `cfg` with the given window and returns
/// measured-window statistics.
pub fn measure(workload: &Workload, cfg: CoreConfig, window: RunWindow) -> Measurement {
    measure_with(workload, cfg, window, |_| {})
}

/// Like [`measure`], but over an already-built program — the sweep engine's
/// memoized-program path ([`crate::SweepSpec`] builds each workload's
/// program once and shares it across every configuration variant).
pub fn measure_program(
    name: impl Into<String>,
    program: &Program,
    cfg: CoreConfig,
    window: RunWindow,
) -> Measurement {
    measure_program_with(name, program, cfg, window, |_| {})
}

/// Like [`measure`], with a post-run hook receiving the simulator (for
/// digests, audits or extra probes).
pub fn measure_with(
    workload: &Workload,
    cfg: CoreConfig,
    window: RunWindow,
    inspect: impl FnOnce(&Simulator),
) -> Measurement {
    measure_program_with(
        workload.name.clone(),
        &workload.build(),
        cfg,
        window,
        inspect,
    )
}

/// The one warmup → measure → delta protocol every entry point shares.
fn measure_program_with(
    name: impl Into<String>,
    program: &Program,
    cfg: CoreConfig,
    window: RunWindow,
    inspect: impl FnOnce(&Simulator),
) -> Measurement {
    let mut sim = Simulator::new(program, cfg);
    let warm = sim.run(window.warmup);
    let end = sim.run(window.measure);
    inspect(&sim);
    Measurement {
        name: name.into(),
        stats: end.delta_since(&warm),
    }
}

//! Generic set-associative cache with LRU replacement.

use regshare_types::Addr;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
    prefetched: bool,
}

/// A set-associative, LRU, tag-only cache model (data lives in the
/// functional interpreter; the cache tracks presence and recency).
///
/// # Examples
///
/// ```
/// use regshare_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 });
/// assert!(!c.probe(0x40));
/// c.fill(0x40, false);
/// assert!(c.probe(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_count: usize,
    line_shift: u32,
    tick: u64,
}

impl Cache {
    /// Builds a cache; validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or do not divide evenly.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0);
        let total_lines = cfg.size_bytes / cfg.line_bytes;
        assert!(
            total_lines.is_multiple_of(cfg.ways),
            "lines must divide evenly into ways"
        );
        let set_count = total_lines / cfg.ways;
        assert!(set_count > 0);
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    lru: 0,
                    valid: false,
                    prefetched: false
                };
                total_lines
            ],
            set_count,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_and_tag(&self, addr: Addr) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        (
            (line_addr as usize) % self.set_count,
            line_addr / self.set_count as u64,
        )
    }

    /// Probes for the line containing `addr`, updating LRU on hit.
    pub fn probe(&mut self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let base = set * self.cfg.ways;
        for l in &mut self.lines[base..base + self.cfg.ways] {
            if l.valid && l.tag == tag {
                l.lru = self.tick;
                return true;
            }
        }
        false
    }

    /// Probes without updating replacement state (for prefetch filtering).
    pub fn probe_silent(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Whether the (present) line was brought in by a prefetch.
    pub fn was_prefetched(&self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag && l.prefetched)
    }

    /// Clears the prefetched marker (first demand hit consumes it).
    pub fn clear_prefetched(&mut self, addr: Addr) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        for l in &mut self.lines[base..base + self.cfg.ways] {
            if l.valid && l.tag == tag {
                l.prefetched = false;
            }
        }
    }

    /// Fills the line containing `addr`, evicting LRU if needed.
    pub fn fill(&mut self, addr: Addr, prefetched: bool) {
        let (set, tag) = self.set_and_tag(addr);
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.cfg.ways;
        // Already present: refresh.
        if let Some(l) = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            l.lru = tick;
            return;
        }
        let victim = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        *victim = Line {
            tag,
            lru: tick,
            valid: true,
            prefetched,
        };
    }
}

regshare_types::impl_snap!(Line {
    tag,
    lru,
    valid,
    prefetched
});

impl regshare_types::snapshot::Snapshot for Cache {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.lines.encode(w);
        w.put_u64(self.tick);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let lines: Vec<Line> = Snap::decode(r)?;
        if lines.len() != self.lines.len() {
            return Err(r.corrupt("Cache line count"));
        }
        self.lines = lines;
        self.tick = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn fill_then_probe_hits() {
        let mut c = tiny();
        c.fill(0x1000, false);
        assert!(c.probe(0x1000));
        assert!(c.probe(0x103f)); // same line
        assert!(!c.probe(0x1040)); // next line
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines whose line_addr % 2 == 0: 0x000, 0x080, 0x100...
        c.fill(0x000, false);
        c.fill(0x080, false);
        assert!(c.probe(0x000)); // make 0x000 MRU
        c.fill(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(c.probe(0x100));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.fill(0x000, false); // set 0
        c.fill(0x040, false); // set 1
        c.fill(0x0c0, false); // set 1
        c.fill(0x140, false); // set 1, evicts one of set 1
        assert!(c.probe(0x000), "set 0 line must survive set 1 pressure");
    }

    #[test]
    fn prefetched_marker_lifecycle() {
        let mut c = tiny();
        c.fill(0x200, true);
        assert!(c.was_prefetched(0x200));
        c.clear_prefetched(0x200);
        assert!(!c.was_prefetched(0x200));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = tiny();
        c.fill(0x000, false);
        c.fill(0x000, false);
        c.fill(0x080, false);
        // Both lines coexist (no duplicate fill of 0x000 evicting 0x080).
        assert!(c.probe(0x000));
        assert!(c.probe(0x080));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 300,
            ways: 2,
            line_bytes: 60,
            latency: 1,
        });
    }
}

//! Model-based property test for the checkpointable circular free list:
//! pops, pushes, branch restores and commit-flush restores must agree with a
//! straightforward reference implementation.

use proptest::prelude::*;
use regshare_core::rename::FreeList;
use regshare_types::PhysReg;

#[derive(Debug, Clone)]
enum Op {
    Pop,
    CommitPop,
    PushFreed,
    Checkpoint,
    Restore,
    FlushToCommitted,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => Just(Op::Pop),
        3 => Just(Op::CommitPop),
        3 => Just(Op::PushFreed),
        1 => Just(Op::Checkpoint),
        1 => Just(Op::Restore),
        1 => Just(Op::FlushToCommitted),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn freelist_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut fl = FreeList::new(16, 4);
        // Reference: explicit queues.
        let mut free: Vec<PhysReg> = (4..16).map(PhysReg::new).collect();
        // Speculative pops not yet committed, oldest first.
        let mut spec: Vec<PhysReg> = Vec::new();
        // Committed pops whose registers are "live" until pushed back.
        let mut committed_live: Vec<PhysReg> = Vec::new();
        // Checkpoints: head tokens. A checkpoint is restorable only while no
        // pop it covers has committed (in a pipeline, the owning branch is
        // still in flight), i.e. while total commits ≤ its head token.
        let mut ckpts: Vec<u64> = Vec::new();
        let mut commits: u64 = 0;

        for op in ops {
            match op {
                Op::Pop => {
                    let got = fl.pop();
                    if free.is_empty() {
                        prop_assert_eq!(got, None);
                    } else {
                        let want = free.remove(0);
                        prop_assert_eq!(got, Some(want));
                        spec.push(want);
                    }
                }
                Op::CommitPop => {
                    if !spec.is_empty() {
                        fl.commit_pop();
                        commits += 1;
                        let r = spec.remove(0);
                        committed_live.push(r);
                        // Drop checkpoints the commit point has passed.
                        ckpts.retain(|&h| commits <= h);
                    }
                }
                Op::PushFreed => {
                    if !committed_live.is_empty() {
                        let r = committed_live.remove(0);
                        fl.push(r);
                        free.push(r);
                    }
                }
                Op::Checkpoint => {
                    ckpts.push(fl.head());
                }
                Op::Restore => {
                    if let Some(head) = ckpts.pop() {
                        // Spec pops to keep after restoring: head - commits.
                        let keep = (head - commits) as usize;
                        prop_assert!(keep <= spec.len(), "model bookkeeping broke");
                        let undone = spec.split_off(keep);
                        fl.restore_head(head);
                        // Un-popped registers return ahead of the current
                        // free queue (they sit at the restored head).
                        let mut restored = undone;
                        restored.append(&mut free);
                        free = restored;
                    }
                }
                Op::FlushToCommitted => {
                    fl.restore_to_committed();
                    let mut restored: Vec<PhysReg> = std::mem::take(&mut spec);
                    restored.append(&mut free);
                    free = restored;
                    ckpts.clear();
                }
            }
            prop_assert_eq!(fl.free_count(), free.len(), "free count diverged");
            let have: Vec<PhysReg> = fl.iter_free().collect();
            prop_assert_eq!(&have, &free, "free order diverged");
        }
    }
}

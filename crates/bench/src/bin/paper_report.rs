//! Generates a compact paper-vs-measured report (the source material for
//! EXPERIMENTS.md) across the headline experiments, using reduced windows.
//!
//! ```sh
//! REGSHARE_MEASURE=120000 cargo run --release -p regshare-bench --bin paper_report
//! ```
//!
//! The whole (workload × config) matrix runs through the parallel sweep
//! engine (`REGSHARE_JOBS` workers), so wall clock scales with cores while
//! the report stays byte-identical to a serial run.

use regshare_bench::{RunWindow, SweepSpec, Table};
use regshare_core::CoreConfig;
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    println!("# Paper-vs-measured headline summary\n");
    println!(
        "window: {} warmup + {} measured µ-ops per run\n",
        window.warmup, window.measure
    );

    let grid = SweepSpec::new(suite(), window)
        .variant("base", CoreConfig::hpca16())
        .variant("meUnl", CoreConfig::hpca16().with_me().with_isrb_entries(0))
        .variant(
            "smbUnl",
            CoreConfig::hpca16().with_smb().with_isrb_entries(0),
        )
        .variant(
            "both32",
            CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_isrb_entries(32),
        )
        .variant(
            "bothUnl",
            CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_isrb_entries(0),
        )
        .run();

    let mut max32: (f64, &str) = (0.0, "-");
    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "me_unl%",
        "smb_unl%",
        "both32%",
        "both_unl%",
    ]);
    for row in grid.rows() {
        let base = row.get("base");
        let s32 = row.speedup("base", "both32");
        if s32 > max32.0 {
            max32 = (s32, row.workload().name);
        }
        t.row(vec![
            row.workload().name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:+.2}", row.speedup("base", "meUnl")),
            format!("{:+.2}", row.speedup("base", "smbUnl")),
            format!("{s32:+.2}"),
            format!("{:+.2}", row.speedup("base", "bothUnl")),
        ]);
    }
    t.print();
    let g32 = grid.geomean_speedup("base", "both32");
    let gun = grid.geomean_speedup("base", "bothUnl");
    println!("combined ME+SMB, 32-entry ISRB: geomean {g32:+.2}% (paper: +5.5%), max {:+.2}% on {} (paper: up to +39.6%)", max32.0, max32.1);
    println!("combined ME+SMB, unlimited:     geomean {gun:+.2}% (paper: +5.6%)");
}

//! Core configuration: Table 1 defaults plus the feature toggles the
//! paper's experiments sweep.

use regshare_distance::{DdtConfig, NosqConfig, TageDistanceConfig};
use regshare_mem::MemConfig;
use regshare_predictors::{StoreSetsConfig, TageConfig};
use regshare_refcount::{
    Isrb, IsrbConfig, Mit, PerRegCounters, Rda, RothMatrix, SharingTracker, UnlimitedTracker,
};

/// Which register reference-counting scheme backs sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerKind {
    /// The paper's ISRB (§4.3).
    Isrb(IsrbConfig),
    /// Ideal unbounded dual counters.
    Unlimited,
    /// Conventional per-register counters with sequential rollback; the
    /// field is the squash-walk width (µ-ops undone per stall cycle).
    PerRegCounters {
        /// µ-ops whose tracker state can be repaired per recovery cycle.
        walk_width: usize,
    },
    /// Roth's ROB×PRF bit-matrix.
    RothMatrix,
    /// Intel's MIT (move elimination only).
    Mit {
        /// Fully-associative entries.
        entries: usize,
    },
    /// Apple's RDA.
    Rda {
        /// Fully-associative entries.
        entries: usize,
        /// Duplicate-counter width.
        counter_bits: u32,
    },
}

impl TrackerKind {
    /// Instantiates the tracker.
    pub fn build(&self, pregs_per_class: usize, rob_entries: usize) -> Box<dyn SharingTracker> {
        match self {
            TrackerKind::Isrb(cfg) => Box::new(Isrb::new(IsrbConfig {
                pregs_per_class,
                ..*cfg
            })),
            TrackerKind::Unlimited => Box::new(UnlimitedTracker::new()),
            TrackerKind::PerRegCounters { walk_width } => {
                Box::new(PerRegCounters::new(pregs_per_class, *walk_width))
            }
            TrackerKind::RothMatrix => Box::new(RothMatrix::new(pregs_per_class, rob_entries)),
            TrackerKind::Mit { entries } => Box::new(Mit::new(*entries)),
            TrackerKind::Rda {
                entries,
                counter_bits,
            } => Box::new(Rda::new(*entries, *counter_bits)),
        }
    }
}

/// Which Instruction Distance predictor drives SMB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistancePredictorKind {
    /// The paper's TAGE-like predictor (§3.1).
    TageLike(TageDistanceConfig),
    /// The NoSQ-style two-table predictor.
    Nosq(NosqConfig),
}

impl Default for DistancePredictorKind {
    fn default() -> Self {
        DistancePredictorKind::TageLike(TageDistanceConfig::hpca16())
    }
}

/// Full core configuration. [`CoreConfig::hpca16`] reproduces Table 1.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    // --- widths & depths (Table 1) ---
    /// Fetch/decode/rename width (µ-ops per cycle).
    pub frontend_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Retire width.
    pub commit_width: usize,
    /// ROB entries.
    pub rob_entries: usize,
    /// Unified IQ entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Physical registers per class (INT and FP each).
    pub pregs_per_class: usize,
    /// Fetch-to-rename depth in cycles (deep front-end: the misprediction
    /// penalty is dominated by this refill).
    pub frontend_depth: u64,
    /// Store-to-load forwarding latency (Table 1: 4 cycles = L1 latency).
    pub stlf_latency: u64,
    /// Fetch bubble charged when a taken-path transfer misses the BTB.
    pub btb_miss_bubble: u64,
    /// Functional units: ALU count (1-cycle; also branches/moves).
    pub alu_units: usize,
    /// Integer multiply/divide unit count (3c mul, 25c unpipelined div).
    pub muldiv_units: usize,
    /// FP add units (3c).
    pub fp_units: usize,
    /// FP mul/div units (5c mul, 10c unpipelined div).
    pub fpmuldiv_units: usize,
    /// Shared load/store AGU ports.
    pub mem_ports: usize,
    /// Additional store-only port.
    pub store_ports: usize,

    // --- predictors & memory ---
    /// TAGE branch predictor geometry.
    pub tage: TageConfig,
    /// BTB entries / ways.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Store Sets geometry.
    pub store_sets: StoreSetsConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,

    // --- the paper's features ---
    /// Enable move elimination (§2).
    pub move_elimination: bool,
    /// Also eliminate FP-to-FP moves (recent Intel cores do; the paper's
    /// Figure 5 is integer-only, so this defaults to off).
    pub me_fp_moves: bool,
    /// Enable speculative memory bypassing (§3).
    pub smb: bool,
    /// Generalize SMB to load-load pairs (§3: on by default; §6.2 ablates).
    pub smb_load_load: bool,
    /// Bypass from committed-but-unreleased ROB entries via lazy reclaim
    /// (§3.3; Figure 6(c)).
    pub smb_from_committed: bool,
    /// Distance predictor choice.
    pub distance_predictor: DistancePredictorKind,
    /// DDT geometry.
    pub ddt: DdtConfig,
    /// Reference-counting scheme.
    pub tracker: TrackerKind,
    /// ISRB CAM ports available to rename per cycle (0 = unlimited);
    /// bypasses beyond this abort (§4.3.4).
    pub tracker_rename_ports: usize,
    /// ISRB CAM ports for reclaim per cycle (0 = unlimited); reclaims
    /// beyond this stall commit (§4.3.4).
    pub tracker_reclaim_ports: usize,
}

impl CoreConfig {
    /// The paper's Table 1 machine with all sharing optimizations off.
    pub fn hpca16() -> CoreConfig {
        CoreConfig {
            frontend_width: 8,
            issue_width: 6,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 60,
            lq_entries: 72,
            sq_entries: 48,
            pregs_per_class: 256,
            frontend_depth: 13,
            stlf_latency: 4,
            btb_miss_bubble: 3,
            alu_units: 4,
            muldiv_units: 1,
            fp_units: 2,
            fpmuldiv_units: 2,
            mem_ports: 2,
            store_ports: 1,
            tage: TageConfig::hpca16(),
            btb_entries: 4096,
            btb_ways: 2,
            ras_entries: 32,
            store_sets: StoreSetsConfig::hpca16(),
            mem: MemConfig::hpca16(),
            move_elimination: false,
            me_fp_moves: false,
            smb: false,
            smb_load_load: true,
            smb_from_committed: false,
            distance_predictor: DistancePredictorKind::default(),
            ddt: DdtConfig::base16k(),
            tracker: TrackerKind::Isrb(IsrbConfig::hpca16()),
            tracker_rename_ports: 0,
            tracker_reclaim_ports: 0,
        }
    }

    /// Table 1 machine with ME enabled.
    pub fn with_me(mut self) -> CoreConfig {
        self.move_elimination = true;
        self
    }

    /// Table 1 machine with SMB enabled.
    pub fn with_smb(mut self) -> CoreConfig {
        self.smb = true;
        self
    }

    /// Replaces the tracker.
    pub fn with_tracker(mut self, tracker: TrackerKind) -> CoreConfig {
        self.tracker = tracker;
        self
    }

    /// Replaces the ISRB entry count (shorthand for the figures' sweeps;
    /// 0 = unlimited).
    pub fn with_isrb_entries(mut self, entries: usize) -> CoreConfig {
        let cfg = match &self.tracker {
            TrackerKind::Isrb(c) => IsrbConfig { entries, ..*c },
            _ => IsrbConfig {
                entries,
                ..IsrbConfig::hpca16()
            },
        };
        self.tracker = TrackerKind::Isrb(cfg);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::hpca16();
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.iq_entries, 60);
        assert_eq!((c.lq_entries, c.sq_entries), (72, 48));
        assert_eq!(c.pregs_per_class, 256);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.stlf_latency, 4);
        assert!(!c.move_elimination && !c.smb);
    }

    #[test]
    fn builders_compose() {
        let c = CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(24);
        assert!(c.move_elimination && c.smb);
        match c.tracker {
            TrackerKind::Isrb(i) => assert_eq!(i.entries, 24),
            _ => panic!(),
        }
    }

    #[test]
    fn all_trackers_instantiate() {
        for kind in [
            TrackerKind::Isrb(IsrbConfig::hpca16()),
            TrackerKind::Unlimited,
            TrackerKind::PerRegCounters { walk_width: 8 },
            TrackerKind::RothMatrix,
            TrackerKind::Mit { entries: 8 },
            TrackerKind::Rda {
                entries: 8,
                counter_bits: 3,
            },
        ] {
            let t = kind.build(256, 192);
            assert!(!t.name().is_empty());
        }
    }
}

# box_blur — 3x3 mean filter over a 16x16 u64 image (interior cells only).
#
# The source image is generated in place (the simulated memory is not
# zero-filled), each interior output cell is the integer mean of its nine
# neighbours — exercising the unpipelined divider — and the epilogue folds
# the blurred interior into a position-weighted checksum compared against a
# precomputed constant. r15 = 1 on success, 0 on failure.

.equ SRC 0x1000          # 256 * 8 bytes
.equ DST 0x2000          # DST - SRC = 0x1000, used to relocate addresses
.equ CHK 3200319         # sum over interior of DST[idx]*(idx+1)

# ---- init: SRC[k] = (7k^2 + 13k + 5) & 255 ---------------------------------
    li r9, SRC
    li r10, DST
    li r2, 0
binit:
    mul r6, r2, r2
    mul r6, r6, 7
    mul r7, r2, 13
    add r6, r6, r7
    add r6, r6, 5
    and r6, r6, 255
    shl r5, r2, 3
    add r5, r5, r9
    st r6, r5, 0
    add r2, r2, 1
    bne r2, 256, binit

# ---- blur: DST[y][x] = mean of the 3x3 neighbourhood (row stride 128) ------
    li r2, 1             # y
yloop:
    li r3, 1             # x
xloop:
    shl r5, r2, 4        # &SRC[y*16+x]
    add r5, r5, r3
    shl r5, r5, 3
    add r5, r5, r9
    ld r4, r5, -136      # row above
    ld r6, r5, -128
    add r4, r4, r6
    ld r6, r5, -120
    add r4, r4, r6
    ld r6, r5, -8        # same row
    add r4, r4, r6
    ld r6, r5, 0
    add r4, r4, r6
    ld r6, r5, 8
    add r4, r4, r6
    ld r6, r5, 120       # row below
    add r4, r4, r6
    ld r6, r5, 128
    add r4, r4, r6
    ld r6, r5, 136
    add r4, r4, r6
    div r4, r4, 9
    add r6, r5, 0x1000   # same cell in DST
    st r4, r6, 0
    add r3, r3, 1
    bne r3, 15, xloop
    add r2, r2, 1
    bne r2, 15, yloop

# ---- self-check: weighted checksum of the blurred interior -----------------
    li r13, 0
    li r2, 1             # y
cy:
    li r3, 1             # x
cx:
    shl r5, r2, 4        # idx = y*16+x
    add r5, r5, r3
    mov r7, r5
    shl r5, r5, 3
    add r5, r5, r10
    ld r6, r5, 0
    add r7, r7, 1
    mul r6, r6, r7
    add r13, r13, r6
    add r3, r3, 1
    bne r3, 15, cx
    add r2, r2, 1
    bne r2, 15, cy
    li r14, CHK
    bne r13, r14, fail
    li r15, 1
    halt
fail:
    li r15, 0
    halt

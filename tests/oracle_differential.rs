//! Oracle differential tests: the out-of-order simulator, under every
//! sharing configuration, must commit exactly the architectural trace the
//! in-order oracle interpreter produces — same µ-ops, same PCs, same
//! results — and keep its register accounting clean. Register sharing (ME,
//! SMB, lazy reclaim) is a pure microarchitectural optimization; any digest
//! divergence means it corrupted architectural state.

use regshare::core::{CoreConfig, Simulator};
use regshare::isa::Machine;
use regshare::types::hasher::mix64;
use regshare::workloads::{by_names, Workload};
use std::sync::Arc;

const UOPS: u64 = 30_000;

/// Folds the first `uops` in-order µ-ops exactly the way
/// `Simulator::commit_one` folds the committed trace.
fn oracle_digest(wl: &Workload, uops: u64) -> u64 {
    let mut m = Machine::new(Arc::new(wl.build()));
    let mut digest = 0u64;
    for _ in 0..uops {
        let u = m.step();
        digest = mix64(digest ^ u.pc).wrapping_add(mix64(u.result));
    }
    digest
}

fn configs() -> Vec<(&'static str, CoreConfig)> {
    vec![
        ("baseline", CoreConfig::hpca16()),
        ("me", CoreConfig::hpca16().with_me()),
        ("smb", CoreConfig::hpca16().with_smb()),
        ("me+smb", CoreConfig::hpca16().with_me().with_smb()),
    ]
}

fn check_workload(wl: &Workload) {
    let expected = oracle_digest(wl, UOPS);
    let program = wl.build();
    for (cfg_name, cfg) in configs() {
        let mut sim = Simulator::new(&program, cfg);
        let s = sim.run(UOPS);
        assert_eq!(s.committed, UOPS, "{}/{cfg_name}: short run", wl.name);
        assert_eq!(
            sim.arch_digest(),
            expected,
            "{}/{cfg_name}: committed trace diverged from the in-order oracle",
            wl.name
        );
        sim.audit_registers()
            .unwrap_or_else(|e| panic!("{}/{cfg_name}: register audit failed: {e}", wl.name));
    }
}

/// The differential matrix over a behaviourally diverse sample: the ME
/// standout, the SMB/spill stars, alias-trap and pointer-chase workloads,
/// and FP streaming — every sharing mechanism gets exercised against the
/// oracle.
#[test]
fn simulator_matches_oracle_across_configs() {
    for wl in by_names(&[
        "crafty", "vortex", "hmmer", "astar", "mcf", "wupwise", "applu", "mgrid",
    ]) {
        check_workload(&wl);
    }
}

/// Unlimited-ISRB + lazy reclaim is the most aggressive sharing point the
/// paper evaluates; it must still be architecturally invisible.
#[test]
fn aggressive_sharing_matches_oracle() {
    for wl in by_names(&["astar", "hmmer", "applu"]) {
        let name = wl.name.clone();
        let expected = oracle_digest(&wl, UOPS);
        let program = wl.build();
        let mut cfg = CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(0);
        cfg.smb_from_committed = true;
        let mut sim = Simulator::new(&program, cfg);
        sim.run(UOPS);
        assert_eq!(
            sim.arch_digest(),
            expected,
            "{name}: lazy-reclaim unlimited-ISRB run diverged from the oracle"
        );
        sim.audit_registers()
            .unwrap_or_else(|e| panic!("{name}: register audit failed: {e}"));
    }
}

//! Every structurally impossible configuration the builder must reject,
//! and the exact typed error it must reject it with. Before validation
//! existed these configs silently deadlocked the simulator or modelled
//! machines that cannot exist.

use regshare_core::{ConfigError, CoreConfig, TrackerKind};
use regshare_refcount::IsrbConfig;

#[test]
fn table1_machine_is_valid() {
    assert_eq!(CoreConfig::hpca16().validate(), Ok(()));
    assert_eq!(CoreConfig::hpca16().with_me().with_smb().validate(), Ok(()));
}

#[test]
fn builder_accepts_every_paper_design_point() {
    for entries in [0, 8, 16, 24, 32] {
        let cfg = CoreConfig::builder()
            .move_elimination(true)
            .smb(true)
            .isrb_entries(entries)
            .build()
            .expect("paper design point");
        cfg.validate().expect("built configs are valid");
    }
}

#[test]
fn zero_widths_are_rejected_with_the_field_name() {
    for (field, f) in [
        (
            "frontend_width",
            Box::new(|c: &mut CoreConfig| c.frontend_width = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "issue_width",
            Box::new(|c: &mut CoreConfig| c.issue_width = 0),
        ),
        (
            "commit_width",
            Box::new(|c: &mut CoreConfig| c.commit_width = 0),
        ),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroWidth(field));
        assert!(err.to_string().contains(field), "message names the field");
    }
}

#[test]
fn empty_windows_are_rejected_with_the_field_name() {
    for (field, f) in [
        (
            "rob_entries",
            Box::new(|c: &mut CoreConfig| c.rob_entries = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "iq_entries",
            Box::new(|c: &mut CoreConfig| c.iq_entries = 0),
        ),
        (
            "lq_entries",
            Box::new(|c: &mut CoreConfig| c.lq_entries = 0),
        ),
        (
            "sq_entries",
            Box::new(|c: &mut CoreConfig| c.sq_entries = 0),
        ),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroCapacity(field));
    }
}

#[test]
fn zero_functional_units_are_rejected() {
    for (field, f) in [
        (
            "alu_units",
            Box::new(|c: &mut CoreConfig| c.alu_units = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "muldiv_units",
            Box::new(|c: &mut CoreConfig| c.muldiv_units = 0),
        ),
        ("fp_units", Box::new(|c: &mut CoreConfig| c.fp_units = 0)),
        (
            "fpmuldiv_units",
            Box::new(|c: &mut CoreConfig| c.fpmuldiv_units = 0),
        ),
        ("mem_ports", Box::new(|c: &mut CoreConfig| c.mem_ports = 0)),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroUnits(field));
    }
}

#[test]
fn prf_must_cover_the_architectural_registers() {
    // 16 architectural registers per class: 16 pregs leaves rename no
    // destination to allocate, 17 is the floor.
    let err = CoreConfig::builder()
        .pregs_per_class(16)
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::PrfTooSmall { pregs: 16, min: 17 });
    // (unlimited ISRB: a 32-entry ISRB over a 17-register PRF would trip
    // the IsrbExceedsPrf check first)
    assert!(CoreConfig::builder()
        .pregs_per_class(17)
        .isrb_entries(0)
        .build()
        .is_ok());
}

#[test]
fn isrb_larger_than_prf_is_rejected() {
    let err = CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(65)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::IsrbExceedsPrf {
            entries: 65,
            pregs: 64
        }
    );
    // entries == pregs is the degenerate-but-legal maximum, and 0 means
    // unlimited rather than "zero entries".
    assert!(CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(64)
        .build()
        .is_ok());
    assert!(CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(0)
        .build()
        .is_ok());
}

#[test]
fn isrb_counter_width_must_fit_a_checkpointable_counter() {
    for bits in [0u32, 32, 64] {
        let err = CoreConfig::builder()
            .tracker(TrackerKind::Isrb(IsrbConfig {
                counter_bits: bits,
                ..IsrbConfig::hpca16()
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::CounterBitsOutOfRange {
                tracker: "isrb",
                bits
            }
        );
    }
    for bits in [1u32, 3, 31] {
        assert!(CoreConfig::builder()
            .tracker(TrackerKind::Isrb(IsrbConfig {
                counter_bits: bits,
                ..IsrbConfig::hpca16()
            }))
            .build()
            .is_ok());
    }
}

#[test]
fn zero_walk_width_is_rejected() {
    let err = CoreConfig::builder()
        .tracker(TrackerKind::PerRegCounters { walk_width: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWalkWidth);
}

#[test]
fn empty_associative_trackers_are_rejected() {
    let err = CoreConfig::builder()
        .tracker(TrackerKind::Mit { entries: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroTrackerEntries("mit"));

    let err = CoreConfig::builder()
        .tracker(TrackerKind::Rda {
            entries: 0,
            counter_bits: 3,
        })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroTrackerEntries("rda"));

    let err = CoreConfig::builder()
        .tracker(TrackerKind::Rda {
            entries: 32,
            counter_bits: 0,
        })
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::CounterBitsOutOfRange {
            tracker: "rda",
            bits: 0
        }
    );
}

#[test]
fn config_error_implements_std_error() {
    let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroWalkWidth);
    assert!(!err.to_string().is_empty());
}

/// One table covering *every* `ConfigError` variant: a builder mutation
/// that must trip exactly that variant, plus a fragment its message must
/// contain. The match in `covered` is exhaustive, so adding a variant
/// without extending the table is a compile error here.
#[test]
fn every_config_error_variant_has_a_rejection_path_and_message() {
    fn covered(err: &ConfigError) -> &'static str {
        // Exhaustive: a new variant fails to compile until it is added to
        // the table below and given a needle here.
        match err {
            ConfigError::ZeroWidth(_) => "must be non-zero",
            ConfigError::ZeroCapacity(_) => "at least one entry",
            ConfigError::ZeroUnits(_) => "must be non-zero",
            ConfigError::PrfTooSmall { .. } => "architectural registers",
            ConfigError::IsrbExceedsPrf { .. } => "larger than",
            ConfigError::CounterBitsOutOfRange { .. } => "outside 1..=31",
            ConfigError::ZeroWalkWidth => "walk_width",
            ConfigError::ZeroTrackerEntries(_) => "at least one entry",
            ConfigError::TageGeometry { .. } => "TAGE",
        }
    }

    type Case = (&'static str, Box<dyn Fn(&mut CoreConfig)>, ConfigError);
    let cases: Vec<Case> = vec![
        (
            "zero width",
            Box::new(|c| c.frontend_width = 0),
            ConfigError::ZeroWidth("frontend_width"),
        ),
        (
            "zero capacity",
            Box::new(|c| c.rob_entries = 0),
            ConfigError::ZeroCapacity("rob_entries"),
        ),
        (
            "zero units",
            Box::new(|c| c.alu_units = 0),
            ConfigError::ZeroUnits("alu_units"),
        ),
        (
            "prf too small",
            Box::new(|c| c.pregs_per_class = 16),
            ConfigError::PrfTooSmall { pregs: 16, min: 17 },
        ),
        (
            "isrb exceeds prf",
            Box::new(|c| {
                c.tracker = TrackerKind::Isrb(IsrbConfig {
                    entries: 1000,
                    ..IsrbConfig::hpca16()
                })
            }),
            ConfigError::IsrbExceedsPrf {
                entries: 1000,
                pregs: CoreConfig::hpca16().pregs_per_class,
            },
        ),
        (
            "counter bits out of range",
            Box::new(|c| {
                c.tracker = TrackerKind::Isrb(IsrbConfig {
                    counter_bits: 0,
                    ..IsrbConfig::hpca16()
                })
            }),
            ConfigError::CounterBitsOutOfRange {
                tracker: "isrb",
                bits: 0,
            },
        ),
        (
            "zero walk width",
            Box::new(|c| c.tracker = TrackerKind::PerRegCounters { walk_width: 0 }),
            ConfigError::ZeroWalkWidth,
        ),
        (
            "zero tracker entries",
            Box::new(|c| c.tracker = TrackerKind::Mit { entries: 0 }),
            ConfigError::ZeroTrackerEntries("mit"),
        ),
        (
            "tage geometry",
            Box::new(|c| c.tage.components[0].log_entries = 32),
            {
                let mut c = CoreConfig::hpca16();
                c.tage.components[0].log_entries = 32;
                ConfigError::TageGeometry {
                    components: c.tage.components.len(),
                    max_log_entries: 32,
                }
            },
        ),
    ];

    for (what, mutate, expected) in &cases {
        let err = CoreConfig::builder().tweak(&**mutate).build().unwrap_err();
        assert_eq!(&err, expected, "{what}");
        let needle = covered(&err);
        assert!(
            err.to_string().contains(needle),
            "{what}: message {:?} lacks {needle:?}",
            err.to_string()
        );
    }

    // Every variant the match above names appears in the table — the two
    // lists can only drift if someone edits one without the other, and the
    // exhaustive match already pins the enum side.
    let covered_variants: Vec<_> = cases
        .iter()
        .map(|(_, _, e)| std::mem::discriminant(e))
        .collect();
    for i in 0..covered_variants.len() {
        for j in i + 1..covered_variants.len() {
            assert_ne!(
                covered_variants[i], covered_variants[j],
                "rows {i} and {j} exercise the same variant"
            );
        }
    }
    assert_eq!(
        covered_variants.len(),
        9,
        "one case per ConfigError variant"
    );
}

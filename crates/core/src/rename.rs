//! Rename structures: per-class Rename Map, checkpointable circular Free
//! List, and Commit Rename Map (§4.1).

use regshare_types::{ArchReg, PhysReg, ARCH_REGS_PER_CLASS};

/// A speculative or committed rename map for both register classes, with
/// the §4.3.4 per-architectural-register "likely shared" flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameMap {
    map: [PhysReg; ArchReg::COUNT],
    shared_flag: [bool; ArchReg::COUNT],
}

impl RenameMap {
    /// Identity mapping: architectural register `i` → physical register `i`
    /// in its class.
    pub fn identity() -> RenameMap {
        let mut map = [PhysReg::new(0); ArchReg::COUNT];
        for (i, m) in map.iter_mut().enumerate() {
            *m = PhysReg::new(i % ARCH_REGS_PER_CLASS);
        }
        RenameMap {
            map,
            shared_flag: [false; ArchReg::COUNT],
        }
    }

    /// Current physical register of `reg`.
    #[inline]
    pub fn lookup(&self, reg: ArchReg) -> PhysReg {
        self.map[reg.flat()]
    }

    /// Remaps `reg` to `preg`, returning the old mapping.
    #[inline]
    pub fn remap(&mut self, reg: ArchReg, preg: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[reg.flat()], preg)
    }

    /// Reads the §4.3.4 shared flag.
    #[inline]
    pub fn shared_flag(&self, reg: ArchReg) -> bool {
        self.shared_flag[reg.flat()]
    }

    /// Writes the §4.3.4 shared flag.
    #[inline]
    pub fn set_shared_flag(&mut self, reg: ArchReg, v: bool) {
        self.shared_flag[reg.flat()] = v;
    }

    /// Iterates over all (arch, phys) mappings.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, PhysReg)> + '_ {
        self.map
            .iter()
            .enumerate()
            .map(|(i, &p)| (ArchReg::from_flat(i), p))
    }
}

regshare_types::impl_snap!(RenameMap { map, shared_flag });

/// A checkpointable circular free list for one register class (§4.1).
///
/// Pops advance the speculative head; pushes advance the tail (pushes are
/// always architectural: reclaiming happens at or after commit). Branch
/// recovery restores the speculative head; commit-time flushes restore it
/// to the committed head, which advances as allocations commit.
///
/// # Examples
///
/// ```
/// use regshare_core::rename::FreeList;
/// use regshare_types::PhysReg;
///
/// let mut fl = FreeList::new(16, 4); // pregs 4..16 initially free
/// let ck = fl.head();
/// let a = fl.pop().unwrap();
/// fl.restore_head(ck); // misprediction: un-pop
/// assert_eq!(fl.pop(), Some(a));
/// ```
#[derive(Debug, Clone)]
pub struct FreeList {
    ring: Vec<PhysReg>,
    /// Monotonic pop index (speculative).
    head: u64,
    /// Monotonic pop index as of the last commit.
    committed_head: u64,
    /// Monotonic push index.
    tail: u64,
    capacity: usize,
}

impl FreeList {
    /// Creates a free list over `pregs` physical registers of which the
    /// first `reserved` (the initial architectural mappings) are live.
    pub fn new(pregs: usize, reserved: usize) -> FreeList {
        assert!(reserved <= pregs);
        // Ring sized 2× so restored heads never collide with pushes.
        let cap = 2 * pregs;
        let mut ring = vec![PhysReg::new(0); cap];
        for (i, slot) in (reserved..pregs).enumerate() {
            ring[i] = PhysReg::new(slot);
        }
        FreeList {
            ring,
            head: 0,
            committed_head: 0,
            tail: (pregs - reserved) as u64,
            capacity: cap,
        }
    }

    /// Free registers available right now.
    #[inline]
    pub fn free_count(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Pops a free register, or `None` when empty (rename stalls).
    #[inline]
    pub fn pop(&mut self) -> Option<PhysReg> {
        if self.head == self.tail {
            return None;
        }
        let r = self.ring[(self.head % self.capacity as u64) as usize];
        self.head += 1;
        Some(r)
    }

    /// Pushes a reclaimed register.
    #[inline]
    pub fn push(&mut self, preg: PhysReg) {
        debug_assert!(
            self.tail - self.committed_head < self.capacity as u64,
            "free list overflow (double free?)"
        );
        self.ring[(self.tail % self.capacity as u64) as usize] = preg;
        self.tail += 1;
    }

    /// Speculative head (checkpoint token).
    #[inline]
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Restores the speculative head from a checkpoint (branch recovery).
    #[inline]
    pub fn restore_head(&mut self, head: u64) {
        debug_assert!(head <= self.head && head >= self.committed_head);
        self.head = head;
    }

    /// One speculative pop became architectural (its µ-op committed).
    #[inline]
    pub fn commit_pop(&mut self) {
        debug_assert!(self.committed_head < self.head);
        self.committed_head += 1;
    }

    /// Commit-time flush: forget all speculative pops.
    #[inline]
    pub fn restore_to_committed(&mut self) {
        self.head = self.committed_head;
    }

    /// Registers currently in the free list (for audits).
    pub fn iter_free(&self) -> impl Iterator<Item = PhysReg> + '_ {
        (self.head..self.tail).map(move |i| self.ring[(i % self.capacity as u64) as usize])
    }
}

impl regshare_types::snapshot::Snapshot for FreeList {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.ring.encode(w);
        w.put_u64(self.head);
        w.put_u64(self.committed_head);
        w.put_u64(self.tail);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let ring: Vec<PhysReg> = Snap::decode(r)?;
        if ring.len() != self.ring.len() {
            return Err(r.corrupt("FreeList ring size"));
        }
        let head = r.get_u64()?;
        let committed_head = r.get_u64()?;
        let tail = r.get_u64()?;
        if committed_head > head || head > tail {
            return Err(r.corrupt("FreeList pointer order"));
        }
        self.ring = ring;
        self.head = head;
        self.committed_head = committed_head;
        self.tail = tail;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_and_remap() {
        let mut rm = RenameMap::identity();
        assert_eq!(rm.lookup(ArchReg::int(5)), PhysReg::new(5));
        assert_eq!(rm.lookup(ArchReg::fp(5)), PhysReg::new(5));
        let old = rm.remap(ArchReg::int(5), PhysReg::new(40));
        assert_eq!(old, PhysReg::new(5));
        assert_eq!(rm.lookup(ArchReg::int(5)), PhysReg::new(40));
    }

    #[test]
    fn shared_flags() {
        let mut rm = RenameMap::identity();
        assert!(!rm.shared_flag(ArchReg::int(2)));
        rm.set_shared_flag(ArchReg::int(2), true);
        assert!(rm.shared_flag(ArchReg::int(2)));
    }

    #[test]
    fn pop_push_cycle() {
        let mut fl = FreeList::new(8, 4);
        assert_eq!(fl.free_count(), 4);
        let regs: Vec<_> = (0..4).map(|_| fl.pop().unwrap()).collect();
        assert_eq!(
            regs,
            vec![
                PhysReg::new(4),
                PhysReg::new(5),
                PhysReg::new(6),
                PhysReg::new(7)
            ]
        );
        assert_eq!(fl.pop(), None);
        for _ in 0..4 {
            fl.commit_pop();
        }
        fl.push(PhysReg::new(5));
        assert_eq!(fl.pop(), Some(PhysReg::new(5)));
    }

    #[test]
    fn branch_recovery_unpops() {
        let mut fl = FreeList::new(8, 4);
        let _a = fl.pop().unwrap();
        fl.commit_pop();
        let ck = fl.head();
        let b = fl.pop().unwrap();
        let c = fl.pop().unwrap();
        fl.restore_head(ck);
        assert_eq!(fl.pop(), Some(b));
        assert_eq!(fl.pop(), Some(c));
    }

    #[test]
    fn commit_flush_restores_committed_state() {
        let mut fl = FreeList::new(8, 4);
        let _a = fl.pop().unwrap();
        fl.commit_pop(); // a architectural
        let b = fl.pop().unwrap(); // speculative
        let _c = fl.pop().unwrap(); // speculative
        fl.restore_to_committed();
        assert_eq!(fl.free_count(), 3);
        assert_eq!(fl.pop(), Some(b));
    }

    #[test]
    fn interleaved_push_restore_keeps_ring_consistent() {
        let mut fl = FreeList::new(8, 4);
        let popped: Vec<_> = (0..4).map(|_| fl.pop().unwrap()).collect();
        // Two commits, two speculative.
        fl.commit_pop();
        fl.commit_pop();
        let ck = fl.head() - 2; // checkpoint right after the commits

        // Architectural frees arrive while speculation is outstanding.
        fl.push(PhysReg::new(4));
        fl.push(PhysReg::new(6));
        fl.restore_head(ck);
        // Un-popped regs come back in order, then the pushed ones.
        assert_eq!(fl.pop(), Some(popped[2]));
        assert_eq!(fl.pop(), Some(popped[3]));
        assert_eq!(fl.pop(), Some(PhysReg::new(4)));
        assert_eq!(fl.pop(), Some(PhysReg::new(6)));
    }

    #[test]
    fn audit_iterator_sees_free_regs() {
        let mut fl = FreeList::new(8, 4);
        let free: Vec<_> = fl.iter_free().collect();
        assert_eq!(free.len(), 4);
        fl.pop();
        assert_eq!(fl.iter_free().count(), 3);
    }

    /// Per-class container used by the simulator.
    #[test]
    fn per_class_instantiation() {
        let int = FreeList::new(256, ARCH_REGS_PER_CLASS);
        let fp = FreeList::new(256, ARCH_REGS_PER_CLASS);
        assert_eq!(int.free_count(), 240);
        assert_eq!(fp.free_count(), 240);
        let _ = regshare_types::RegClass::ALL;
    }
}

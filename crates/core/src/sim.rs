//! The cycle-level simulator: fetch → rename (+ME/+SMB) → dispatch → issue
//! → execute → writeback → commit, with checkpoint-based recovery.
//!
//! See the crate docs for the modelled machine. The per-cycle stage order is
//! commit, writeback (event processing), load-queue pump, issue,
//! rename/dispatch, fetch — i.e. reverse pipeline order, so values produced
//! in a cycle are visible to younger stages one cycle later.

use crate::config::{CoreConfig, DistancePredictorKind};
use crate::lsq::{LoadAction, LoadQueue, LqEntry, SqEntry, StoreQueue};
use crate::rename::{FreeList, RenameMap};
use crate::rob::{BranchInfo, BypassInfo, DstInfo, Rob, RobCold, RobEntry, RobHot, TrapKind};
use crate::stats::SimStats;
use regshare_distance::{CsnMap, Ddt, DistancePredictor, NosqDistance, TageDistance};
use regshare_isa::op::{BranchKind, DynUop, ExecClass, Op, UopKind};
use regshare_isa::program::Program;
use regshare_isa::FetchStream;
use regshare_mem::{MemResult, MemorySystem};
use regshare_predictors::tage::{TageHistory, TagePrediction};
use regshare_predictors::{Btb, ReturnAddressStack, StoreSets, Tage};
use regshare_refcount::{ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker};
use regshare_types::hasher::{mix64, FastHasher, FastMap};
use regshare_types::snapshot::{
    read_header, write_header, Snap, SnapError, SnapReader, SnapWriter, Snapshot,
};
use regshare_types::{
    Addr, Cycle, HistorySnapshot, PhysReg, RegClass, SeqNum, ARCH_REGS_PER_CLASS,
};
use std::collections::VecDeque;
use std::sync::Arc;

const WHEEL: usize = 8192;
const NOT_READY: u64 = u64::MAX;

/// Execution latencies per functional-unit class (Table 1).
fn latency(class: ExecClass) -> u64 {
    match class {
        ExecClass::IntAlu => 1,
        ExecClass::IntMul => 3,
        ExecClass::IntDiv => 25,
        ExecClass::FpAdd => 3,
        ExecClass::FpMul => 5,
        ExecClass::FpDiv => 10,
        ExecClass::Load | ExecClass::Store => 1, // AGU; memory time follows
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Address generation finished for a load/store.
    Agu { seq: SeqNum, uid: u64 },
    /// µ-op execution finished.
    Complete { seq: SeqNum, uid: u64 },
}

#[derive(Debug, Clone, Copy)]
struct IqEntry {
    seq: SeqNum,
    class: ExecClass,
    /// Flat scoreboard indices (`class * pregs_per_class + preg`): the
    /// per-cycle wakeup check is a single indexed load per source.
    srcs: [u32; 4],
    n_srcs: u8,
    /// Store Sets ordering dependence (store the µ-op must wait on).
    dep_store: Option<SeqNum>,
    /// The dependence actually delayed issue at least once.
    waited_dep: bool,
}

/// Fetch-time predictor state captured per mispredictable branch.
#[derive(Debug, Clone)]
struct FetchSnap {
    tage: TageHistory,
    ras: ReturnAddressStack,
    hist: HistorySnapshot,
}

/// Rename-time checkpoint (merged with the fetch snapshot).
///
/// The rename map is tiny (two 16-entry classes), so a flat copy *is* the
/// compact checkpoint — it carries no heap. The fetch snapshot keeps the
/// `Box` it was predicted into; dead checkpoints return it to the
/// simulator's snapshot pool, so steady-state checkpoint traffic neither
/// allocates nor frees.
#[derive(Debug)]
struct Checkpoint {
    rm: RenameMap,
    fl_heads: [u64; 2],
    tracker: u64,
    fetch: Box<FetchSnap>,
}

/// Reusable buffers for the per-cycle and per-recovery work lists. All of
/// them follow the same discipline: `mem::take` out of the simulator,
/// fill/drain locally (sidestepping closure-vs-method borrow conflicts),
/// clear, and put back — so `step()` never allocates in steady state.
#[derive(Debug, Default)]
struct Scratch {
    /// Squashed µ-ops' accepted shares (squash-walk pass 1).
    shares: Vec<(RegClass, PhysReg)>,
    /// Squashed µ-ops' fresh allocations (squash-walk pass 2).
    allocs: Vec<(RegClass, PhysReg)>,
    /// Registers freed by a tracker restore.
    freed: Vec<(RegClass, PhysReg)>,
    /// Checkpoints owned by squashed branches.
    dead_ckpts: Vec<u64>,
    /// Parked loads to re-pump this cycle.
    retry: Vec<SeqNum>,
    /// IQ indices issued this cycle (ascending).
    issued: Vec<usize>,
    /// Event list of the wheel slot being drained.
    events: Vec<Event>,
}

/// Upper bound on pooled fetch snapshots: enough for every live checkpoint
/// plus the whole fetch pipe; beyond that, retiring snapshots simply drop.
const SNAP_POOL_CAP: usize = 256;

/// Bound on the retired TAGE-prediction box pool (see `tage_pool`).
const TAGE_POOL_CAP: usize = 256;

#[derive(Debug)]
struct PipeUop {
    ready: u64,
    uop: DynUop,
    pred: Option<PredInfo>,
}

#[derive(Debug)]
struct PredInfo {
    pred_next: u32,
    pred_taken: bool,
    /// Boxed: ~150 B inline, and it rides every pipe/ROB move otherwise.
    tage_pred: Option<Box<TagePrediction>>,
    snap: Option<Box<FetchSnap>>,
}

/// The simulator. Construct with [`Simulator::new`], drive with
/// [`Simulator::run`] or [`Simulator::run_cycles`], read [`Simulator::stats`].
pub struct Simulator {
    cfg: CoreConfig,
    program: Arc<Program>,
    stream: FetchStream,
    mem: MemorySystem,

    // predictors
    tage: Tage,
    btb: Btb,
    ras: ReturnAddressStack,
    store_sets: StoreSets,
    dist_pred: Box<dyn DistancePredictor>,
    ddt: Ddt,
    csn: CsnMap,

    // rename state
    tracker: Box<dyn SharingTracker>,
    rm: RenameMap,
    crm: RenameMap,
    fl: [FreeList; 2],
    /// Physical register values and ready cycles, both classes in one
    /// stride-indexed lane each (index = `class * pregs_per_class + preg`).
    prf_value: Vec<u64>,
    prf_ready: Vec<u64>,

    // backend
    rob: Rob,
    iq: Vec<IqEntry>,
    /// Parallel to `iq`: the cycle before which the entry provably cannot
    /// have all sources ready. `NOT_READY` parks an entry blocked on a
    /// source with no scheduled wakeup yet; it is registered in `waiters`
    /// for that source and re-evaluated when the source gets a finite
    /// ready cycle. The per-cycle scan reads this one word per entry and
    /// only touches the entry itself once the hint expires. Transient
    /// (rebuilt on snapshot load), never part of saved state.
    iq_wait: Vec<u64>,
    /// Per flat-scoreboard-index lists of IQ entry seqs parked on that
    /// source (see `iq_wait`). Entries are self-validating at wake time
    /// (looked up by seq and re-checked against `prf_ready`), so stale
    /// seqs left behind by squashes are harmless and simply skipped.
    waiters: Vec<Vec<SeqNum>>,
    lq: LoadQueue,
    sq: StoreQueue,
    wheel: Vec<Vec<Event>>,
    int_div_busy: Vec<u64>,
    fp_div_busy: Vec<u64>,

    // frontend
    pipe: VecDeque<PipeUop>,
    pending_fetch: Option<DynUop>,
    fetch_stall_until: u64,
    rename_stall_until: u64,
    last_fetch_line: Addr,
    spec_hist: HistorySnapshot,

    // architectural history images (for commit-time flush recovery)
    arch_tage: TageHistory,
    arch_ras: ReturnAddressStack,
    arch_hist: HistorySnapshot,

    // checkpoints
    ckpts: FastMap<u64, Checkpoint>,
    next_ckpt: u64,

    // hot-loop buffer reuse
    scratch: Scratch,
    /// Pool of retired fetch snapshots. Deliberately boxed: the boxes move
    /// whole into `PredInfo`/`Checkpoint` and back, so reuse costs a
    /// pointer, not a `FetchSnap` copy.
    #[allow(clippy::vec_box)]
    snap_pool: Vec<Box<FetchSnap>>,
    /// Pool of retired TAGE prediction boxes (same rationale).
    #[allow(clippy::vec_box)]
    tage_pool: Vec<Box<TagePrediction>>,
    /// Whether any load may be parked (AGU done, completion not yet
    /// scheduled) — lets the pump skip its ROB scan on quiet cycles.
    loads_parked: bool,
    /// After a bypass-mispredict flush, the refetched instance of the
    /// trapping load executes conservatively (no re-bypass). Without this,
    /// a stably wrong prediction — e.g. a DDT alias whose observed distance
    /// *reinforces* the mispredicting entry at flush-training time —
    /// livelocks under lazy reclaim, where committed producers stay
    /// bypassable across the flush (found by regshare-fuzz).
    no_bypass_seq: Option<SeqNum>,

    now: u64,
    next_uid: u64,
    /// Exact stop point for [`Simulator::run`] (commit stops mid-cycle).
    commit_budget: Option<u64>,
    /// Register lifecycle trace target from `REGSHARE_TRACE=int:<n>|fp:<n>`.
    trace_target: Option<(RegClass, usize)>,
    stats: SimStats,
    arch_digest: u64,
    last_share_seq: Option<u64>,
    last_cam_commit: Option<u64>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("committed", &self.stats.committed)
            .field("tracker", &self.tracker.name())
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator for `program` under `cfg`.
    pub fn new(program: &Program, cfg: CoreConfig) -> Simulator {
        let program = Arc::new(program.clone());
        let pregs = cfg.pregs_per_class;
        let mut tracker = cfg.tracker.build(pregs, cfg.rob_entries);
        // The initial architectural mappings (arch i → preg i) are live
        // single-reference registers; walk-based trackers count them.
        for class in RegClass::ALL {
            for i in 0..ARCH_REGS_PER_CLASS {
                tracker.on_alloc(class, PhysReg::new(i));
            }
        }
        let dist_pred: Box<dyn DistancePredictor> = match &cfg.distance_predictor {
            DistancePredictorKind::TageLike(c) => Box::new(TageDistance::new(c.clone())),
            DistancePredictorKind::Nosq(c) => Box::new(NosqDistance::new(*c)),
        };
        let tage = Tage::new(cfg.tage.clone());
        let arch_tage = tage.snapshot();
        let ras = ReturnAddressStack::new(cfg.ras_entries);
        let mut prf_ready = vec![NOT_READY; 2 * pregs];
        for ci in 0..2 {
            for i in 0..ARCH_REGS_PER_CLASS {
                prf_ready[ci * pregs + i] = 0; // initial mappings are ready
            }
        }
        Simulator {
            stream: FetchStream::with_fetch_key(Arc::clone(&program), cfg.fetch_path_digest()),
            mem: MemorySystem::new(cfg.mem.clone()),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            arch_ras: ras.clone(),
            ras,
            store_sets: StoreSets::new(cfg.store_sets),
            dist_pred,
            ddt: Ddt::new(cfg.ddt),
            csn: CsnMap::new(),
            tracker,
            rm: RenameMap::identity(),
            crm: RenameMap::identity(),
            fl: [
                FreeList::new(pregs, ARCH_REGS_PER_CLASS),
                FreeList::new(pregs, ARCH_REGS_PER_CLASS),
            ],
            prf_value: vec![0; 2 * pregs],
            prf_ready,
            rob: Rob::new(cfg.rob_entries),
            iq: Vec::with_capacity(cfg.iq_entries),
            iq_wait: Vec::with_capacity(cfg.iq_entries),
            waiters: vec![Vec::new(); 2 * pregs],
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            wheel: (0..WHEEL).map(|_| Vec::new()).collect(),
            int_div_busy: vec![0; cfg.muldiv_units],
            fp_div_busy: vec![0; cfg.fpmuldiv_units],
            pipe: VecDeque::new(),
            pending_fetch: None,
            fetch_stall_until: 0,
            rename_stall_until: 0,
            last_fetch_line: Addr::MAX,
            spec_hist: HistorySnapshot::default(),
            arch_tage,
            arch_hist: HistorySnapshot::default(),
            ckpts: FastMap::default(),
            next_ckpt: 0,
            scratch: Scratch::default(),
            snap_pool: Vec::new(),
            tage_pool: Vec::new(),
            loads_parked: false,
            no_bypass_seq: None,
            now: 0,
            next_uid: 0,
            commit_budget: None,
            trace_target: std::env::var("REGSHARE_TRACE").ok().and_then(|v| {
                let (c, p) = v.split_once(':')?;
                let class = match c {
                    "int" => RegClass::Int,
                    "fp" => RegClass::Fp,
                    _ => return None,
                };
                Some((class, p.parse().ok()?))
            }),
            stats: SimStats::default(),
            arch_digest: 0,
            last_share_seq: None,
            last_cam_commit: None,
            tage,
            program,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Memory hierarchy statistics.
    pub fn mem_stats(&self) -> regshare_mem::MemStats {
        *self.mem.stats()
    }

    /// Memory-order violations trained into Store Sets so far.
    pub fn violations_trained(&self) -> u64 {
        self.store_sets.violations_trained()
    }

    /// Tracker storage report.
    pub fn tracker_storage(&self) -> regshare_refcount::StorageReport {
        self.tracker.storage()
    }

    /// Distance predictor storage in bits.
    pub fn distance_storage_bits(&self) -> usize {
        self.dist_pred.storage_bits()
    }

    /// Statistics so far (cycles/committed are running totals; use
    /// [`SimStats::delta_since`] for warmup-excluded windows).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// A digest of the committed architectural trace (pc, result) — two
    /// runs of the same program must produce identical digests regardless
    /// of ME/SMB/tracker configuration, or the optimizations broke
    /// architectural state.
    pub fn arch_digest(&self) -> u64 {
        self.arch_digest
    }

    /// Correct-path µ-ops the front end decoded live (not served by the
    /// stream cache). Zero for a run fully covered by a cached stream.
    /// Deliberately not part of [`SimStats`] or any snapshot: cache warmth
    /// is invisible to the simulated architecture.
    pub fn frontend_decodes(&self) -> u64 {
        self.stream.oracle_decodes()
    }

    /// Runs until `uops` more µ-ops have committed; returns a stats
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a very long time) —
    /// that is a simulator bug, caught loudly.
    pub fn run(&mut self, uops: u64) -> SimStats {
        self.run_with_checkpoints(uops, 0, |_| {})
    }

    /// Like [`Simulator::run`], but invokes `checkpoint` each time another
    /// `every` µ-ops have committed (and the budget is not yet exhausted),
    /// with the simulator paused at a cycle boundary. `every == 0` never
    /// fires, making this exactly `run`.
    ///
    /// The callback observes the machine (typically via
    /// [`Simulator::save_snapshot`]) but cannot mutate it, so a
    /// checkpointed run is byte-identical to an uninterrupted one: the
    /// commit budget is an absolute committed-count target, and a later
    /// `resume_from` + `run(target - committed)` reconstructs the same
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for a very long time) —
    /// that is a simulator bug, caught loudly.
    pub fn run_with_checkpoints(
        &mut self,
        uops: u64,
        every: u64,
        mut checkpoint: impl FnMut(&Simulator),
    ) -> SimStats {
        let target = self.stats.committed + uops;
        self.commit_budget = Some(target);
        let mut last_commit_cycle = self.now;
        let mut last_committed = self.stats.committed;
        let mut mark = if every == 0 {
            u64::MAX
        } else {
            self.stats.committed.saturating_add(every)
        };
        while self.stats.committed < target {
            self.step();
            if self.stats.committed != last_committed {
                last_committed = self.stats.committed;
                last_commit_cycle = self.now;
            }
            assert!(
                self.now - last_commit_cycle < 100_000,
                "pipeline deadlock at cycle {} (committed {})",
                self.now,
                self.stats.committed
            );
            if self.stats.committed >= mark && self.stats.committed < target {
                checkpoint(self);
                mark = self.stats.committed.saturating_add(every);
            }
        }
        self.commit_budget = None;
        self.snapshot_stats()
    }

    /// Runs exactly `n` cycles.
    pub fn run_cycles(&mut self, n: u64) -> SimStats {
        for _ in 0..n {
            self.step();
        }
        self.snapshot_stats()
    }

    /// The stats snapshot `run`/`run_cycles` return: `SimStats` is `Copy`
    /// (plain counters), so this is a flat copy with the live tracker
    /// counters spliced in — no per-call heap clone.
    fn snapshot_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.tracker = self.tracker.stats();
        s
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.commit();
        self.process_events();
        self.lsq_pump();
        self.issue();
        self.rename_dispatch();
        self.fetch();
        self.now += 1;
        self.stats.cycles = self.now;
    }

    /// Flat scoreboard index of `(class, preg)` in `prf_value`/`prf_ready`.
    #[inline]
    fn prf(&self, class: RegClass, preg: PhysReg) -> usize {
        class.index() * self.cfg.pregs_per_class + preg.index()
    }

    /// Computes the `iq_wait` hint for a new (or restored) IQ entry and
    /// registers it on every source that has no scheduled ready cycle yet.
    /// Returns `NOT_READY` when parked on at least one such source, else
    /// the max scheduled ready cycle over the sources.
    fn park_or_bound(&mut self, q: &IqEntry) -> u64 {
        let mut bound = 0u64;
        let mut parked = false;
        for k in 0..q.n_srcs as usize {
            let idx = q.srcs[k] as usize;
            let r = self.prf_ready[idx];
            if r == NOT_READY {
                self.waiters[idx].push(q.seq);
                parked = true;
            } else {
                bound = bound.max(r);
            }
        }
        if parked {
            NOT_READY
        } else {
            bound
        }
    }

    /// Re-evaluates entries parked on scoreboard index `idx` after that
    /// source received a finite ready cycle. Parked seqs are looked up in
    /// the (sorted) IQ; vanished or reused seqs fail the lookup or the
    /// recheck and are dropped — the hint is recomputed from `prf_ready`
    /// alone, so a stale wake can never mis-time an entry.
    fn wake_waiters(&mut self, idx: usize) {
        if self.waiters[idx].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.waiters[idx]);
        for seq in list.drain(..) {
            let Ok(pos) = self.iq.binary_search_by_key(&seq, |q| q.seq) else {
                continue;
            };
            let q = &self.iq[pos];
            let mut bound = 0u64;
            for k in 0..q.n_srcs as usize {
                bound = bound.max(self.prf_ready[q.srcs[k] as usize]);
            }
            // A still-pending other source keeps the entry parked; its
            // registration on that source is still in place.
            if bound != NOT_READY {
                self.iq_wait[pos] = bound;
            }
        }
        self.waiters[idx] = list;
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        let mut reclaim_cams = 0usize;
        for _ in 0..self.cfg.commit_width {
            if self
                .commit_budget
                .is_some_and(|b| self.stats.committed >= b)
            {
                break; // exact-measurement boundary for digest comparisons
            }
            let Some((head, head_cold)) = self.rob.head() else {
                break;
            };
            if !head.completed {
                break;
            }
            debug_assert!(!head.wrong_path, "wrong-path µ-op reached commit");
            if head.trap.is_some() {
                self.commit_flush();
                break;
            }
            // Reclaim CAM port pressure (§4.3.4): a committing µ-op whose
            // reclaim must CAM the tracker consumes a port; stall when out.
            let needs_cam = head_cold.dst.is_some_and(|d| d.needs_cam);
            if self.cfg.tracker_reclaim_ports > 0
                && needs_cam
                && reclaim_cams >= self.cfg.tracker_reclaim_ports
            {
                self.stats.reclaim_port_stalls += 1;
                break;
            }
            if needs_cam {
                reclaim_cams += 1;
            }
            self.commit_one();
        }
        // Lazy release scan: reclaim deferred registers when resources run
        // low (§3.3) — or continuously in eager mode.
        if self.cfg.smb_from_committed {
            let fl_low = self.fl[0].free_count() < 2 * self.cfg.frontend_width
                || self.fl[1].free_count() < 2 * self.cfg.frontend_width;
            let rob_high = self.rob.occupancy() + 2 * self.cfg.frontend_width > self.rob.capacity();
            if fl_low || rob_high {
                for _ in 0..2 * self.cfg.commit_width {
                    if !self.release_one() {
                        break;
                    }
                }
            }
        } else {
            while self.release_one() {}
        }
        self.stream.retire_upto(self.rob.head_seq());
    }

    /// Commits the head µ-op (must be completed and trap-free).
    fn commit_one(&mut self) {
        let (hot, cold) = self.rob.commit_head();
        let seq = hot.seq;
        let pc = cold.pc;
        let kind = hot.kind;
        let dst = cold.dst;
        let share = cold.share;
        let mem = cold.mem;
        let store_data = cold.store_data;
        let history = cold.history;
        let result = cold.result;
        let branch = cold.branch;
        let lq_idx = cold.lq;
        let sq_idx = cold.sq;
        let bypass = cold.bypass;

        self.stats.committed += 1;
        self.arch_digest = mix64(self.arch_digest ^ pc).wrapping_add(mix64(result));

        // Branch: train predictors, advance architectural history.
        if let Some(b) = &branch {
            if b.kind == BranchKind::Conditional {
                self.stats.branches += 1;
            }
            let taken = b.taken || b.kind != BranchKind::Conditional;
            self.tage.advance_snapshot(&mut self.arch_tage, taken, pc);
            self.arch_hist = self.arch_hist.push(taken, pc);
            match b.kind {
                BranchKind::Call => self.arch_ras.push(b.actual_next.saturating_sub(0)),
                BranchKind::Return => {
                    let _ = self.arch_ras.pop();
                }
                _ => {}
            }
            if let Some(id) = b.ckpt {
                if let Some(ck) = self.ckpts.remove(&id) {
                    self.tracker.release_checkpoint(ck.tracker);
                    self.recycle_snap(ck.fetch);
                }
            }
        }
        // TAGE direction training for conditionals.
        if let Some((tp, taken)) = self.take_tage_pred(seq, &branch) {
            self.tage.train(pc, &tp, taken);
            if self.tage_pool.len() < TAGE_POOL_CAP {
                self.tage_pool.push(tp);
            }
        }

        // Sharer commit (architectural reference image).
        if let Some(s) = &share {
            self.tracker.on_sharer_commit(s);
        }

        // Memory side.
        if kind == UopKind::Store {
            self.stats.stores += 1;
            let m = mem.expect("store has memref");
            self.mem.store_commit(pc, m.addr, Cycle(self.now));
            // DDT: record the CSN of the instruction that produced the data.
            // Full-width stores only: a sub-word store's data register does
            // not carry the memory value a later load would read, so a
            // bypass built on it can never validate (§3 models compiler
            // spill/reload pairs, which are register-width by construction).
            if let Some(data_reg) = store_data {
                if m.size == 8 {
                    if let Some(producer) = self.csn.producer(data_reg) {
                        self.ddt.store_commit(m.addr, producer);
                    }
                }
            }
            if let Some(i) = sq_idx {
                self.sq.free(i);
            }
        }
        if kind == UopKind::Load {
            self.stats.loads += 1;
            let m = mem.expect("load has memref");
            // Distance extraction + predictor training (§3.1).
            let observed = self
                .ddt
                .load_lookup(m.addr)
                .and_then(|p| seq.distance_from(p))
                .filter(|&d| d >= 1);
            self.dist_pred.train(pc, history, observed);
            if self.cfg.smb_load_load && m.size == 8 {
                // Load-load generalization: deposit own CSN (full-width
                // loads only, same width rule as stores above).
                self.ddt.store_commit(m.addr, seq);
            }
            if bypass.is_some() {
                self.stats.loads_bypassed += 1;
                if bypass.is_some_and(|b| b.from_committed) {
                    self.stats.bypass_from_committed += 1;
                }
            }
            if let Some(i) = lq_idx {
                self.lq.free(i);
            }
        }

        // Register side: CRM update; the reclaim itself is processed at
        // release (immediately in eager mode).
        if let Some(d) = dst {
            self.csn.define(d.arch, seq);
            let crm_old = self.crm.remap(d.arch, d.new_preg);
            debug_assert_eq!(crm_old, d.old_preg, "CRM/rename old-mapping mismatch");
            // Maintain CRM shared flags with the same §4.3.4 rules.
            let flag = match kind {
                UopKind::Move { .. } => share.is_some(),
                UopKind::Load => self.cfg.smb,
                _ => false,
            };
            self.crm.set_shared_flag(d.arch, flag);
            if d.fresh_alloc {
                self.fl[d.arch.class().index()].commit_pop();
            }
        }
        if kind == UopKind::Store && self.cfg.smb {
            if let Some(data_reg) = store_data {
                self.crm.set_shared_flag(data_reg, true);
            }
        }
    }

    /// Extracts the TAGE prediction stored with a committed branch.
    fn take_tage_pred(
        &mut self,
        seq: SeqNum,
        branch: &Option<BranchInfo>,
    ) -> Option<(Box<TagePrediction>, bool)> {
        let b = branch.as_ref()?;
        if b.kind != BranchKind::Conditional {
            return None;
        }
        let tp = self.rob.take_tage_pred(seq)?;
        Some((tp, b.taken))
    }

    /// Releases one committed entry, processing its register reclaim.
    /// Returns false when release has caught up.
    fn release_one(&mut self) -> bool {
        let Some((hot, cold)) = self.rob.release_next() else {
            return false;
        };
        if let Some(d) = cold.dst {
            self.reclaim(d, hot.seq);
        }
        true
    }

    /// Processes the reclaim of one overwritten mapping.
    fn reclaim(&mut self, d: DstInfo, seq: SeqNum) {
        // Flag-filter statistics (§4.3.4). The CAM is always performed for
        // correctness; the filter is evaluated as the paper describes.
        if d.needs_cam {
            self.stats.reclaims_cam_checked += 1;
            if let Some(last) = self.last_cam_commit {
                self.stats
                    .reclaim_check_distance
                    .add(seq.0.saturating_sub(last));
            }
            self.last_cam_commit = Some(seq.0);
        } else {
            self.stats.reclaims_flag_filtered += 1;
        }
        let class = d.arch.class();
        let req = ReclaimRequest {
            class,
            preg: d.old_preg,
            arch: d.arch,
            renews: d.new_preg == d.old_preg,
        };
        let decision = self.tracker.on_reclaim(&req);
        if self.trace_target.is_some() {
            // Lazy: the format! must not run untraced — reclaim is per-µ-op.
            self.trace_preg(
                "reclaim",
                class,
                d.old_preg,
                &format!(
                    "{decision:?} seq={seq} arch={} renews={} new={}",
                    d.arch, req.renews, d.new_preg
                ),
            );
        }
        match decision {
            ReclaimDecision::Free => {
                let i = self.prf(class, d.old_preg);
                self.prf_ready[i] = NOT_READY;
                self.fl[class.index()].push(d.old_preg);
            }
            ReclaimDecision::Keep => {}
        }
    }

    /// Commit-time flush: memory-order trap or bypass validation failure at
    /// the head (§4.1: restore the CRM and committed free-list pointers; no
    /// checkpoint involved).
    fn commit_flush(&mut self) {
        let (head, head_cold) = self.rob.head().expect("flush with no head");
        let seq = head.seq;
        let trap = head.trap.expect("flush without trap");
        let pc = head_cold.pc;
        let history = head_cold.history;
        let mem = head_cold.mem;
        self.stats.commit_flushes += 1;
        match trap {
            TrapKind::MemOrder => self.stats.memory_traps += 1,
            TrapKind::BypassMispredict => {
                self.stats.bypass_mispredictions += 1;
                // The refetched instance of this load must not bypass
                // again: training below cannot guarantee the prediction
                // flips (a DDT alias re-observes the same wrong distance),
                // and under lazy reclaim the wrong producer stays in reach.
                self.no_bypass_seq = Some(seq);
                // Train toward the architecturally correct distance so
                // later instances predict better.
                if let Some(m) = mem {
                    let observed = self
                        .ddt
                        .load_lookup(m.addr)
                        .and_then(|p| seq.distance_from(p))
                        .filter(|&d| d >= 1);
                    self.dist_pred.train(pc, history, observed);
                }
            }
        }

        // Squash everything in flight.
        let mut squashed = 0usize;
        let mut shares = std::mem::take(&mut self.scratch.shares);
        let mut allocs = std::mem::take(&mut self.scratch.allocs);
        self.rob.squash_all_inflight(|_, cold| {
            squashed += 1;
            Self::collect_squash(cold, &mut shares, &mut allocs);
        });
        self.iq.clear();
        self.iq_wait.clear();
        // A full flush empties the IQ, so every parked registration is
        // stale; dropping them here keeps the lists from accumulating.
        for w in &mut self.waiters {
            w.clear();
        }
        self.lq.clear();
        self.sq.clear();
        self.stats.squashed_uops += squashed as u64;

        // Restore architectural register state.
        self.rm.clone_from(&self.crm);
        for c in 0..2 {
            self.fl[c].restore_to_committed();
        }
        self.run_squash_walk(&mut shares, &mut allocs);
        self.scratch.shares = shares;
        self.scratch.allocs = allocs;
        let mut freed = std::mem::take(&mut self.scratch.freed);
        self.tracker.restore_to_committed(&mut freed);
        for (class, preg) in freed.drain(..) {
            let i = self.prf(class, preg);
            self.prf_ready[i] = NOT_READY;
            self.fl[class.index()].push(preg);
        }
        self.scratch.freed = freed;
        let mut ckpts = std::mem::take(&mut self.ckpts);
        for (_, ck) in ckpts.drain() {
            self.recycle_snap(ck.fetch);
        }
        self.ckpts = ckpts;

        // Restore front-end state from the architectural images.
        self.tage.restore(&self.arch_tage);
        self.ras.restore(&self.arch_ras);
        self.spec_hist = self.arch_hist;
        self.clear_pipe();
        self.pending_fetch = None;
        self.last_fetch_line = Addr::MAX;
        self.stream.recover_to(seq);
        self.fetch_stall_until = self.now + 1;
        self.rename_stall_until = self
            .rename_stall_until
            .max(self.now + self.tracker.recovery_stall_cycles(squashed));
        self.stats.tracker_recovery_stalls += self.tracker.recovery_stall_cycles(squashed);
    }

    /// Drives the tracker's squash walk in two passes (shares first, then
    /// allocations — see `SharingTracker::on_squash_share`) and frees any
    /// registers the walk uncovers. Drains the caller's (scratch) buffers.
    fn run_squash_walk(
        &mut self,
        shares: &mut Vec<(RegClass, PhysReg)>,
        allocs: &mut Vec<(RegClass, PhysReg)>,
    ) {
        for (c, p) in shares.drain(..) {
            self.trace_preg("squash-share", c, p, "");
            if let Some((fc, fp)) = self.tracker.on_squash_share(c, p) {
                self.trace_preg("squash-free", fc, fp, "");
                let i = self.prf(fc, fp);
                self.prf_ready[i] = NOT_READY;
                self.fl[fc.index()].push(fp);
            }
        }
        for (c, p) in allocs.drain(..) {
            self.tracker.on_squash_alloc(c, p);
        }
    }

    /// Hands a retired fetch snapshot back to the pool (bounded).
    fn recycle_snap(&mut self, snap: Box<FetchSnap>) {
        if self.snap_pool.len() < SNAP_POOL_CAP {
            self.snap_pool.push(snap);
        }
    }

    /// Empties the fetch pipe, recycling any snapshots it still carries so
    /// recovery paths return them to the pool instead of freeing them.
    fn clear_pipe(&mut self) {
        while let Some(p) = self.pipe.pop_front() {
            if let Some(snap) = p.pred.and_then(|pr| pr.snap) {
                self.recycle_snap(snap);
            }
        }
    }

    /// Collects a squashed entry's tracker-relevant events.
    fn collect_squash(
        e: &RobCold,
        shares: &mut Vec<(RegClass, PhysReg)>,
        allocs: &mut Vec<(RegClass, PhysReg)>,
    ) {
        if let Some(s) = e.share.as_ref() {
            shares.push((s.class, s.preg));
        }
        if let Some(d) = e.dst {
            if d.fresh_alloc {
                allocs.push((d.arch.class(), d.new_preg));
            }
        }
    }

    // ------------------------------------------------------------------
    // writeback / resolution
    // ------------------------------------------------------------------

    fn schedule(&mut self, at: u64, ev: Event) {
        debug_assert!(at >= self.now, "event in the past");
        debug_assert!(at - self.now < WHEEL as u64, "event beyond wheel horizon");
        let slot = (at % WHEEL as u64) as usize;
        self.wheel[slot].push(ev);
    }

    fn process_events(&mut self) {
        let slot = (self.now % WHEEL as u64) as usize;
        if self.wheel[slot].is_empty() {
            return;
        }
        // Swap the slot's buffer with the (empty) scratch list and swap it
        // back drained: both allocations survive the cycle, so the wheel
        // reaches a steady state where scheduling never allocates.
        let mut events = std::mem::take(&mut self.scratch.events);
        std::mem::swap(&mut events, &mut self.wheel[slot]);
        for ev in events.drain(..) {
            match ev {
                Event::Agu { seq, uid } => self.on_agu(seq, uid),
                Event::Complete { seq, uid } => self.on_complete(seq, uid),
            }
        }
        self.scratch.events = events;
    }

    fn on_agu(&mut self, seq: SeqNum, uid: u64) {
        let Some(hot) = self.rob.hot_mut(seq) else {
            return;
        };
        if hot.committed || hot.uid != uid {
            return; // stale event from a squashed incarnation
        }
        hot.agu_done = true;
        let kind = hot.kind;
        match kind {
            UopKind::Store => {
                let cold = self.rob.cold(seq).expect("just checked");
                let pc = cold.pc;
                let m = cold.mem.expect("store memref");
                let sq_idx = cold.sq.expect("store has SQ slot");
                if let Some(s) = self.sq.get_mut(sq_idx) {
                    if s.seq == seq {
                        s.executed = true;
                    }
                }
                self.store_sets.store_executed(pc, seq);
                // Memory-order violation check.
                if let Some(victim) = self.lq.violation(seq, &m) {
                    if let Some((lh, lc)) = self.rob.get_mut(victim) {
                        if lh.trap.is_none() {
                            lh.trap = Some(TrapKind::MemOrder);
                        }
                        let load_pc = lc.pc;
                        self.store_sets.train_violation(load_pc, pc);
                    }
                }
                // The store has executed (address known): it completes.
                if let Some(hot) = self.rob.hot_mut(seq) {
                    hot.completed = true;
                }
            }
            UopKind::Load => {
                self.resolve_load(seq);
                // Parked (forward blocked or MSHRs exhausted): flag the pump
                // so its ROB scan runs only when there is work to retry.
                if self.rob.hot(seq).is_some_and(|h| !h.read_scheduled) {
                    self.loads_parked = true;
                }
            }
            _ => unreachable!("AGU event for non-memory µ-op"),
        }
    }

    /// Tries to obtain the load's value: forward, wait, or access the cache.
    fn resolve_load(&mut self, seq: SeqNum) {
        let Some(cold) = self.rob.cold(seq) else {
            return;
        };
        let m = cold.mem.expect("load memref");
        let pc = cold.pc;
        let lq_idx = cold.lq.expect("load has LQ slot");
        match self.sq.load_action(seq, &m) {
            LoadAction::Forward { store_seq } => {
                let done = self.now + self.cfg.stlf_latency;
                self.stats.stlf_forwards += 1;
                if let Some(l) = self.lq.get_mut(lq_idx) {
                    l.read_started = true;
                    l.fwd_from = Some(store_seq);
                }
                self.finish_load(seq, done);
            }
            LoadAction::WaitStoreCommit { .. } => {
                // Parked: the pump retries next cycle (the blocking store
                // will commit, be squashed, or execute further).
            }
            LoadAction::Cache => match self.mem.load(pc, m.addr, Cycle(self.now)) {
                MemResult::Done(t) => {
                    if let Some(l) = self.lq.get_mut(lq_idx) {
                        l.read_started = true;
                        l.fwd_from = None;
                    }
                    self.finish_load(seq, t.0);
                }
                MemResult::Retry => {
                    // MSHRs exhausted: parked, pump retries.
                }
            },
        }
    }

    /// Schedules the load's completion and wakes dependents.
    fn finish_load(&mut self, seq: SeqNum, done: u64) {
        let Some((hot, cold)) = self.rob.get_mut(seq) else {
            return;
        };
        hot.read_scheduled = true;
        let uid = hot.uid;
        let mut wake = None;
        if let Some(d) = cold.dst {
            if cold.bypass.is_none() {
                // Normal load: its register becomes ready at completion.
                let i = d.arch.class().index() * self.cfg.pregs_per_class + d.new_preg.index();
                self.prf_ready[i] = done;
                wake = Some(i);
            }
        }
        if let Some(i) = wake {
            self.wake_waiters(i);
        }
        self.schedule(done.max(self.now + 1), Event::Complete { seq, uid });
    }

    fn on_complete(&mut self, seq: SeqNum, uid: u64) {
        let Some((hot, cold)) = self.rob.get_mut(seq) else {
            return;
        };
        if hot.committed || hot.completed || hot.uid != uid {
            return;
        }
        hot.completed = true;
        // SMB validation at writeback (§3.2): compare the bypassed register
        // against the memory data.
        if let Some(b) = cold.bypass {
            if !b.correct && hot.trap.is_none() {
                hot.trap = Some(TrapKind::BypassMispredict);
            }
        }
        let mispredicted = cold.branch.as_ref().is_some_and(|b| b.mispredicted);
        if mispredicted {
            self.recover_branch(seq);
        }
    }

    /// Branch misprediction recovery: checkpoint restore (§4.1/§4.3).
    fn recover_branch(&mut self, seq: SeqNum) {
        self.stats.branch_mispredicts += 1;
        let (hot, cold) = self.rob.get(seq).expect("branch entry");
        let b = cold.branch.expect("branch info");
        let pc = cold.pc;
        debug_assert!(
            !hot.wrong_path,
            "wrong-path branches never trigger recovery"
        );

        // 1. Squash younger µ-ops.
        let mut squashed = 0usize;
        let mut dead_ckpts = std::mem::take(&mut self.scratch.dead_ckpts);
        let mut shares = std::mem::take(&mut self.scratch.shares);
        let mut allocs = std::mem::take(&mut self.scratch.allocs);
        self.rob.squash_younger(seq, |_, victim| {
            squashed += 1;
            if let Some(vb) = &victim.branch {
                if let Some(id) = vb.ckpt {
                    dead_ckpts.push(id);
                }
            }
            Self::collect_squash(victim, &mut shares, &mut allocs);
        });
        // Every IQ entry is in flight and paired with a ROB entry, so the
        // squashed set is exactly the suffix younger than the branch: one
        // ordered retain, not an O(IQ × squashed) membership scan.
        self.iq.retain(|q| q.seq <= seq);
        // Sorted-by-seq means the retain kept a prefix: truncate the
        // parallel hint lane to match. Registrations of squashed entries
        // go stale in `waiters`; wake-time rechecks skip them.
        self.iq_wait.truncate(self.iq.len());
        self.lq.squash_younger(seq);
        self.sq.squash_younger(seq);
        self.stats.squashed_uops += squashed as u64;
        for id in dead_ckpts.drain(..) {
            if let Some(ck) = self.ckpts.remove(&id) {
                self.recycle_snap(ck.fetch);
            }
        }
        self.scratch.dead_ckpts = dead_ckpts;
        self.run_squash_walk(&mut shares, &mut allocs);
        self.scratch.shares = shares;
        self.scratch.allocs = allocs;

        // 2. Restore rename state from the branch's checkpoint.
        let ck = b
            .ckpt
            .and_then(|id| self.ckpts.remove(&id))
            .expect("mispredicted branch carries a checkpoint");
        self.rm = ck.rm;
        for c in 0..2 {
            self.fl[c].restore_head(ck.fl_heads[c]);
        }
        let mut freed = std::mem::take(&mut self.scratch.freed);
        self.tracker.restore(ck.tracker, &mut freed);
        for (class, preg) in freed.drain(..) {
            self.trace_preg("restore-free", class, preg, "");
            let i = self.prf(class, preg);
            self.prf_ready[i] = NOT_READY;
            self.fl[class.index()].push(preg);
        }
        self.scratch.freed = freed;

        // 3. Restore front-end history and push the *actual* outcome.
        let taken = b.taken || b.kind != BranchKind::Conditional;
        self.tage.restore(&ck.fetch.tage);
        self.tage.update_history(taken, pc);
        self.ras.restore(&ck.fetch.ras);
        if b.kind == BranchKind::Return {
            let _ = self.ras.pop();
        }
        self.spec_hist = ck.fetch.hist.push(taken, pc);
        self.btb.update(pc, b.actual_next);
        self.recycle_snap(ck.fetch);

        // 4. Redirect fetch past the branch.
        self.clear_pipe();
        self.pending_fetch = None;
        self.last_fetch_line = Addr::MAX;
        self.stream.recover_to(seq.next());
        self.fetch_stall_until = self.now + 1;
        let stall = self.tracker.recovery_stall_cycles(squashed);
        self.rename_stall_until = self.rename_stall_until.max(self.now + stall);
        self.stats.tracker_recovery_stalls += stall;

        // 5. The branch itself is now resolved.
        if let Some(cold) = self.rob.cold_mut(seq) {
            if let Some(bi) = &mut cold.branch {
                bi.mispredicted = false;
                bi.ckpt = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // load-queue pump: retry parked loads
    // ------------------------------------------------------------------

    fn lsq_pump(&mut self) {
        // The scan below walks the whole ROB; `loads_parked` is a
        // conservative flag (set whenever a load fails to schedule its
        // read, cleared only by a scan that leaves nothing parked), so
        // skipping when it is unset can never strand a load.
        if !self.loads_parked {
            return;
        }
        // Collect loads that have issued (AGU done) but not yet started
        // reading and have no scheduled completion: retry them.
        let parked = |hot: &RobHot, cold: &RobCold| {
            hot.kind == UopKind::Load
                && !hot.completed
                && !hot.committed
                && hot.agu_done
                && cold.lq.is_some()
                && !hot.read_scheduled
        };
        let mut retry = std::mem::take(&mut self.scratch.retry);
        retry.extend(
            self.rob
                .iter()
                .filter(|(h, c)| parked(h, c))
                .map(|(h, _)| h.seq),
        );
        for &seq in &retry {
            self.resolve_load(seq);
        }
        // Still-parked retries keep the flag up for the next cycle.
        self.loads_parked = retry
            .iter()
            .any(|&seq| self.rob.get(seq).is_some_and(|(h, c)| parked(h, c)));
        retry.clear();
        self.scratch.retry = retry;
    }

    // ------------------------------------------------------------------
    // issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        if self.iq.is_empty() {
            return;
        }
        // The IQ is sorted by sequence number by construction: rename
        // appends monotonically increasing seqs, squashes retain an ordered
        // prefix, and issue compacts in order below — so oldest-first
        // selection needs no per-cycle sort.
        debug_assert!(self.iq.windows(2).all(|w| w[0].seq < w[1].seq));
        let mut issued = 0usize;
        let mut alu = 0usize;
        let mut mul = 0usize;
        let mut fp = 0usize;
        let mut fpmul = 0usize;
        let mut mem_shared = 0usize;
        let mut store_only = 0usize;
        let mut remove = std::mem::take(&mut self.scratch.issued);

        for i in 0..self.iq.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            // Hint says not ready (scheduled bound in the future, or
            // parked on a source with no scheduled wakeup yet): skip
            // without touching the entry or the scoreboard.
            if self.iq_wait[i] > self.now {
                continue;
            }
            let q = &self.iq[i];
            // Register operands ready?
            let mut max_ready = 0u64;
            for k in 0..q.n_srcs as usize {
                max_ready = max_ready.max(self.prf_ready[q.srcs[k] as usize]);
            }
            if max_ready > self.now {
                // Refresh the hint only with a scheduled bound. Parking
                // (`NOT_READY`) happens at dispatch/restore where the
                // waiter registration goes with it; an unscheduled source
                // seen here (a freed register's slot) just re-checks.
                if max_ready != NOT_READY {
                    self.iq_wait[i] = max_ready;
                }
                continue;
            }
            // Store Sets ordering: wait until the predicted store executed.
            if let Some(dep) = q.dep_store {
                if self.sq.is_unexecuted(dep) {
                    if !self.iq[i].waited_dep {
                        self.stats.dep_waits += 1;
                        self.iq[i].waited_dep = true;
                    }
                    continue;
                }
            }
            let q = &self.iq[i];
            // Functional unit availability.
            let ok = match q.class {
                ExecClass::IntAlu => {
                    if alu < self.cfg.alu_units {
                        alu += 1;
                        true
                    } else {
                        false
                    }
                }
                ExecClass::IntMul => {
                    let free = self.int_div_busy.iter().filter(|&&b| b <= self.now).count();
                    if mul < free {
                        mul += 1;
                        true
                    } else {
                        false
                    }
                }
                ExecClass::IntDiv => {
                    if let Some(u) = self.int_div_busy.iter_mut().find(|b| **b <= self.now) {
                        *u = self.now + latency(ExecClass::IntDiv);
                        true
                    } else {
                        false
                    }
                }
                ExecClass::FpAdd => {
                    if fp < self.cfg.fp_units {
                        fp += 1;
                        true
                    } else {
                        false
                    }
                }
                ExecClass::FpMul => {
                    let free = self.fp_div_busy.iter().filter(|&&b| b <= self.now).count();
                    if fpmul < free {
                        fpmul += 1;
                        true
                    } else {
                        false
                    }
                }
                ExecClass::FpDiv => {
                    if let Some(u) = self.fp_div_busy.iter_mut().find(|b| **b <= self.now) {
                        *u = self.now + latency(ExecClass::FpDiv);
                        true
                    } else {
                        false
                    }
                }
                ExecClass::Load => {
                    if mem_shared < self.cfg.mem_ports {
                        mem_shared += 1;
                        true
                    } else {
                        false
                    }
                }
                ExecClass::Store => {
                    if store_only < self.cfg.store_ports {
                        store_only += 1;
                        true
                    } else if mem_shared < self.cfg.mem_ports {
                        mem_shared += 1;
                        true
                    } else {
                        false
                    }
                }
            };
            if !ok {
                continue;
            }
            issued += 1;
            remove.push(i);
            let q = self.iq[i];
            self.dispatch_execution(&q);
        }
        // Order-preserving compaction (`remove` is ascending), keeping the
        // sorted-by-seq invariant that lets the next cycle skip sorting.
        if !remove.is_empty() {
            let mut keep = 0usize;
            let mut r = 0usize;
            for i in 0..self.iq.len() {
                if r < remove.len() && remove[r] == i {
                    r += 1;
                    continue;
                }
                self.iq[keep] = self.iq[i];
                self.iq_wait[keep] = self.iq_wait[i];
                keep += 1;
            }
            self.iq.truncate(keep);
            self.iq_wait.truncate(keep);
        }
        remove.clear();
        self.scratch.issued = remove;
    }

    /// Schedules execution events for an issued µ-op.
    fn dispatch_execution(&mut self, q: &IqEntry) {
        let seq = q.seq;
        match q.class {
            ExecClass::Load | ExecClass::Store => {
                // False-dependency accounting: the µ-op waited on a store
                // that turned out not to overlap (only decidable while the
                // store's address is still visible).
                if q.class == ExecClass::Load && q.waited_dep {
                    if let (Some(dep), Some(cold)) = (q.dep_store, self.rob.cold(seq)) {
                        let lm = cold.mem.expect("load memref");
                        match self.rob.cold(dep).and_then(|s| s.mem) {
                            Some(sm) if !sm.overlaps(&lm) => self.stats.false_dependencies += 1,
                            Some(_) => self.stats.dep_true += 1,
                            None => self.stats.dep_gone += 1,
                        }
                    }
                }
                let uid = self.rob.hot(seq).map(|h| h.uid).unwrap_or(0);
                self.schedule(self.now + latency(q.class), Event::Agu { seq, uid });
            }
            c => {
                let done = self.now + latency(c);
                let mut uid = 0;
                let mut wake = None;
                if let Some((hot, cold)) = self.rob.get(seq) {
                    uid = hot.uid;
                    if let Some(d) = cold.dst {
                        if !hot.eliminated {
                            let i = d.arch.class().index() * self.cfg.pregs_per_class
                                + d.new_preg.index();
                            self.prf_ready[i] = done;
                            wake = Some(i);
                        }
                    }
                }
                if let Some(i) = wake {
                    self.wake_waiters(i);
                }
                self.schedule(done, Event::Complete { seq, uid });
            }
        }
    }

    // ------------------------------------------------------------------
    // rename / dispatch
    // ------------------------------------------------------------------

    fn rename_dispatch(&mut self) {
        if self.now < self.rename_stall_until {
            return;
        }
        let mut rename_cams = 0usize;
        for _ in 0..self.cfg.frontend_width {
            let Some(front) = self.pipe.front() else {
                break;
            };
            if front.ready > self.now {
                break;
            }
            let uop = &front.uop;
            // Structural hazards: stall (leave in the pipe).
            if !self.rob.has_space() {
                break;
            }
            if self.iq.len() >= self.cfg.iq_entries {
                break;
            }
            if uop.is_load() && !self.lq.has_space() {
                break;
            }
            if uop.is_store() && !self.sq.has_space() {
                break;
            }
            if let Some(dst) = uop.dst {
                if self.fl[dst.class().index()].free_count() == 0 {
                    break;
                }
            }
            let PipeUop { uop, pred, .. } = self.pipe.pop_front().expect("peeked");
            self.rename_one(uop, pred, &mut rename_cams);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn rename_one(&mut self, uop: DynUop, pred: Option<PredInfo>, rename_cams: &mut usize) {
        self.stats.renamed += 1;
        let seq = self.rob.next_seq();
        debug_assert_eq!(seq, uop.seq, "fetch/rename sequence mismatch");

        // Resolve sources through the current map (before remapping dst —
        // merge moves legitimately read their old destination).
        let mut srcs = [0u32; 4];
        let mut n_srcs = 0u8;
        for s in uop.sources() {
            let p = self.rm.lookup(s);
            if self.trace_target.is_some() {
                self.trace_preg(
                    "read-src",
                    s.class(),
                    p,
                    &format!("seq={seq} arch={s} wp={}", uop.wrong_path),
                );
            }
            srcs[n_srcs as usize] = self.prf(s.class(), p) as u32;
            n_srcs += 1;
        }

        // Store Sets.
        let mut dep_store = None;
        if uop.is_load() {
            dep_store = self.store_sets.load_dependence(uop.pc).filter(|&s| s < seq);
            if dep_store.is_some() {
                self.stats.loads_with_dep += 1;
            }
        } else if uop.is_store() {
            dep_store = self
                .store_sets
                .store_renamed(uop.pc, seq)
                .filter(|&s| s < seq);
        }

        // --- Move elimination (§2) ---
        let mut eliminated = false;
        let mut share: Option<ShareRequest> = None;
        let mut new_preg: Option<PhysReg> = None;
        if self.cfg.move_elimination && uop.kind.eliminable_move() {
            let class_ok = match uop.kind {
                UopKind::Move {
                    class: RegClass::Fp,
                    ..
                } => self.cfg.me_fp_moves,
                _ => true,
            };
            if class_ok {
                let dst = uop.dst.expect("move has dst");
                let src = uop.srcs[0].expect("move has src");
                let src_preg = self.rm.lookup(src);
                let ports_ok = self.cfg.tracker_rename_ports == 0
                    || *rename_cams < self.cfg.tracker_rename_ports;
                if ports_ok {
                    *rename_cams += 1;
                    let req = ShareRequest {
                        class: dst.class(),
                        preg: src_preg,
                        kind: ShareKind::MoveElim {
                            arch_dst: dst,
                            arch_src: src,
                        },
                    };
                    if self.tracker.try_share(&req) {
                        if self.trace_target.is_some() {
                            self.trace_preg(
                                "share-me",
                                dst.class(),
                                src_preg,
                                &format!("seq={seq} dst={dst} src={src}"),
                            );
                        }
                        eliminated = true;
                        share = Some(req);
                        new_preg = Some(src_preg);
                        self.note_share(seq);
                        self.stats.moves_eliminated += 1;
                        self.rm.set_shared_flag(src, true);
                    } else {
                        self.stats.moves_not_eliminated += 1;
                        self.stats.bypass_aborted_tracker += 1;
                    }
                } else {
                    self.stats.moves_not_eliminated += 1;
                    self.stats.bypass_aborted_ports += 1;
                }
            }
        }

        // --- Speculative memory bypassing (§3) ---
        // Full-width loads only: a sub-word load zero-extends part of the
        // forwarded value, so no register bypass can reproduce its result.
        // Without this gate a mispredicted sub-word bypass livelocks under
        // lazy reclaim: the flush retrains toward the same (correct!)
        // distance, the committed producer stays bypassable, and the
        // refetched load traps again forever (found by regshare-fuzz).
        let full_width_load = uop.is_load() && uop.mem.is_some_and(|m| m.size == 8);
        // One-shot conservative refetch after a bypass-mispredict flush.
        let bypass_suppressed = self.no_bypass_seq == Some(seq);
        let mut bypass: Option<BypassInfo> = None;
        if let (true, Some(dst)) = (
            self.cfg.smb && full_width_load && !eliminated && !bypass_suppressed,
            uop.dst,
        ) {
            if let Some(d) = self.dist_pred.predict(uop.pc, uop.history) {
                self.stats.distance_predictions += 1;
                if d >= 1 && d <= seq.0 {
                    let producer_seq = SeqNum(seq.0 - d);
                    let candidate = self.rob.get(producer_seq).and_then(|(ph, pc_)| {
                        let pd = pc_.dst?;
                        if pd.arch.class() != dst.class() {
                            return None;
                        }
                        if ph.committed && !self.cfg.smb_from_committed {
                            return None;
                        }
                        Some((pd.new_preg, ph.committed))
                    });
                    match candidate {
                        Some((preg, from_committed)) => {
                            let ports_ok = self.cfg.tracker_rename_ports == 0
                                || *rename_cams < self.cfg.tracker_rename_ports;
                            if ports_ok {
                                *rename_cams += 1;
                                let req = ShareRequest {
                                    class: dst.class(),
                                    preg,
                                    kind: ShareKind::Bypass { arch_dst: dst },
                                };
                                if self.tracker.try_share(&req) {
                                    if self.trace_target.is_some() {
                                        self.trace_preg(
                                            "share-smb",
                                            dst.class(),
                                            preg,
                                            &format!("seq={seq} dst={dst}"),
                                        );
                                    }
                                    let correct =
                                        self.prf_value[self.prf(dst.class(), preg)] == uop.result;
                                    bypass = Some(BypassInfo {
                                        preg,
                                        class: dst.class(),
                                        correct,
                                        from_committed,
                                    });
                                    share = Some(req);
                                    new_preg = Some(preg);
                                    self.note_share(seq);
                                } else {
                                    self.stats.bypass_aborted_tracker += 1;
                                }
                            } else {
                                self.stats.bypass_aborted_ports += 1;
                            }
                        }
                        None => self.stats.bypass_no_producer += 1,
                    }
                }
            }
        }

        // --- Destination renaming ---
        let mut dst_info: Option<DstInfo> = None;
        if let Some(dst) = uop.dst {
            let class = dst.class();
            let fresh = new_preg.is_none();
            let preg = match new_preg {
                Some(p) => p,
                None => {
                    let p = self.fl[class.index()].pop().expect("FL checked nonempty");
                    if self.trace_target.is_some() {
                        self.trace_preg("alloc", class, p, &format!("seq={seq} dst={dst}"));
                    }
                    self.tracker.on_alloc(class, p);
                    let i = self.prf(class, p);
                    self.prf_value[i] = uop.result;
                    self.prf_ready[i] = NOT_READY;
                    p
                }
            };
            let needs_cam = self.rm.shared_flag(dst);
            let old = self.rm.remap(dst, preg);
            // §4.3.4 flag maintenance: ME set flags above; loads (under SMB)
            // flag their destination; everything else clears it.
            let new_flag = if eliminated {
                true
            } else if uop.is_load() {
                self.cfg.smb
            } else {
                false
            };
            self.rm.set_shared_flag(dst, new_flag);
            dst_info = Some(DstInfo {
                arch: dst,
                new_preg: preg,
                old_preg: old,
                fresh_alloc: fresh,
                needs_cam,
            });
        }
        if uop.is_store() && self.cfg.smb {
            if let Some(data) = uop.store_data_reg() {
                self.rm.set_shared_flag(data, true);
            }
        }

        // --- Branch checkpointing ---
        let mut branch_info: Option<BranchInfo> = None;
        let mut tage_pred: Option<Box<TagePrediction>> = None;
        if let Some(b) = uop.branch {
            let (pred_next, pred_taken, tp, snap) = match pred {
                Some(p) => (p.pred_next, p.pred_taken, p.tage_pred, p.snap),
                None => (b.next_sidx, b.taken, None, None),
            };
            tage_pred = tp;
            let mispredicted = !uop.wrong_path && pred_next != b.next_sidx;
            let ckpt = snap.map(|snap| {
                let id = self.next_ckpt;
                self.next_ckpt += 1;
                self.ckpts.insert(
                    id,
                    Checkpoint {
                        rm: self.rm.clone(),
                        fl_heads: [self.fl[0].head(), self.fl[1].head()],
                        tracker: self.tracker.checkpoint(),
                        fetch: snap,
                    },
                );
                self.stats.peak_checkpoints = self.stats.peak_checkpoints.max(self.ckpts.len());
                id
            });
            branch_info = Some(BranchInfo {
                kind: b.kind,
                pred_next,
                actual_next: b.next_sidx,
                taken: b.taken,
                pred_taken,
                mispredicted,
                ckpt,
            });
        }

        // A bypassed load communicates through the register file: it no
        // longer needs the Store Sets ordering (§3.1 — this is how SMB
        // removes false dependencies), and a *correct* bypass is immune to
        // memory-order violations (§3.1 — how SMB removes traps).
        if bypass.is_some() {
            dep_store = None;
        }

        // --- Queue allocation ---
        let mut lq_idx = None;
        let mut sq_idx = None;
        if uop.is_load() {
            lq_idx = Some(self.lq.alloc(LqEntry {
                seq,
                rob_slot: 0,
                mem: uop.mem.expect("load memref"),
                read_started: false,
                fwd_from: None,
                bypassed_ok: bypass.is_some_and(|b| b.correct),
            }));
        }
        if uop.is_store() {
            sq_idx = Some(self.sq.alloc(SqEntry {
                seq,
                rob_slot: 0,
                mem: uop.mem.expect("store memref"),
                executed: false,
            }));
        }

        // --- ROB allocation ---
        self.next_uid += 1;
        let entry = RobEntry {
            hot: RobHot {
                seq,
                uid: self.next_uid,
                kind: uop.kind,
                wrong_path: uop.wrong_path,
                completed: eliminated,
                committed: false,
                eliminated,
                agu_done: false,
                read_scheduled: false,
                trap: None,
            },
            cold: RobCold {
                pc: uop.pc,
                sidx: uop.sidx,
                dst: dst_info,
                share,
                bypass,
                mem: uop.mem,
                lq: lq_idx,
                sq: sq_idx,
                store_data: uop.store_data_reg(),
                branch: branch_info,
                history: uop.history,
                result: uop.result,
            },
            tage_pred,
        };
        self.rob.alloc(entry);

        // --- IQ ---
        if !eliminated {
            let mut all_srcs = srcs;
            let mut n = n_srcs;
            if let Some(b) = bypass {
                // The bypassed register is an extra source (validation read).
                all_srcs[n as usize] = self.prf(b.class, b.preg) as u32;
                n += 1;
            }
            let entry = IqEntry {
                seq,
                class: uop.kind.exec_class(),
                srcs: all_srcs,
                n_srcs: n,
                dep_store,
                waited_dep: false,
            };
            let wait = self.park_or_bound(&entry);
            self.iq.push(entry);
            self.iq_wait.push(wait);
        }
    }

    #[doc(hidden)]
    pub fn trace_preg(&self, what: &str, class: RegClass, preg: PhysReg, extra: &str) {
        if let Some((tc, tp)) = self.trace_target {
            if tc == class && tp == preg.index() {
                eprintln!("[{}] {what} {class} {preg} {extra}", self.now);
            }
        }
    }

    fn note_share(&mut self, seq: SeqNum) {
        if let Some(last) = self.last_share_seq {
            self.stats.share_distance.add(seq.0.saturating_sub(last));
        }
        self.last_share_seq = Some(seq.0);
    }

    // ------------------------------------------------------------------
    // fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.now < self.fetch_stall_until {
            return;
        }
        let pipe_cap = self.cfg.frontend_width * (self.cfg.frontend_depth as usize + 4);
        let mut taken_branches = 0usize;
        for _ in 0..self.cfg.frontend_width {
            if self.pipe.len() >= pipe_cap {
                break;
            }
            let mut uop = match self.pending_fetch.take() {
                Some(u) => u,
                None => self.stream.next_uop(),
            };
            // Instruction cache.
            let line = uop.pc & !63;
            if line != self.last_fetch_line {
                let t = self.mem.ifetch(uop.pc, Cycle(self.now));
                self.last_fetch_line = line;
                if t.0 > self.now + 1 {
                    self.pending_fetch = Some(uop);
                    self.fetch_stall_until = t.0;
                    break;
                }
            }
            uop.history = self.spec_hist;

            let mut pred = None;
            let mut stop_group = false;
            if let Some(b) = uop.branch {
                let (pred_next, pred_taken, tp, snap) = self.predict_branch(&uop, b.kind);
                if pred_taken {
                    taken_branches += 1;
                    if taken_branches >= 2 {
                        stop_group = true; // over at most one taken branch
                    }
                }
                // Wrong direction/target on the correct path: fork the
                // genuine wrong path.
                if !uop.wrong_path && pred_next != b.next_sidx {
                    self.stream.mispredict_fork(uop.seq, pred_next);
                }
                pred = Some(PredInfo {
                    pred_next,
                    pred_taken,
                    tage_pred: tp,
                    snap,
                });
            }
            self.pipe.push_back(PipeUop {
                ready: self.now + self.cfg.frontend_depth,
                uop,
                pred,
            });
            if stop_group || self.now < self.fetch_stall_until {
                break;
            }
        }
    }

    /// Predicts a branch at fetch; updates speculative history/RAS/BTB.
    fn predict_branch(
        &mut self,
        uop: &DynUop,
        kind: BranchKind,
    ) -> (
        u32,
        bool,
        Option<Box<TagePrediction>>,
        Option<Box<FetchSnap>>,
    ) {
        let b = uop.branch.expect("branch outcome");
        let pc = uop.pc;
        let fallthrough = b.fallthrough_sidx;
        // Snapshot (pre-update) for mispredictable kinds. Reuses a pooled
        // box when one is available — `snapshot_into` and the RAS restore
        // overwrite in place, so the steady state takes no allocations.
        let snap = if matches!(kind, BranchKind::Conditional | BranchKind::Return) {
            Some(match self.snap_pool.pop() {
                Some(mut s) => {
                    self.tage.snapshot_into(&mut s.tage);
                    s.ras.restore(&self.ras);
                    s.hist = self.spec_hist;
                    s
                }
                None => Box::new(FetchSnap {
                    tage: self.tage.snapshot(),
                    ras: self.ras.clone(),
                    hist: self.spec_hist,
                }),
            })
        } else {
            None
        };

        let (pred_next, pred_taken, tp) = match kind {
            BranchKind::Conditional => {
                let tp = self.tage.predict(pc);
                // On the wrong path, fetch follows the forked machine's own
                // outcomes (nested forks are second-order).
                let taken = if uop.wrong_path { b.taken } else { tp.taken };
                let target = self.cond_target(uop.sidx).unwrap_or(fallthrough);
                let next = if taken { target } else { fallthrough };
                let boxed = match self.tage_pool.pop() {
                    Some(mut bx) => {
                        *bx = tp;
                        bx
                    }
                    None => Box::new(tp),
                };
                (next, taken, Some(boxed))
            }
            BranchKind::Direct | BranchKind::Call => {
                // Direct transfers: target known at decode; a BTB miss costs
                // a fetch bubble but never a wrong path.
                if self.btb.lookup(pc) != Some(b.next_sidx) {
                    self.fetch_stall_until =
                        (self.now + self.cfg.btb_miss_bubble).max(self.fetch_stall_until);
                    self.btb.update(pc, b.next_sidx);
                }
                if kind == BranchKind::Call {
                    self.ras.push(fallthrough);
                }
                (b.next_sidx, true, None)
            }
            BranchKind::Return => {
                let predicted = self.ras.pop().unwrap_or(0);
                (predicted, true, None)
            }
        };
        // Speculative history advances by the *predicted* direction.
        self.tage.update_history(pred_taken, pc);
        self.spec_hist = self.spec_hist.push(pred_taken, pc);
        (pred_next, pred_taken, tp, snap)
    }

    /// Taken target of the conditional branch at `sidx`.
    fn cond_target(&self, sidx: u32) -> Option<u32> {
        match self.program.op(sidx) {
            Op::CondBranch { target, .. } => Some(*target),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // invariants
    // ------------------------------------------------------------------

    /// One-line pipeline state summary for deadlock diagnostics.
    pub fn debug_state(&self) -> String {
        let head = self.rob.head().map(|(h, _)| {
            format!(
                "seq={} kind={:?} completed={} agu={} sched={} trap={:?} wp={}",
                h.seq, h.kind, h.completed, h.agu_done, h.read_scheduled, h.trap, h.wrong_path
            )
        });
        format!(
            "now={} head={:?} rob={}/{} iq={} lq={} sq={} fl=({},{}) pipe={} fstall={} rstall={} shared={}",
            self.now,
            head,
            self.rob.occupancy(),
            self.rob.in_flight(),
            self.iq.len(),
            self.lq.len(),
            self.sq.len(),
            self.fl[0].free_count(),
            self.fl[1].free_count(),
            self.pipe.len(),
            self.fetch_stall_until,
            self.rename_stall_until,
            self.tracker.shared_count(),
        )
    }

    /// Why is the commit head not issuing? (deadlock diagnostics)
    pub fn debug_head_block(&self) -> String {
        let Some((h, _)) = self.rob.head() else {
            return "no head".into();
        };
        let Some(q) = self.iq.iter().find(|q| q.seq == h.seq) else {
            return format!("head {} not in IQ (eliminated={})", h.seq, h.eliminated);
        };
        let mut out = format!("head {} class {:?}:", h.seq, q.class);
        for k in 0..q.n_srcs as usize {
            let i = q.srcs[k] as usize;
            let (c, p) = (i / self.cfg.pregs_per_class, i % self.cfg.pregs_per_class);
            out += &format!(" src{}=({},p{},ready_at={})", k, c, p, self.prf_ready[i]);
        }
        if let Some(d) = q.dep_store {
            out += &format!(" dep_store={d}");
        }
        out
    }

    /// Audits register-file accounting: every physical register must be
    /// either free or reachable (RM, CRM, or a live ROB entry), never both,
    /// and the free list must hold no duplicates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn audit_registers(&self) -> Result<(), String> {
        for class in RegClass::ALL {
            let ci = class.index();
            let pregs = self.cfg.pregs_per_class;
            let mut free = vec![false; pregs];
            for p in self.fl[ci].iter_free() {
                if free[p.index()] {
                    return Err(format!("{class}: {p} appears twice in the free list"));
                }
                free[p.index()] = true;
            }
            let mut reachable = vec![false; pregs];
            for (a, p) in self.rm.iter().chain(self.crm.iter()) {
                if a.class() == class {
                    reachable[p.index()] = true;
                }
            }
            for (_, cold) in self.rob.iter() {
                if let Some(d) = cold.dst {
                    if d.arch.class() == class {
                        reachable[d.new_preg.index()] = true;
                        reachable[d.old_preg.index()] = true;
                    }
                }
            }
            for p in 0..pregs {
                if free[p] && reachable[p] && !self.tracker.is_shared(class, PhysReg::new(p)) {
                    // A freed register may still be named by a *committed*
                    // CRM entry only if sharing semantics freed it early —
                    // that would be a tracker bug.
                    return Err(format!(
                        "{class}: p{p} is simultaneously free and reachable"
                    ));
                }
                if !free[p] && !reachable[p] {
                    return Err(format!("{class}: p{p} leaked (neither free nor reachable)"));
                }
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// checkpointing
// ----------------------------------------------------------------------

impl Snap for Event {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            Event::Agu { seq, uid } => {
                w.put_u8(0);
                seq.encode(w);
                w.put_u64(*uid);
            }
            Event::Complete { seq, uid } => {
                w.put_u8(1);
                seq.encode(w);
                w.put_u64(*uid);
            }
        }
    }
    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.get_u8()? {
            0 => Ok(Event::Agu {
                seq: Snap::decode(r)?,
                uid: r.get_u64()?,
            }),
            1 => Ok(Event::Complete {
                seq: Snap::decode(r)?,
                uid: r.get_u64()?,
            }),
            _ => Err(r.corrupt("Event tag")),
        }
    }
}

regshare_types::impl_snap!(IqEntry {
    seq,
    class,
    srcs,
    n_srcs,
    dep_store,
    waited_dep
});

regshare_types::impl_snap!(FetchSnap { tage, ras, hist });

regshare_types::impl_snap!(Checkpoint {
    rm,
    fl_heads,
    tracker,
    fetch
});

regshare_types::impl_snap!(PredInfo {
    pred_next,
    pred_taken,
    tage_pred,
    snap
});

regshare_types::impl_snap!(PipeUop { ready, uop, pred });

/// Digest pinning a snapshot to its (configuration, program) pair: restore
/// refuses state recorded under a different machine or workload.
fn config_digest(cfg: &CoreConfig, program: &Program) -> u64 {
    use std::hash::Hasher;
    let mut h = FastHasher::default();
    h.write_u64(cfg.digest());
    h.write_u64(program.digest());
    h.finish()
}

impl Simulator {
    /// Serializes the complete machine state into a versioned snapshot.
    ///
    /// The snapshot is pinned to this simulator's configuration and program
    /// via a digest header; [`Simulator::resume_from`] refuses anything
    /// else. A resumed run replays the remainder of the simulation
    /// byte-identically: same [`Simulator::arch_digest`], same
    /// [`Simulator::stats`].
    pub fn save_snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        write_header(&mut w, config_digest(&self.cfg, &self.program));
        self.save_state(&mut w);
        w.finish()
    }

    /// Rebuilds a simulator from a [`Simulator::save_snapshot`] image.
    ///
    /// `program` and `cfg` must be the pair the snapshot was taken under.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the image has a foreign magic/version,
    /// was recorded under a different (configuration, program) pair, is
    /// truncated, or fails a structural validity check.
    pub fn resume_from(
        program: &Program,
        cfg: CoreConfig,
        bytes: &[u8],
    ) -> Result<Simulator, SnapError> {
        let expected = config_digest(&cfg, program);
        let mut r = SnapReader::new(bytes);
        read_header(&mut r, expected)?;
        let mut sim = Simulator::new(program, cfg);
        sim.load_state(&mut r)?;
        r.expect_eof()?;
        Ok(sim)
    }
}

impl Snapshot for Simulator {
    fn save_state(&self, w: &mut SnapWriter) {
        self.stream.save_state(w);
        self.mem.save_state(w);
        self.tage.save_state(w);
        self.btb.save_state(w);
        self.ras.encode(w);
        self.store_sets.save_state(w);
        self.dist_pred.save_state(w);
        self.ddt.save_state(w);
        self.csn.encode(w);
        self.tracker.save_state(w);
        self.rm.encode(w);
        self.crm.encode(w);
        self.fl[0].save_state(w);
        self.fl[1].save_state(w);
        self.prf_value.encode(w);
        self.prf_ready.encode(w);
        self.rob.save_state(w);
        self.iq.encode(w);
        self.lq.save_state(w);
        self.sq.save_state(w);
        // Event wheel: only the (few) populated slots, by index.
        let non_empty = self.wheel.iter().filter(|v| !v.is_empty()).count();
        w.put_len(non_empty);
        for (slot, events) in self.wheel.iter().enumerate() {
            if !events.is_empty() {
                w.put_u64(slot as u64);
                events.encode(w);
            }
        }
        self.int_div_busy.encode(w);
        self.fp_div_busy.encode(w);
        self.pipe.encode(w);
        self.pending_fetch.encode(w);
        w.put_u64(self.fetch_stall_until);
        w.put_u64(self.rename_stall_until);
        w.put_u64(self.last_fetch_line);
        self.spec_hist.encode(w);
        self.arch_tage.encode(w);
        self.arch_ras.encode(w);
        self.arch_hist.encode(w);
        regshare_types::snapshot::encode_map_sorted(&self.ckpts, w);
        w.put_u64(self.next_ckpt);
        self.loads_parked.encode(w);
        self.no_bypass_seq.encode(w);
        w.put_u64(self.now);
        w.put_u64(self.next_uid);
        self.stats.encode(w);
        w.put_u64(self.arch_digest);
        self.last_share_seq.encode(w);
        self.last_cam_commit.encode(w);
    }

    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stream.load_state(r)?;
        self.mem.load_state(r)?;
        self.tage.load_state(r)?;
        self.btb.load_state(r)?;
        self.ras = Snap::decode(r)?;
        self.store_sets.load_state(r)?;
        self.dist_pred.load_state(r)?;
        self.ddt.load_state(r)?;
        self.csn = Snap::decode(r)?;
        self.tracker.load_state(r)?;
        let rm: RenameMap = Snap::decode(r)?;
        let crm: RenameMap = Snap::decode(r)?;
        if rm
            .iter()
            .chain(crm.iter())
            .any(|(_, p)| p.index() >= self.cfg.pregs_per_class)
        {
            return Err(r.corrupt("rename map preg out of range"));
        }
        self.rm = rm;
        self.crm = crm;
        self.fl[0].load_state(r)?;
        self.fl[1].load_state(r)?;
        let v: Vec<u64> = Snap::decode(r)?;
        if v.len() != self.prf_value.len() {
            return Err(r.corrupt("PRF value size"));
        }
        self.prf_value = v;
        let v: Vec<u64> = Snap::decode(r)?;
        if v.len() != self.prf_ready.len() {
            return Err(r.corrupt("PRF ready size"));
        }
        self.prf_ready = v;
        self.rob.load_state(r)?;
        let preg_ok = |p: PhysReg| p.index() < self.cfg.pregs_per_class;
        for (_, cold) in self.rob.iter() {
            let dst_ok = cold
                .dst
                .is_none_or(|d| preg_ok(d.new_preg) && preg_ok(d.old_preg));
            let share_ok = cold.share.as_ref().is_none_or(|s| preg_ok(s.preg));
            let bypass_ok = cold.bypass.is_none_or(|b| preg_ok(b.preg));
            if !(dst_ok && share_ok && bypass_ok) {
                return Err(r.corrupt("ROB preg out of range"));
            }
        }
        let iq: Vec<IqEntry> = Snap::decode(r)?;
        if iq.len() > self.cfg.iq_entries {
            return Err(r.corrupt("IQ overflow"));
        }
        let prf_len = 2 * self.cfg.pregs_per_class;
        for q in &iq {
            if q.n_srcs as usize > q.srcs.len() {
                return Err(r.corrupt("IQ source count"));
            }
            if q.srcs[..q.n_srcs as usize]
                .iter()
                .any(|&s| s as usize >= prf_len)
            {
                return Err(r.corrupt("IQ source index out of range"));
            }
        }
        self.iq = iq;
        // Rebuild the transient scheduler hints from the restored
        // scoreboard: same computation as at dispatch, so a restored
        // machine issues identically to one that never snapshotted.
        self.iq_wait.clear();
        for w in &mut self.waiters {
            w.clear();
        }
        for pos in 0..self.iq.len() {
            let entry = self.iq[pos];
            let wait = self.park_or_bound(&entry);
            self.iq_wait.push(wait);
        }
        self.lq.load_state(r)?;
        self.sq.load_state(r)?;
        for v in &mut self.wheel {
            v.clear();
        }
        let n = r.get_len()?;
        for _ in 0..n {
            let slot = r.get_u64()? as usize;
            if slot >= WHEEL {
                return Err(r.corrupt("wheel slot"));
            }
            self.wheel[slot] = Snap::decode(r)?;
        }
        let int_div_busy: Vec<u64> = Snap::decode(r)?;
        let fp_div_busy: Vec<u64> = Snap::decode(r)?;
        if int_div_busy.len() != self.int_div_busy.len()
            || fp_div_busy.len() != self.fp_div_busy.len()
        {
            return Err(r.corrupt("div unit count"));
        }
        self.int_div_busy = int_div_busy;
        self.fp_div_busy = fp_div_busy;
        self.pipe = Snap::decode(r)?;
        self.pending_fetch = Snap::decode(r)?;
        self.fetch_stall_until = r.get_u64()?;
        self.rename_stall_until = r.get_u64()?;
        self.last_fetch_line = r.get_u64()?;
        self.spec_hist = Snap::decode(r)?;
        self.arch_tage = Snap::decode(r)?;
        self.arch_ras = Snap::decode(r)?;
        self.arch_hist = Snap::decode(r)?;
        self.ckpts = regshare_types::snapshot::decode_map(r)?;
        self.next_ckpt = r.get_u64()?;
        self.loads_parked = Snap::decode(r)?;
        self.no_bypass_seq = Snap::decode(r)?;
        self.now = r.get_u64()?;
        self.next_uid = r.get_u64()?;
        self.stats = Snap::decode(r)?;
        self.arch_digest = r.get_u64()?;
        self.last_share_seq = Snap::decode(r)?;
        self.last_cam_commit = Snap::decode(r)?;
        // Process-local state: the scratch buffers are drained between
        // cycles, the snapshot pool is a pure allocation cache, and a
        // commit budget only lives inside a `run` call.
        self.snap_pool.clear();
        self.commit_budget = None;
        Ok(())
    }
}

//! Host-throughput harness: how many simulated kilo-µ-ops per second of
//! *wall-clock* time the simulator sustains, per scenario preset.
//!
//! Every other number in this repository is a guest-side metric (IPC,
//! traps, storage bits) and is deterministic by construction. Throughput is
//! the one host-side metric: it measures the simulator itself, and it is
//! what the "as fast as the hardware allows" line of the ROADMAP is judged
//! against. The harness runs a preset's (workload × variant) matrix
//! **serially** on one thread — a throughput number taken under a sharded
//! sweep would measure the scheduler, not the core loop — and reports
//!
//! ```text
//! kuops/sec = (committed µ-ops across all cells) / wall seconds / 1000
//! ```
//!
//! [`ThroughputReport::to_json`] renders the `BENCH_*.json` format: the
//! measured presets plus a pinned pre-refactor baseline, so CI can gate on
//! regressions (see the `perf-smoke` job) and future PRs inherit a recorded
//! trajectory instead of an empty one.

use crate::scenario::{preset, Scenario};
use crate::table::Table;
use regshare_core::Simulator;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock measurement of one preset's full matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetThroughput {
    /// Preset (scenario) name.
    pub name: String,
    /// Simulator instances run (workloads × variants).
    pub runs: usize,
    /// Total µ-ops committed across all runs (warmup + measure windows).
    pub uops: u64,
    /// Wall-clock seconds for the whole matrix (excluding program builds).
    pub wall_secs: f64,
}

impl PresetThroughput {
    /// Committed kilo-µ-ops per wall-clock second.
    pub fn kuops_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.uops as f64 / self.wall_secs / 1000.0
        }
    }
}

/// A full harness run: the window used, each measured preset, and an
/// optional pinned baseline to compare against.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// Document identifier written to the JSON `bench` field (e.g.
    /// `pr4_throughput`, `pr6_throughput`) — names which PR's recorded
    /// baseline this document is.
    pub bench: String,
    /// Warmup window per cell (µ-ops).
    pub warmup: u64,
    /// Measured window per cell (µ-ops).
    pub measure: u64,
    /// Per-preset cap on workloads (0 = uncapped).
    pub workload_cap: usize,
    /// Measured presets, in run order.
    pub presets: Vec<PresetThroughput>,
    /// Pinned `headline` kuops/sec of the pre-refactor core (PR 4), for
    /// speedup accounting; `None` while capturing that very baseline.
    pub baseline_headline_kuops: Option<f64>,
}

/// Runs `scenario`'s matrix serially with the given window and returns the
/// wall-clock measurement. `workload_cap` truncates the workload list
/// (0 = run them all); program construction happens outside the timed
/// region — this measures the simulator, not the workload generator.
pub fn measure_scenario(
    scenario: &Scenario,
    warmup: u64,
    measure: u64,
    workload_cap: usize,
) -> Result<PresetThroughput, crate::scenario::ScenarioError> {
    let mut workloads = scenario.resolve_workloads()?;
    if workload_cap > 0 {
        workloads.truncate(workload_cap);
    }
    let mut configs = Vec::with_capacity(scenario.variants.len());
    for (_, spec) in &scenario.variants {
        configs.push(spec.to_config()?);
    }
    let programs: Vec<_> = workloads.iter().map(|w| w.build()).collect();

    let mut runs = 0usize;
    let mut uops = 0u64;
    let start = Instant::now();
    for program in &programs {
        for cfg in &configs {
            let mut sim = Simulator::new(program, cfg.clone());
            sim.run(warmup);
            let s = sim.run(measure);
            runs += 1;
            uops += s.committed;
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    Ok(PresetThroughput {
        name: scenario.name.clone(),
        runs,
        uops,
        wall_secs,
    })
}

/// [`measure_scenario`] for a built-in preset name.
pub fn measure_preset(
    name: &str,
    warmup: u64,
    measure: u64,
    workload_cap: usize,
) -> Option<PresetThroughput> {
    let scenario = preset(name)?;
    Some(measure_scenario(&scenario, warmup, measure, workload_cap).expect("presets are valid"))
}

impl ThroughputReport {
    /// The `headline` row, if measured.
    pub fn headline(&self) -> Option<&PresetThroughput> {
        self.presets.iter().find(|p| p.name == "headline")
    }

    /// headline kuops/sec ÷ pinned baseline, when both are present.
    pub fn headline_speedup(&self) -> Option<f64> {
        let base = self.baseline_headline_kuops?;
        if base <= 0.0 {
            return None;
        }
        Some(self.headline()?.kuops_per_sec() / base)
    }

    /// Renders the human-readable table (`kuops/s` per preset).
    pub fn render_table(&self) -> String {
        let mut t = Table::new(vec!["preset", "runs", "uops", "wall_s", "kuops/s"]);
        for p in &self.presets {
            t.row(vec![
                p.name.clone(),
                format!("{}", p.runs),
                format!("{}", p.uops),
                format!("{:.3}", p.wall_secs),
                format!("{:.1}", p.kuops_per_sec()),
            ]);
        }
        if let Some(speedup) = self.headline_speedup() {
            t.footer(format!(
                "headline vs pre-refactor baseline ({:.1} kuops/s): {:.2}x",
                self.baseline_headline_kuops.unwrap_or(0.0),
                speedup
            ));
        }
        t.render()
    }

    /// Renders the `BENCH_*.json` document (hand-rolled: the workspace is
    /// dependency-free, and the schema is flat).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        out.push_str(
            "  \"unit\": \"kuops_per_sec (committed guest uops / wall second / 1000)\",\n",
        );
        let _ = writeln!(
            out,
            "  \"window\": {{ \"warmup\": {}, \"measure\": {}, \"workload_cap\": {} }},",
            self.warmup, self.measure, self.workload_cap
        );
        out.push_str("  \"presets\": [\n");
        for (i, p) in self.presets.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"name\": \"{}\", \"runs\": {}, \"uops\": {}, \
                 \"wall_secs\": {:.4}, \"kuops_per_sec\": {:.1} }}",
                p.name,
                p.runs,
                p.uops,
                p.wall_secs,
                p.kuops_per_sec()
            );
            out.push_str(if i + 1 < self.presets.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        match self.baseline_headline_kuops {
            Some(base) => {
                let _ = writeln!(
                    out,
                    "  \"baseline\": {{ \"headline_kuops_per_sec\": {base:.1}, \
                     \"captured\": \"pre-refactor core (PR 4), same window and host\" }},"
                );
                let _ = writeln!(
                    out,
                    "  \"speedup_headline\": {:.2}",
                    self.headline_speedup().unwrap_or(0.0)
                );
            }
            None => {
                out.push_str("  \"baseline\": null,\n");
                out.push_str("  \"speedup_headline\": null\n");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Extracts `"kuops_per_sec": <x>` for the named preset from a
/// `BENCH_pr4.json` document — the `perf-smoke` CI gate's only parsing
/// need, kept dependency-free on purpose. Returns `None` when the preset
/// (or a parseable number) is absent.
pub fn kuops_from_json(json: &str, preset_name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{preset_name}\"");
    let obj = json.split('{').find(|chunk| chunk.contains(&needle))?;
    number_after(obj, "\"kuops_per_sec\":")
}

/// Typed failure extracting exact integers from a `BENCH_*.json` document.
/// The window fields gate regression comparisons, so a malformed or
/// out-of-range value is rejected outright — never truncated or wrapped
/// into a plausible-looking number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchJsonError {
    /// The document has no `"window":` object.
    MissingWindow,
    /// The window object has no `key` field.
    MissingKey {
        /// Field name that was absent.
        key: &'static str,
    },
    /// `key`'s value is not a plain non-negative integer (negative,
    /// fractional, or not a number at all).
    NotAnInteger {
        /// Field name with the bad value.
        key: &'static str,
        /// The token as found in the document.
        raw: String,
    },
    /// `key`'s value is a well-formed integer that does not fit the field's
    /// native type.
    OutOfRange {
        /// Field name with the oversized value.
        key: &'static str,
        /// The token as found in the document.
        raw: String,
    },
}

impl std::fmt::Display for BenchJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchJsonError::MissingWindow => write!(f, "document has no \"window\" object"),
            BenchJsonError::MissingKey { key } => write!(f, "window has no {key:?} field"),
            BenchJsonError::NotAnInteger { key, raw } => {
                write!(
                    f,
                    "window field {key:?} is not a non-negative integer: {raw:?}"
                )
            }
            BenchJsonError::OutOfRange { key, raw } => {
                write!(f, "window field {key:?} is out of range: {raw:?}")
            }
        }
    }
}

impl std::error::Error for BenchJsonError {}

/// Extracts `key`'s value as an exact `u64`: digits only, no sign, no
/// fraction, no silent wrap-around.
fn uint_after(text: &str, key: &'static str) -> Result<u64, BenchJsonError> {
    let needle = format!("\"{key}\":");
    let after = text
        .split(&needle)
        .nth(1)
        .ok_or(BenchJsonError::MissingKey { key })?;
    let raw: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    if raw.is_empty() || raw.starts_with('-') || raw.contains('.') {
        return Err(BenchJsonError::NotAnInteger { key, raw });
    }
    raw.parse::<u64>()
        .map_err(|_| BenchJsonError::OutOfRange { key, raw })
}

/// Extracts the `(warmup, measure, workload_cap)` window a `BENCH_pr4.json`
/// document was measured with. kuops/sec depends on the window (fixed
/// per-run setup amortizes differently), so the `--check` gate refuses to
/// compare numbers taken under different windows. Values must be exact
/// non-negative integers in range; anything else is a typed error.
pub fn window_from_json(json: &str) -> Result<(u64, u64, usize), BenchJsonError> {
    let obj = json
        .split("\"window\":")
        .nth(1)
        .ok_or(BenchJsonError::MissingWindow)?;
    let obj = &obj[..obj.find('}').ok_or(BenchJsonError::MissingWindow)?];
    let warmup = uint_after(obj, "warmup")?;
    let measure = uint_after(obj, "measure")?;
    let cap = uint_after(obj, "workload_cap")?;
    let cap = usize::try_from(cap).map_err(|_| BenchJsonError::OutOfRange {
        key: "workload_cap",
        raw: cap.to_string(),
    })?;
    Ok((warmup, measure, cap))
}

fn number_after(text: &str, key: &str) -> Option<f64> {
    let after = text.split(key).nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ThroughputReport {
        ThroughputReport {
            bench: "pr4_throughput".into(),
            warmup: 100,
            measure: 400,
            workload_cap: 1,
            presets: vec![PresetThroughput {
                name: "headline".into(),
                runs: 5,
                uops: 2_500,
                wall_secs: 0.5,
            }],
            baseline_headline_kuops: Some(2.5),
        }
    }

    #[test]
    fn kuops_and_speedup_arithmetic() {
        let r = tiny_report();
        let h = r.headline().unwrap();
        assert!((h.kuops_per_sec() - 5.0).abs() < 1e-9);
        assert!((r.headline_speedup().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips_through_the_ci_extractor() {
        let r = tiny_report();
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"pr4_throughput\""));
        assert!(json.contains("\"speedup_headline\": 2.00"));
        let k = kuops_from_json(&json, "headline").unwrap();
        assert!((k - 5.0).abs() < 0.1);
        assert_eq!(kuops_from_json(&json, "absent"), None);
        assert_eq!(window_from_json(&json), Ok((100, 400, 1)));
        assert_eq!(window_from_json("{}"), Err(BenchJsonError::MissingWindow));
    }

    #[test]
    fn malformed_window_values_are_rejected_not_wrapped() {
        let doc = |warmup: &str| {
            format!(
                "{{\n  \"window\": {{ \"warmup\": {warmup}, \"measure\": 400, \
                 \"workload_cap\": 1 }}\n}}\n"
            )
        };
        // Negative: the old `as u64` cast would have wrapped to 2^64 - 100.
        assert_eq!(
            window_from_json(&doc("-100")),
            Err(BenchJsonError::NotAnInteger {
                key: "warmup",
                raw: "-100".into()
            })
        );
        // Fractional: the old cast would have truncated to 100.
        assert!(matches!(
            window_from_json(&doc("100.5")),
            Err(BenchJsonError::NotAnInteger { key: "warmup", .. })
        ));
        // Overflowing u64: the old f64 path would have rounded silently.
        assert!(matches!(
            window_from_json(&doc("99999999999999999999999")),
            Err(BenchJsonError::OutOfRange { key: "warmup", .. })
        ));
        // Not a number at all.
        assert!(matches!(
            window_from_json(&doc("\"fast\"")),
            Err(BenchJsonError::NotAnInteger { key: "warmup", .. })
        ));
        // A missing field names itself.
        assert_eq!(
            window_from_json("{ \"window\": { \"warmup\": 1, \"measure\": 2 } }"),
            Err(BenchJsonError::MissingKey {
                key: "workload_cap"
            })
        );
        // Errors render their payload.
        let e = window_from_json(&doc("-1")).unwrap_err();
        assert!(e.to_string().contains("warmup"), "{e}");
    }

    #[test]
    fn null_baseline_renders_and_extracts() {
        let mut r = tiny_report();
        r.baseline_headline_kuops = None;
        let json = r.to_json();
        assert!(json.contains("\"baseline\": null"));
        assert!(kuops_from_json(&json, "headline").is_some());
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let p = PresetThroughput {
            name: "x".into(),
            runs: 0,
            uops: 0,
            wall_secs: 0.0,
        };
        assert_eq!(p.kuops_per_sec(), 0.0);
    }

    #[test]
    fn measures_a_real_preset_matrix() {
        let p = measure_preset("smoke", 200, 800, 1).expect("smoke preset exists");
        // 1 workload × 4 variants, each committing warmup+measure µ-ops.
        assert_eq!(p.runs, 4);
        assert_eq!(p.uops, 4 * 1_000);
        assert!(p.kuops_per_sec() > 0.0);
    }
}

//! Differential gate for the assembled real-program corpus.
//!
//! Every `programs/*.asm` kernel must (a) assemble, (b) pass its own
//! self-check epilogue under the in-order oracle, and (c) commit the exact
//! oracle µ-op trace under **all five tracker presets** — the same
//! discipline as the fuzz harness, but on real control flow.

use regshare_bench::fuzz::tracker_presets;
use regshare_core::Simulator;
use regshare_isa::asm;
use regshare_isa::interp::Machine;
use regshare_isa::Program;
use std::sync::Arc;

/// µ-ops per differential run — long enough that every kernel reaches its
/// epilogue and spends time in the post-halt tail.
const UOPS: u64 = 30_000;

/// Register the corpus convention reserves for the self-check verdict.
const VERDICT_REG: usize = 15;

fn run_oracle_to_halt(program: &Program) -> Machine {
    let mut m = Machine::new(Arc::new(program.clone()));
    for _ in 0..2_000_000u64 {
        if m.is_halted() {
            return m;
        }
        m.step();
    }
    panic!("kernel did not halt within 2M steps");
}

#[test]
fn halting_program_commits_full_window_under_all_presets() {
    let program = asm::assemble(
        "    li r1, 100
         top:
             add r2, r2, r1
             sub r1, r1, 1
             bne r1, 0, top
             halt",
    )
    .unwrap();
    let uops = 5_000;
    let expected = Machine::new(Arc::new(program.clone())).run_digest(uops);
    for (preset, cfg) in tracker_presets() {
        let mut sim = Simulator::new(&program, cfg);
        let stats = sim.run(uops);
        assert_eq!(stats.committed, uops, "{preset}: short run");
        assert_eq!(sim.arch_digest(), expected, "{preset}: digest mismatch");
        sim.audit_registers().unwrap();
    }
}

#[test]
fn corpus_kernels_self_check_under_the_oracle() {
    for (name, src) in regshare_workloads::asm::CORPUS {
        let program = asm::assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let m = run_oracle_to_halt(&program);
        assert_eq!(
            m.regs()[VERDICT_REG],
            1,
            "{name}: self-check failed (r15 = {})",
            m.regs()[VERDICT_REG]
        );
    }
}

#[test]
fn corpus_matches_oracle_under_all_tracker_presets() {
    for (name, src) in regshare_workloads::asm::CORPUS {
        let program = asm::assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let expected = Machine::new(Arc::new(program.clone())).run_digest(UOPS);
        for (preset, cfg) in tracker_presets() {
            let mut sim = Simulator::new(&program, cfg);
            let stats = sim.run(UOPS);
            assert_eq!(
                stats.committed, UOPS,
                "{name}/{preset}: short run ({} committed)",
                stats.committed
            );
            assert_eq!(
                sim.arch_digest(),
                expected,
                "{name}/{preset}: architectural digest diverged from oracle"
            );
            if let Err(msg) = sim.audit_registers() {
                panic!("{name}/{preset}: register audit failed: {msg}");
            }
        }
    }
}

#[test]
fn corpus_round_trips_through_the_renderer() {
    for (name, src) in regshare_workloads::asm::CORPUS {
        let program = asm::assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = asm::render(&program);
        let again = asm::assemble(&text).unwrap_or_else(|e| panic!("{name} (re-assembled): {e}"));
        assert!(
            program.iter().eq(again.iter()),
            "{name}: assemble→render→re-assemble changed the program"
        );
    }
}

//! The reorder buffer, including the paper's third `release_head` pointer
//! for lazy register reclaiming (§3.3).
//!
//! Entries are addressed by sequence number (`slot = seq % capacity`), which
//! is exact because sequence numbers stay dense across squashes (squashed
//! numbers are re-used by the re-fetched path). Three pointers delimit
//! regions, oldest to youngest:
//!
//! ```text
//!   release_seq ──► committed, data still valid (lazy mode only)
//!   head_seq    ──► oldest in-flight (next to commit)
//!   tail_seq    ──► next sequence number to allocate
//! ```
//!
//! In eager mode `release_seq == head_seq` at all times. Occupancy is
//! `tail_seq - release_seq`, so keeping committed state reachable (for SMB
//! from committed instructions) genuinely consumes ROB space, as in the
//! paper.
//!
//! # Storage layout
//!
//! Entries are stored structure-of-arrays: the per-cycle scheduler and
//! commit-loop flags live in a dense [`RobHot`] lane (a `Copy` record of a
//! few dozen bytes), the bookkeeping consulted once per µ-op lifetime in a
//! [`RobCold`] lane, and the large, branch-only TAGE training payload in its
//! own sparse lane so it never rides along in entry copies. Squash scans —
//! which walk every slot on each misprediction — touch only the hot lane.

use regshare_isa::op::{BranchKind, MemRef, UopKind};
use regshare_predictors::tage::TagePrediction;
use regshare_refcount::ShareRequest;
use regshare_types::{Addr, ArchReg, HistorySnapshot, PhysReg, RegClass, SeqNum};

/// Why a commit-time flush was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Memory-order violation (load executed before an older overlapping
    /// store computed its address).
    MemOrder,
    /// SMB validation failure: the bypassed register's value did not match
    /// the memory data at writeback.
    BypassMispredict,
}

/// Destination bookkeeping of a µ-op.
#[derive(Debug, Clone, Copy)]
pub struct DstInfo {
    /// Architectural destination.
    pub arch: ArchReg,
    /// Newly mapped physical register (fresh, or shared for ME/SMB).
    pub new_preg: PhysReg,
    /// Previous mapping (reclaimed at/after commit).
    pub old_preg: PhysReg,
    /// Whether `new_preg` came from the free list.
    pub fresh_alloc: bool,
    /// §4.3.4 flag filter: the overwritten mapping was marked
    /// possibly-shared, so reclaiming must CAM the tracker. (Kept as a
    /// statistic; the simulator always CAMs for correctness.)
    pub needs_cam: bool,
}

/// SMB bypass bookkeeping of a load.
#[derive(Debug, Clone, Copy)]
pub struct BypassInfo {
    /// The shared (producer's) physical register.
    pub preg: PhysReg,
    /// Its class.
    pub class: RegClass,
    /// Whether validation will succeed (oracle values compared at rename;
    /// *detected* at writeback).
    pub correct: bool,
    /// Whether the producer was already committed (lazy-reclaim bypass).
    pub from_committed: bool,
}

/// Control-flow bookkeeping of a branch µ-op. The predictor-side checkpoint
/// payloads live in the simulator (type-erased here via the `ckpt` index).
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Branch kind.
    pub kind: BranchKind,
    /// Predicted next static index.
    pub pred_next: u32,
    /// Architectural next static index.
    pub actual_next: u32,
    /// Architectural direction (conditional branches).
    pub taken: bool,
    /// Predicted direction.
    pub pred_taken: bool,
    /// Set at fetch when the prediction is known wrong; resolution at
    /// execute triggers recovery.
    pub mispredicted: bool,
    /// Simulator-side checkpoint handle (index into its checkpoint table).
    pub ckpt: Option<u64>,
}

/// Hot per-entry state: identity plus the status flags the issue, writeback
/// and commit loops inspect every cycle. Kept `Copy` and small so squash
/// scans stream through a dense array.
#[derive(Debug, Clone, Copy)]
pub struct RobHot {
    /// Sequence number (identity).
    pub seq: SeqNum,
    /// Unique incarnation id: distinguishes re-fetched µ-ops that reuse a
    /// squashed sequence number, so stale execution events are ignored.
    pub uid: u64,
    /// µ-op kind.
    pub kind: UopKind,
    /// Fetched on a mispredicted path.
    pub wrong_path: bool,
    /// Execution finished (or µ-op needs no execution).
    pub completed: bool,
    /// Architecturally committed (awaiting release in lazy mode).
    pub committed: bool,
    /// The µ-op was an eliminated move (never issues).
    pub eliminated: bool,
    /// Loads/stores: address generation finished.
    pub agu_done: bool,
    /// Loads: a completion has been scheduled (stop pump retries).
    pub read_scheduled: bool,
    /// Pending commit-time flush.
    pub trap: Option<TrapKind>,
}

impl RobHot {
    fn vacant() -> RobHot {
        RobHot {
            seq: SeqNum(0),
            uid: 0,
            kind: UopKind::IntAlu,
            wrong_path: false,
            completed: false,
            committed: false,
            eliminated: false,
            agu_done: false,
            read_scheduled: false,
            trap: None,
        }
    }
}

/// Cold per-entry state: bookkeeping consulted at a handful of points in a
/// µ-op's lifetime (rename, address resolution, commit) rather than every
/// cycle.
#[derive(Debug, Clone, Copy)]
pub struct RobCold {
    /// PC.
    pub pc: Addr,
    /// Static index.
    pub sidx: u32,
    /// Destination bookkeeping.
    pub dst: Option<DstInfo>,
    /// Accepted sharing request (ME or SMB), for sharer-commit and
    /// squash-walk tracker events.
    pub share: Option<ShareRequest>,
    /// SMB bypass state (loads).
    pub bypass: Option<BypassInfo>,
    /// Memory reference (loads/stores).
    pub mem: Option<MemRef>,
    /// Load queue index.
    pub lq: Option<usize>,
    /// Store queue index.
    pub sq: Option<usize>,
    /// Store data architectural register (DDT training).
    pub store_data: Option<ArchReg>,
    /// Branch bookkeeping.
    pub branch: Option<BranchInfo>,
    /// Fetch-time history (distance predictor indexing/training).
    pub history: HistorySnapshot,
    /// Oracle result value.
    pub result: u64,
}

impl RobCold {
    fn vacant() -> RobCold {
        RobCold {
            pc: 0,
            sidx: 0,
            dst: None,
            share: None,
            bypass: None,
            mem: None,
            lq: None,
            sq: None,
            store_data: None,
            branch: None,
            history: HistorySnapshot::default(),
            result: 0,
        }
    }
}

/// One reorder buffer entry, as handed to [`Rob::alloc`]. Storage inside the
/// ROB is structure-of-arrays; this record only exists at the allocation
/// boundary (and in tests).
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Scheduler-visible state.
    pub hot: RobHot,
    /// Lifetime bookkeeping.
    pub cold: RobCold,
    /// TAGE prediction captured at fetch (trained at commit); branch-only,
    /// stored in its own lane.
    pub tage_pred: Option<Box<TagePrediction>>,
}

impl regshare_types::snapshot::Snap for TrapKind {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        w.put_u8(match self {
            TrapKind::MemOrder => 0,
            TrapKind::BypassMispredict => 1,
        });
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(TrapKind::MemOrder),
            1 => Ok(TrapKind::BypassMispredict),
            _ => Err(r.corrupt("TrapKind tag")),
        }
    }
}

regshare_types::impl_snap!(DstInfo {
    arch,
    new_preg,
    old_preg,
    fresh_alloc,
    needs_cam
});

regshare_types::impl_snap!(BypassInfo {
    preg,
    class,
    correct,
    from_committed
});

regshare_types::impl_snap!(BranchInfo {
    kind,
    pred_next,
    actual_next,
    taken,
    pred_taken,
    mispredicted,
    ckpt
});

regshare_types::impl_snap!(RobHot {
    seq,
    uid,
    kind,
    wrong_path,
    completed,
    committed,
    eliminated,
    agu_done,
    read_scheduled,
    trap
});

regshare_types::impl_snap!(RobCold {
    pc,
    sidx,
    dst,
    share,
    bypass,
    mem,
    lq,
    sq,
    store_data,
    branch,
    history,
    result
});

/// The reorder buffer. See the module docs for the pointer discipline and
/// the structure-of-arrays storage layout.
#[derive(Debug)]
pub struct Rob {
    present: Vec<bool>,
    hot: Vec<RobHot>,
    cold: Vec<RobCold>,
    tage: Vec<Option<Box<TagePrediction>>>,
    capacity: usize,
    release_seq: u64,
    head_seq: u64,
    tail_seq: u64,
}

impl Rob {
    /// Creates an empty ROB with `capacity` entries.
    pub fn new(capacity: usize) -> Rob {
        Rob {
            present: vec![false; capacity],
            hot: vec![RobHot::vacant(); capacity],
            cold: vec![RobCold::vacant(); capacity],
            tage: vec![None; capacity],
            capacity,
            release_seq: 0,
            head_seq: 0,
            tail_seq: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied entries (including committed-but-unreleased).
    pub fn occupancy(&self) -> usize {
        (self.tail_seq - self.release_seq) as usize
    }

    /// In-flight (un-committed) entries.
    pub fn in_flight(&self) -> usize {
        (self.tail_seq - self.head_seq) as usize
    }

    /// Whether an entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.occupancy() < self.capacity
    }

    /// Sequence number the next allocation must carry.
    pub fn next_seq(&self) -> SeqNum {
        SeqNum(self.tail_seq)
    }

    /// Oldest in-flight sequence number (commit head).
    pub fn head_seq(&self) -> SeqNum {
        SeqNum(self.head_seq)
    }

    /// Oldest unreleased sequence number.
    pub fn release_seq(&self) -> SeqNum {
        SeqNum(self.release_seq)
    }

    #[inline]
    fn slot_of(&self, seq: SeqNum) -> usize {
        (seq.0 % self.capacity as u64) as usize
    }

    #[inline]
    fn live_slot(&self, seq: SeqNum) -> Option<usize> {
        let slot = self.slot_of(seq);
        (self.present[slot] && self.hot[slot].seq == seq).then_some(slot)
    }

    /// Allocates the entry for `entry.hot.seq` (which must equal
    /// [`Rob::next_seq`]).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is full or the sequence number is out of order.
    pub fn alloc(&mut self, entry: RobEntry) -> usize {
        assert!(self.has_space(), "ROB overflow");
        assert_eq!(
            entry.hot.seq.0, self.tail_seq,
            "out-of-order ROB allocation"
        );
        let slot = self.slot_of(entry.hot.seq);
        debug_assert!(!self.present[slot], "ROB slot still occupied");
        self.present[slot] = true;
        self.hot[slot] = entry.hot;
        self.cold[slot] = entry.cold;
        self.tage[slot] = entry.tage_pred;
        self.tail_seq += 1;
        slot
    }

    /// The hot lane of `seq`, if still present (in-flight or
    /// committed-but-unreleased).
    #[inline]
    pub fn hot(&self, seq: SeqNum) -> Option<&RobHot> {
        self.live_slot(seq).map(|s| &self.hot[s])
    }

    /// Mutable variant of [`Rob::hot`].
    #[inline]
    pub fn hot_mut(&mut self, seq: SeqNum) -> Option<&mut RobHot> {
        self.live_slot(seq).map(|s| &mut self.hot[s])
    }

    /// The cold lane of `seq`, if still present.
    #[inline]
    pub fn cold(&self, seq: SeqNum) -> Option<&RobCold> {
        self.live_slot(seq).map(|s| &self.cold[s])
    }

    /// Mutable variant of [`Rob::cold`].
    #[inline]
    pub fn cold_mut(&mut self, seq: SeqNum) -> Option<&mut RobCold> {
        self.live_slot(seq).map(|s| &mut self.cold[s])
    }

    /// Both lanes of `seq`, if still present.
    #[inline]
    pub fn get(&self, seq: SeqNum) -> Option<(&RobHot, &RobCold)> {
        self.live_slot(seq).map(|s| (&self.hot[s], &self.cold[s]))
    }

    /// Mutable variant of [`Rob::get`] (split borrow across the lanes).
    #[inline]
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<(&mut RobHot, &mut RobCold)> {
        let slot = self.live_slot(seq)?;
        let hot = &mut self.hot[slot];
        let cold = &mut self.cold[slot];
        Some((hot, cold))
    }

    /// Takes the TAGE prediction stored with `seq`, if any.
    pub fn take_tage_pred(&mut self, seq: SeqNum) -> Option<Box<TagePrediction>> {
        let slot = self.live_slot(seq)?;
        self.tage[slot].take()
    }

    /// The oldest in-flight entry's lanes, if any.
    pub fn head(&self) -> Option<(&RobHot, &RobCold)> {
        if self.head_seq == self.tail_seq {
            None
        } else {
            self.get(SeqNum(self.head_seq))
        }
    }

    /// Marks the head committed, advances the commit pointer and returns a
    /// copy of both lanes. In eager mode the caller immediately follows
    /// with [`Rob::release_next`].
    ///
    /// # Panics
    ///
    /// Panics if there is no in-flight head.
    pub fn commit_head(&mut self) -> (RobHot, RobCold) {
        assert!(self.head_seq < self.tail_seq);
        let seq = SeqNum(self.head_seq);
        self.head_seq += 1;
        let slot = self.live_slot(seq).expect("head entry present");
        self.hot[slot].committed = true;
        (self.hot[slot], self.cold[slot])
    }

    /// Releases (drops) the oldest committed entry, returning copies of its
    /// lanes for reclaim processing. Returns `None` when release has caught
    /// up with the commit head.
    pub fn release_next(&mut self) -> Option<(RobHot, RobCold)> {
        if self.release_seq == self.head_seq {
            return None;
        }
        let seq = SeqNum(self.release_seq);
        let slot = self.slot_of(seq);
        debug_assert!(self.present[slot], "released entry present");
        debug_assert_eq!(self.hot[slot].seq, seq);
        debug_assert!(self.hot[slot].committed);
        self.present[slot] = false;
        self.tage[slot] = None;
        self.release_seq += 1;
        Some((self.hot[slot], self.cold[slot]))
    }

    /// Squashes every entry younger than `after`, invoking `f` on each
    /// (youngest-first order is *not* guaranteed), and resets the tail.
    pub fn squash_younger(&mut self, after: SeqNum, mut f: impl FnMut(&RobHot, &RobCold)) -> usize {
        let mut n = 0;
        for slot in 0..self.capacity {
            if self.present[slot] && self.hot[slot].seq > after && !self.hot[slot].committed {
                self.present[slot] = false;
                self.tage[slot] = None;
                f(&self.hot[slot], &self.cold[slot]);
                n += 1;
            }
        }
        self.tail_seq = (after.0 + 1).max(self.head_seq);
        n
    }

    /// Squashes *all* in-flight entries (commit-time flush), invoking `f`
    /// on each, and resets the tail to the commit head.
    pub fn squash_all_inflight(&mut self, mut f: impl FnMut(&RobHot, &RobCold)) -> usize {
        let mut n = 0;
        for slot in 0..self.capacity {
            if self.present[slot] && !self.hot[slot].committed {
                self.present[slot] = false;
                self.tage[slot] = None;
                f(&self.hot[slot], &self.cold[slot]);
                n += 1;
            }
        }
        self.tail_seq = self.head_seq;
        n
    }

    /// Iterates over present (in-flight or unreleased) entries.
    pub fn iter(&self) -> impl Iterator<Item = (&RobHot, &RobCold)> {
        self.present
            .iter()
            .zip(self.hot.iter().zip(self.cold.iter()))
            .filter(|(p, _)| **p)
            .map(|(_, pair)| pair)
    }
}

impl regshare_types::snapshot::Snapshot for Rob {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        // Slot-major, present entries only: vacant lanes hold stale data
        // that must never leak into (or differ across) snapshots.
        w.put_len(self.capacity);
        for slot in 0..self.capacity {
            if self.present[slot] {
                w.put_u8(1);
                self.hot[slot].encode(w);
                self.cold[slot].encode(w);
                self.tage[slot].encode(w);
            } else {
                w.put_u8(0);
            }
        }
        w.put_u64(self.release_seq);
        w.put_u64(self.head_seq);
        w.put_u64(self.tail_seq);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        if r.get_len()? != self.capacity {
            return Err(r.corrupt("Rob capacity"));
        }
        for slot in 0..self.capacity {
            match r.get_u8()? {
                0 => {
                    self.present[slot] = false;
                    self.hot[slot] = RobHot::vacant();
                    self.cold[slot] = RobCold::vacant();
                    self.tage[slot] = None;
                }
                1 => {
                    self.present[slot] = true;
                    self.hot[slot] = Snap::decode(r)?;
                    self.cold[slot] = Snap::decode(r)?;
                    self.tage[slot] = Snap::decode(r)?;
                }
                _ => return Err(r.corrupt("Rob slot tag")),
            }
        }
        let release_seq = r.get_u64()?;
        let head_seq = r.get_u64()?;
        let tail_seq = r.get_u64()?;
        if release_seq > head_seq || head_seq > tail_seq {
            return Err(r.corrupt("Rob pointer order"));
        }
        self.release_seq = release_seq;
        self.head_seq = head_seq;
        self.tail_seq = tail_seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64) -> RobEntry {
        RobEntry {
            hot: RobHot {
                seq: SeqNum(seq),
                uid: seq,
                kind: UopKind::IntAlu,
                wrong_path: false,
                completed: false,
                committed: false,
                eliminated: false,
                agu_done: false,
                read_scheduled: false,
                trap: None,
            },
            cold: RobCold {
                pc: 0x400000 + seq * 4,
                sidx: seq as u32,
                dst: None,
                share: None,
                bypass: None,
                mem: None,
                lq: None,
                sq: None,
                store_data: None,
                branch: None,
                history: HistorySnapshot::default(),
                result: 0,
            },
            tage_pred: None,
        }
    }

    #[test]
    fn alloc_get_commit_release_cycle() {
        let mut rob = Rob::new(4);
        for i in 0..3 {
            rob.alloc(entry(i));
        }
        assert_eq!(rob.occupancy(), 3);
        assert_eq!(rob.head().unwrap().0.seq, SeqNum(0));
        rob.hot_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        assert_eq!(rob.in_flight(), 2);
        assert_eq!(rob.occupancy(), 3, "lazy: entry retained until release");
        let (released, _) = rob.release_next().unwrap();
        assert_eq!(released.seq, SeqNum(0));
        assert_eq!(rob.occupancy(), 2);
        assert!(rob.release_next().is_none());
    }

    #[test]
    fn committed_entries_remain_reachable_until_release() {
        let mut rob = Rob::new(4);
        rob.alloc(entry(0));
        rob.hot_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        // Still reachable for SMB-from-committed.
        assert!(rob.get(SeqNum(0)).is_some());
        assert!(rob.hot(SeqNum(0)).unwrap().committed);
        rob.release_next();
        assert!(rob.get(SeqNum(0)).is_none());
    }

    #[test]
    fn capacity_counts_unreleased() {
        let mut rob = Rob::new(2);
        rob.alloc(entry(0));
        rob.alloc(entry(1));
        assert!(!rob.has_space());
        rob.hot_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        // Committed but unreleased: still no space (the paper's trade-off).
        assert!(!rob.has_space());
        rob.release_next();
        assert!(rob.has_space());
        rob.alloc(entry(2));
    }

    #[test]
    fn squash_younger_resets_tail() {
        let mut rob = Rob::new(8);
        for i in 0..6 {
            rob.alloc(entry(i));
        }
        let mut squashed = Vec::new();
        let n = rob.squash_younger(SeqNum(2), |h, _| squashed.push(h.seq.0));
        assert_eq!(n, 3);
        squashed.sort();
        assert_eq!(squashed, vec![3, 4, 5]);
        assert_eq!(rob.next_seq(), SeqNum(3));
        // Re-allocate the squashed range.
        rob.alloc(entry(3));
        assert!(rob.get(SeqNum(3)).is_some());
    }

    #[test]
    fn squash_all_inflight_spares_committed() {
        let mut rob = Rob::new(8);
        for i in 0..4 {
            rob.alloc(entry(i));
        }
        rob.hot_mut(SeqNum(0)).unwrap().completed = true;
        rob.commit_head();
        let n = rob.squash_all_inflight(|_, _| {});
        assert_eq!(n, 3);
        assert_eq!(rob.next_seq(), SeqNum(1));
        assert!(
            rob.get(SeqNum(0)).is_some(),
            "committed entry kept for release"
        );
    }

    #[test]
    #[should_panic]
    fn out_of_order_alloc_panics() {
        let mut rob = Rob::new(4);
        rob.alloc(entry(5));
    }

    #[test]
    fn seq_reuse_after_wraparound() {
        let mut rob = Rob::new(2);
        for i in 0..10u64 {
            rob.alloc(entry(i));
            rob.hot_mut(SeqNum(i)).unwrap().completed = true;
            rob.commit_head();
            rob.release_next();
        }
        assert_eq!(rob.next_seq(), SeqNum(10));
        assert_eq!(rob.occupancy(), 0);
    }

    #[test]
    fn tage_pred_lane_takes_once() {
        let mut rob = Rob::new(4);
        rob.alloc(entry(0));
        assert!(rob.take_tage_pred(SeqNum(0)).is_none());
        // Stale seq never resolves.
        assert!(rob.take_tage_pred(SeqNum(3)).is_none());
    }
}

//! End-to-end exercise of the `regshare-fuzz` subsystem through the facade:
//! generated programs must conform to the in-order oracle under every
//! tracker preset, and the divergence → shrink → reproduce pipeline must
//! turn an (injected) failure into a small replayable spec.

use regshare::bench::fuzz::{
    case_matrix, check_plan, check_spec, failure_artifact, render_report, run_cases, shrink,
    tracker_presets, FuzzOptions, INJECT_PRESET,
};
use regshare::workloads::fuzz::{profile_names, FuzzSpec, ShrinkSpec};

fn opts() -> FuzzOptions {
    FuzzOptions {
        uops: 2_500,
        jobs: 2,
        ..FuzzOptions::default()
    }
}

/// Every built-in profile, a couple of seeds each, against all five
/// presets — the in-repo miniature of the CI `fuzz-smoke` job.
#[test]
fn generated_programs_conform_across_all_presets() {
    assert_eq!(tracker_presets().len(), 5);
    for profile in profile_names() {
        for seed in 1..=2u64 {
            let spec = FuzzSpec::new(profile, seed).unwrap();
            assert_eq!(
                check_plan(&spec.plan(), &opts()),
                None,
                "fuzz-{profile}-{seed} diverged"
            );
        }
    }
}

/// An injected divergence must (a) be detected, (b) shrink to a smaller
/// plan, and (c) reproduce from exactly the printed `(seed, shrink spec)`
/// pair — the property that makes every failure report actionable.
#[test]
fn injected_divergence_reproduces_from_the_printed_seed_after_shrinking() {
    let spec = FuzzSpec::new("balanced", 17).unwrap();
    let inject = FuzzOptions {
        inject_fault: true,
        ..opts()
    };
    let divergence = check_plan(&spec.plan(), &inject).expect("fault must surface");
    assert_eq!(divergence.preset, INJECT_PRESET);

    let report = shrink(&spec, &inject).expect("failing case shrinks");
    assert!(
        report.blocks_after < report.blocks_before,
        "injected fault is plan-independent, so shrinking must reach a \
         smaller plan ({} -> {})",
        report.blocks_before,
        report.blocks_after
    );

    // Round-trip the spec through its printed form, as a report reader
    // would, and re-check: the failure must still reproduce.
    let printed = report.spec.to_string();
    let replayed: ShrinkSpec = printed.parse().expect("printed spec parses");
    assert_eq!(replayed, report.spec);
    assert!(
        check_spec(&spec, &replayed, &inject).is_some(),
        "shrunk case must still diverge"
    );
    // And the healthy pipeline stays healthy under the same shrink.
    assert_eq!(check_spec(&spec, &replayed, &opts()), None);
}

/// The batch runner's report and artifact are byte-identical at any
/// parallelism level, including when failures (and their shrinks) occur.
#[test]
fn fuzz_reports_are_deterministic_across_parallelism() {
    let profiles: Vec<String> = vec!["balanced".into(), "calls".into()];
    let specs = case_matrix(&profiles, 1, 2);
    let inject = |jobs| FuzzOptions {
        inject_fault: true,
        jobs,
        ..opts()
    };
    let serial = run_cases(&specs, &inject(1));
    let sharded = run_cases(&specs, &inject(4));
    assert_eq!(serial, sharded);
    assert_eq!(
        render_report(&serial, &inject(1)),
        render_report(&sharded, &inject(4))
    );
    let artifact = failure_artifact(&serial, &inject(1));
    assert_eq!(artifact.lines().count(), specs.len(), "every case fails");
    for line in artifact.lines() {
        assert!(line.contains("--inject-fault"), "repro carries the flag");
        assert!(line.contains("--seed"), "repro names its seed");
    }
}

//! Stream-cache smoke gate: runs one sweep twice in the same process and
//! asserts the second pass is served entirely from the memoized µ-op
//! streams — zero interpreter decodes, all front-end traffic replayed —
//! and that warmth is invisible in the report bytes.
//!
//! Accepts the standard scenario front-door flags (`--preset`,
//! `--scenario`, `--warmup`, `--measure`, `--jobs`); defaults to the
//! `smoke` preset.

use regshare_bench::cli::run_front_door;
use regshare_bench::run_scenario;
use regshare_isa::stream_cache_stats;

fn main() {
    let (_args, scenario) = run_front_door("cache_smoke", "smoke");

    let run = || match run_scenario(&scenario) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("cache_smoke: {e}");
            std::process::exit(1);
        }
    };

    let before = stream_cache_stats();
    let first = run();
    let after_cold = stream_cache_stats();
    let second = run();
    let after_warm = stream_cache_stats();

    let cold_decodes = after_cold.oracle_decodes - before.oracle_decodes;
    let warm_decodes = after_warm.oracle_decodes - after_cold.oracle_decodes;
    let warm_replays = after_warm.replayed_uops - after_cold.replayed_uops;

    println!(
        "cache_smoke: cold pass decoded {cold_decodes} uops; \
         warm pass decoded {warm_decodes}, replayed {warm_replays}"
    );

    let mut failed = false;
    if cold_decodes == 0 {
        eprintln!("cache_smoke: cold pass decoded nothing — sweep too small to prove anything");
        failed = true;
    }
    if warm_decodes != 0 {
        eprintln!("cache_smoke: warm pass hit the interpreter {warm_decodes} times (want 0)");
        failed = true;
    }
    if warm_replays == 0 {
        eprintln!("cache_smoke: warm pass replayed nothing from the stream cache");
        failed = true;
    }
    if first != second {
        eprintln!("cache_smoke: warm report differs from cold report — cache warmth leaked");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    print!("{second}");
}

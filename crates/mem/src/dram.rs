//! Single-channel DRAM timing model with banks, row buffers and a shared
//! data bus (Table 1: DDR3-1600 11-11-11, 2 ranks × 8 banks, 8K row buffer,
//! 64B bus, 75–185 cycle CPU-visible read latency).

use regshare_types::{Addr, Cycle};

/// DRAM timing parameters (in CPU cycles at 4 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks across all ranks.
    pub banks: usize,
    /// Row buffer size in bytes.
    pub row_bytes: u64,
    /// Latency of a row-buffer hit (controller + CAS + transfer).
    pub row_hit_latency: u64,
    /// Additional latency for a row miss (precharge + activate).
    pub row_miss_penalty: u64,
    /// Data bus occupancy per 64B transfer.
    pub bus_cycles: u64,
    /// Upper bound on queuing-inflated latency (paper: max read 185).
    pub max_latency: u64,
}

impl DramConfig {
    /// Table 1 values: min read 75 cycles, max 185, 2 ranks × 8 banks,
    /// 8K row buffer.
    pub fn ddr3_1600() -> DramConfig {
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            row_hit_latency: 75,
            row_miss_penalty: 60,
            bus_cycles: 10,
            max_latency: 185,
        }
    }
}

/// The DRAM device + controller model.
///
/// # Examples
///
/// ```
/// use regshare_mem::{DramModel, DramConfig};
/// use regshare_types::Cycle;
/// let mut d = DramModel::new(DramConfig::ddr3_1600());
/// let first = d.access(0x100000, Cycle(0));
/// assert!(first.0 >= 75);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    /// Open row per bank (`u64::MAX` = closed).
    open_rows: Vec<u64>,
    /// Cycle at which the shared bus frees.
    bus_free: u64,
    accesses: u64,
    row_hits: u64,
}

impl DramModel {
    /// Builds the model.
    pub fn new(cfg: DramConfig) -> DramModel {
        DramModel {
            open_rows: vec![u64::MAX; cfg.banks],
            cfg,
            bus_free: 0,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// Performs a 64B read of the line at `addr`, returning its completion
    /// cycle. Mutates bank/row and bus state.
    pub fn access(&mut self, addr: Addr, now: Cycle) -> Cycle {
        self.accesses += 1;
        let row = addr / self.cfg.row_bytes;
        let bank = (row as usize) % self.cfg.banks;
        let hit = self.open_rows[bank] == row;
        if hit {
            self.row_hits += 1;
        } else {
            self.open_rows[bank] = row;
        }
        let device = if hit {
            self.cfg.row_hit_latency
        } else {
            self.cfg.row_hit_latency + self.cfg.row_miss_penalty
        };
        // Serialize transfers on the shared bus.
        let start = now.0.max(self.bus_free);
        self.bus_free = start + self.cfg.bus_cycles;
        let raw = start + device;
        // The paper reports a bounded [min, max] read latency; clamp the
        // queueing inflation accordingly.
        let clamped = raw.min(now.0 + self.cfg.max_latency);
        Cycle(clamped.max(now.0 + self.cfg.row_hit_latency))
    }

    /// (total accesses, row-buffer hits).
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.row_hits)
    }
}

impl regshare_types::snapshot::Snapshot for DramModel {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.open_rows.encode(w);
        w.put_u64(self.bus_free);
        w.put_u64(self.accesses);
        w.put_u64(self.row_hits);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let open_rows: Vec<u64> = Snap::decode(r)?;
        if open_rows.len() != self.open_rows.len() {
            return Err(r.corrupt("DramModel bank count"));
        }
        self.open_rows = open_rows;
        self.bus_free = r.get_u64()?;
        self.accesses = r.get_u64()?;
        self.row_hits = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let miss = d.access(0x100000, Cycle(0));
        let hit = d.access(0x100040, Cycle(miss.0)); // same row
        assert!(hit.0 - miss.0 < miss.0, "row hit not faster");
        assert_eq!(d.stats(), (2, 1));
    }

    #[test]
    fn latency_bounds_hold() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        // Hammer the bus from one cycle to create queueing.
        let mut worst = 0;
        let mut best = u64::MAX;
        for i in 0..50u64 {
            let c = d.access(i * 1_000_000, Cycle(0));
            worst = worst.max(c.0);
            best = best.min(c.0);
        }
        assert!(best >= 75, "best latency {best} below min");
        assert!(worst <= 185, "worst latency {worst} above max");
    }

    #[test]
    fn banks_hold_independent_rows() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let a = 0u64; // bank 0, row 0
        let b = 8192; // bank 1, row 1
        let _ = d.access(a, Cycle(0));
        let _ = d.access(b, Cycle(200));
        // Re-access both: both should be row hits.
        let _ = d.access(a + 64, Cycle(400));
        let _ = d.access(b + 64, Cycle(600));
        let (_, hits) = d.stats();
        assert_eq!(hits, 2);
    }

    #[test]
    fn bus_serializes_back_to_back() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let c1 = d.access(0x0, Cycle(0));
        let c2 = d.access(0x0, Cycle(0)); // same row, same instant
        assert!(
            c2.0 > c1.0 - 60,
            "second access should queue behind the first"
        );
    }
}

//! Property tests: the ISRB (with unlimited entries and wide counters) must
//! make exactly the same free/keep decisions as the independently
//! implemented ideal tracker, under arbitrary interleavings of shares,
//! reclaims, sharer-commits, checkpoints, restores and commit flushes.

use proptest::prelude::*;
use regshare::refcount::{
    Isrb, IsrbConfig, ReclaimRequest, ShareKind, ShareRequest, SharingTracker, UnlimitedTracker,
};
use regshare::types::{ArchReg, PhysReg, RegClass};

#[derive(Debug, Clone)]
enum Ev {
    Share(u8),
    SharerCommit(u8),
    Reclaim(u8),
    Checkpoint,
    Restore,
    CommitFlush,
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        4 => (0u8..12).prop_map(Ev::Share),
        2 => (0u8..12).prop_map(Ev::SharerCommit),
        4 => (0u8..12).prop_map(Ev::Reclaim),
        1 => Just(Ev::Checkpoint),
        1 => Just(Ev::Restore),
        1 => Just(Ev::CommitFlush),
    ]
}

fn share(p: u8) -> ShareRequest {
    ShareRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p as usize),
        kind: ShareKind::Bypass {
            arch_dst: ArchReg::int((p % 16) as usize),
        },
    }
}

fn reclaim(p: u8) -> ReclaimRequest {
    ReclaimRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p as usize),
        arch: ArchReg::int((p % 16) as usize),
        renews: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn unlimited_isrb_matches_ideal_tracker(events in proptest::collection::vec(ev_strategy(), 1..200)) {
        let mut isrb = Isrb::new(IsrbConfig::unlimited());
        let mut ideal = UnlimitedTracker::new();
        // Live checkpoint stacks (ids of both trackers, kept in lockstep).
        let mut ckpts: Vec<(u64, u64)> = Vec::new();
        // Track how many live (unreclaimed) references each preg has so we
        // only emit reclaims that can occur in a real pipeline (one reclaim
        // per mapping: sharers + the original allocation).
        let mut mappings = [0i32; 12];

        for ev in events {
            match ev {
                Ev::Share(p) => {
                    if mappings[p as usize] == 0 {
                        mappings[p as usize] = 1; // implicit original mapping
                    }
                    let a = isrb.try_share(&share(p));
                    let b = ideal.try_share(&share(p));
                    prop_assert_eq!(a, b);
                    if a {
                        mappings[p as usize] += 1;
                    }
                }
                Ev::SharerCommit(p) => {
                    if isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                        isrb.on_sharer_commit(&share(p));
                        ideal.on_sharer_commit(&share(p));
                    }
                }
                Ev::Reclaim(p) => {
                    if mappings[p as usize] > 0 {
                        let a = isrb.on_reclaim(&reclaim(p));
                        let b = ideal.on_reclaim(&reclaim(p));
                        prop_assert_eq!(a, b, "reclaim decision diverged for p{}", p);
                        mappings[p as usize] -= 1;
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                            mappings[p as usize] = 0;
                        }
                    }
                }
                Ev::Checkpoint => {
                    ckpts.push((isrb.checkpoint(), ideal.checkpoint()));
                }
                Ev::Restore => {
                    if let Some((a, b)) = ckpts.pop() {
                        let mut fa = Vec::new();
                        let mut fb = Vec::new();
                        isrb.restore(a, &mut fa);
                        ideal.restore(b, &mut fb);
                        fa.sort();
                        fb.sort();
                        prop_assert_eq!(&fa, &fb, "restore freed different registers");
                        for (_, preg) in fa {
                            mappings[preg.index()] = 0;
                        }
                        // Squashed shares: the mapping picture resets to the
                        // trackers' view.
                        for (p, m) in mappings.iter_mut().enumerate() {
                            if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                                *m = (*m).min(1);
                            }
                        }
                    }
                }
                Ev::CommitFlush => {
                    let mut fa = Vec::new();
                    let mut fb = Vec::new();
                    isrb.restore_to_committed(&mut fa);
                    ideal.restore_to_committed(&mut fb);
                    fa.sort();
                    fb.sort();
                    prop_assert_eq!(&fa, &fb, "commit flush freed different registers");
                    ckpts.clear();
                    for (_, preg) in fa {
                        mappings[preg.index()] = 0;
                    }
                    for (p, m) in mappings.iter_mut().enumerate() {
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                            *m = (*m).min(1);
                        }
                    }
                }
            }
            // Shared-set equality at every step.
            for p in 0..12u8 {
                prop_assert_eq!(
                    isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)),
                    ideal.is_shared(RegClass::Int, PhysReg::new(p as usize)),
                    "shared-set diverged for p{}", p
                );
            }
        }
    }

    #[test]
    fn finite_isrb_never_leaks_entries(events in proptest::collection::vec(ev_strategy(), 1..300)) {
        // A 4-entry ISRB under arbitrary traffic: occupancy stays ≤ 4 and
        // every reclaim of an untracked register frees.
        let mut isrb = Isrb::new(IsrbConfig { entries: 4, counter_bits: 3, ..IsrbConfig::default() });
        let mut ckpts: Vec<u64> = Vec::new();
        let mut live = [0i32; 12];
        for ev in events {
            match ev {
                Ev::Share(p) => {
                    if isrb.try_share(&share(p)) {
                        if live[p as usize] == 0 { live[p as usize] = 1; }
                        live[p as usize] += 1;
                    }
                }
                Ev::SharerCommit(p) => isrb.on_sharer_commit(&share(p)),
                Ev::Reclaim(p) => {
                    if live[p as usize] > 0 {
                        isrb.on_reclaim(&reclaim(p));
                        live[p as usize] -= 1;
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p as usize)) {
                            live[p as usize] = 0;
                        }
                    }
                }
                Ev::Checkpoint => ckpts.push(isrb.checkpoint()),
                Ev::Restore => {
                    if let Some(id) = ckpts.pop() {
                        let mut freed = Vec::new();
                        isrb.restore(id, &mut freed);
                        for (_, preg) in freed { live[preg.index()] = 0; }
                        for (p, l) in live.iter_mut().enumerate() {
                            if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                                *l = (*l).min(1);
                            }
                        }
                    }
                }
                Ev::CommitFlush => {
                    let mut freed = Vec::new();
                    isrb.restore_to_committed(&mut freed);
                    ckpts.clear();
                    for (_, preg) in freed { live[preg.index()] = 0; }
                    for (p, l) in live.iter_mut().enumerate() {
                        if !isrb.is_shared(RegClass::Int, PhysReg::new(p)) {
                            *l = (*l).min(1);
                        }
                    }
                }
            }
            prop_assert!(isrb.shared_count() <= 4, "occupancy exceeded capacity");
        }
    }
}

//! The cache-aware scheduling engine behind the daemon.
//!
//! [`Engine::submit`] takes a parsed [`Scenario`] and produces the same
//! report the batch binaries print — but per (workload × configuration ×
//! window) **cell** rather than per run:
//!
//! 1. the request is normalized (checkpoint plumbing cleared, run options
//!    pinned over the once-per-process environment snapshot) and
//!    validated with the scenario layer's typed errors;
//! 2. every cell is content-addressed with
//!    [`regshare_bench::cell_digest`] and looked up in the persistent
//!    [`Cache`];
//! 3. misses are **coalesced** against the in-flight table — two
//!    concurrent requests needing the same cell trigger exactly one
//!    simulation — and scheduled onto the worker pool under admission
//!    control: when the number of queued-plus-running cells would exceed
//!    the cap, the request is rejected with the typed, retriable
//!    [`ServeError::Busy`] instead of growing the queue without bound;
//! 4. the request waits for its cells under a deadline
//!    ([`ServeError::Timeout`] on expiry — the cells keep computing and
//!    warm the cache for the retry), then merges everything in spec
//!    order and renders the body.
//!
//! Because the sweep engine is deterministic, a cache hit and a fresh
//! computation yield byte-identical stats, so the rendered table is
//! byte-identical whether the request was served cold, warm, or half-and-
//! half — provenance is reported *next to* the body, never inside it.

use crate::cache::{Cache, CacheError};
use regshare_bench::digest::cell_digest;
use regshare_bench::harness::{measure_program, Measurement, RunWindow};
use regshare_bench::report::render_report;
use regshare_bench::scenario::{Scenario, ScenarioError};
use regshare_bench::sweep::SweepGrid;
use regshare_bench::RunOptions;
use regshare_core::{CoreConfig, SimStats};
use regshare_isa::Program;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Any way a request can fail. Everything is typed: the protocol layer
/// maps each variant to a wire error kind, and `Busy`/`Timeout` are
/// explicitly retriable.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submitted scenario is invalid (unknown names, bad config...).
    Scenario(ScenarioError),
    /// The cache directory could not be opened or written.
    Cache(CacheError),
    /// Admission control: the job queue is full. Admission is checked
    /// per *cell*, so a partially-admitted request's earlier cells keep
    /// computing and warm the cache — a retry makes progress. Retriable.
    Busy {
        /// Cells queued or running when the request was rejected.
        pending: usize,
        /// The configured cap.
        max: usize,
    },
    /// The request's cells did not all finish within the deadline. The
    /// computations keep running and warm the cache, so a retry makes
    /// progress. Retriable.
    Timeout {
        /// The configured per-request deadline.
        ms: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Scenario(e) => write!(f, "{e}"),
            ServeError::Cache(e) => write!(f, "{e}"),
            ServeError::Busy { pending, max } => write!(
                f,
                "server is at capacity ({pending}/{max} cells in flight); retry later"
            ),
            ServeError::Timeout { ms } => write!(
                f,
                "request exceeded the {ms} ms deadline; the cells keep \
                 computing — retry to pick them up from the cache"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Scenario(e) => Some(e),
            ServeError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for ServeError {
    fn from(e: ScenarioError) -> ServeError {
        ServeError::Scenario(e)
    }
}

impl From<CacheError> for ServeError {
    fn from(e: CacheError) -> ServeError {
        ServeError::Cache(e)
    }
}

/// Response body format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// The standard report (byte-identical to the batch binaries).
    Table,
    /// A JSON document with per-cell provenance.
    Json,
}

/// A served result: the rendered body plus per-request provenance.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Rendered report (table) or JSON document.
    pub body: String,
    /// Cells in the request's matrix.
    pub cells: usize,
    /// Cells served from the persistent cache.
    pub cached: usize,
    /// Cells this request had to wait on a simulation for (fresh or
    /// coalesced onto another request's in-flight computation).
    pub computed: usize,
}

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cache directory (created if missing).
    pub cache_dir: String,
    /// Byte cap for the cache; `None` = unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Worker threads; 0 = available parallelism.
    pub workers: usize,
    /// Admission cap: maximum queued-plus-running cells.
    pub max_pending: usize,
    /// Per-request deadline in milliseconds.
    pub timeout_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            cache_dir: ".regshare-cache".to_string(),
            cache_max_bytes: None,
            workers: 0,
            max_pending: 1024,
            timeout_ms: 120_000,
        }
    }
}

/// One cell's rendezvous between the worker that computes it and every
/// request waiting on it.
struct Slot {
    stats: Mutex<Option<SimStats>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stats: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, stats: SimStats) {
        *self.stats.lock().unwrap_or_else(|e| e.into_inner()) = Some(stats);
        self.ready.notify_all();
    }

    fn wait_until(&self, deadline: Instant) -> Option<SimStats> {
        let mut guard = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stats) = *guard {
                return Some(stats);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

/// One unit of work for the pool.
struct Job {
    key: u64,
    workload: String,
    program: Arc<Program>,
    cfg: CoreConfig,
    window: RunWindow,
    slot: Arc<Slot>,
}

/// State shared between the engine front and the worker threads.
struct Shared {
    cache: Cache,
    /// Cells currently queued or computing, keyed by content address.
    inflight: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Queued-plus-running cell count (admission control).
    pending: AtomicUsize,
    /// Cells actually simulated since engine start — THE exactly-once
    /// witness: a warm request leaves it untouched.
    computed: AtomicU64,
    /// Cells served from the persistent cache since engine start.
    hits: AtomicU64,
    /// Requests accepted (valid scenarios) since engine start.
    requests: AtomicU64,
}

impl Shared {
    fn run_job(&self, job: Job) {
        let m = measure_program(job.workload.clone(), &job.program, job.cfg, job.window);
        self.computed.fetch_add(1, Ordering::Relaxed);
        // Persist before publishing: once the slot is filled and the
        // in-flight entry removed, later lookups must find the cache hit.
        if let Err(e) = self.cache.store(job.key, &job.workload, &m.stats) {
            eprintln!("serve: cache store failed (serving from memory): {e}");
        }
        job.slot.fill(m.stats);
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job.key);
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The persistent, cache-aware scheduler. Cheap to share (`Arc`) across
/// connection threads; dropping it drains the worker pool.
pub struct Engine {
    shared: Arc<Shared>,
    /// Senders are cloned per enqueue; `None` after shutdown.
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    timeout: Duration,
    max_pending: usize,
    /// The deprecated environment fallbacks, pinned at engine start and
    /// threaded through every request's [`RunOptions`].
    env_baseline: RunOptions,
}

impl Engine {
    /// Opens the cache and starts the worker pool.
    pub fn new(config: EngineConfig) -> Result<Engine, ServeError> {
        let cache = Cache::open(&config.cache_dir, config.cache_max_bytes)?;
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let shared = Arc::new(Shared {
            cache,
            inflight: Mutex::new(HashMap::new()),
            pending: AtomicUsize::new(0),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || loop {
                let job = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match job {
                    Ok(job) => shared.run_job(job),
                    Err(_) => break, // engine dropped
                }
            }));
        }
        Ok(Engine {
            shared,
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            timeout: Duration::from_millis(config.timeout_ms),
            max_pending: config.max_pending,
            env_baseline: regshare_bench::env_fallbacks(),
        })
    }

    /// Cells actually simulated since engine start. A request served
    /// entirely from the persistent cache leaves this unchanged — the
    /// acceptance witness for warm serving.
    pub fn computed_cells(&self) -> u64 {
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// Cells served from the persistent cache since engine start.
    pub fn cache_hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Requests accepted (validated) since engine start.
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The cache this engine serves from.
    pub fn cache(&self) -> &Cache {
        &self.shared.cache
    }

    /// Normalizes a request: the daemon owns parallelism and checkpoint
    /// plumbing (those keys are cleared), and unset run options resolve
    /// against the environment snapshot taken at engine start.
    fn normalize(&self, scenario: &Scenario) -> Scenario {
        let mut s = scenario.clone();
        s.options = s.options.over(self.env_baseline);
        s.checkpoint_interval = None;
        s.resume_from = None;
        s
    }

    /// Serves one request. See the module docs for the full pipeline.
    pub fn submit(&self, scenario: &Scenario, format: Format) -> Result<ServeResponse, ServeError> {
        let s = self.normalize(scenario);
        s.validate()?;
        let workloads = s.resolve_workloads()?;
        let mut configs: Vec<CoreConfig> = Vec::with_capacity(s.variants.len());
        for (label, spec) in &s.variants {
            configs.push(spec.to_config().map_err(|e| ScenarioError::InVariant {
                label: label.clone(),
                source: Box::new(e),
            })?);
        }
        self.shared.requests.fetch_add(1, Ordering::Relaxed);

        let window = s.options.window();
        let nv = configs.len();
        let n = workloads.len() * nv;
        let mut stats: Vec<Option<SimStats>> = vec![None; n];
        let mut from_cache = vec![false; n];
        // Duplicate keys inside one request (two labels resolving to the
        // same machine) share one resolution.
        let mut first_of_key: HashMap<u64, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut waits: Vec<(usize, Arc<Slot>)> = Vec::new();
        // Programs are built at most once per workload per request, and
        // only when some cell of that workload actually misses.
        let mut programs: Vec<Option<Arc<Program>>> = vec![None; workloads.len()];

        for i in 0..n {
            let (w, v) = (i / nv, i % nv);
            let name = &workloads[w].name;
            let key = cell_digest(name, &configs[v], window);
            if let Some(&j) = first_of_key.get(&key) {
                dups.push((i, j));
                continue;
            }
            first_of_key.insert(key, i);

            match self.shared.cache.load(key, name) {
                Ok(Some(hit)) => {
                    stats[i] = Some(hit);
                    from_cache[i] = true;
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    // A damaged entry is recomputed, not served wrong and
                    // not fatal to the request.
                    eprintln!("serve: discarding bad cache entry {key:016x}: {e}");
                    let _ = std::fs::remove_file(self.shared.cache.entry_path(key));
                }
            }

            // Build (or reuse) the program before taking the in-flight
            // lock; on the rare attach the build is wasted, never wrong.
            let program = programs[w]
                .get_or_insert_with(|| Arc::new(workloads[w].build()))
                .clone();

            let slot = {
                let mut inflight = self
                    .shared
                    .inflight
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if let Some(slot) = inflight.get(&key) {
                    // Coalesce onto the computation already in flight.
                    Arc::clone(slot)
                } else if let Ok(Some(hit)) = self.shared.cache.load(key, name) {
                    // The cell completed between our miss and this lock
                    // (workers persist before unpublishing, so a vanished
                    // in-flight entry is always a cache hit by now).
                    stats[i] = Some(hit);
                    from_cache[i] = true;
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                } else {
                    let pending = self.shared.pending.load(Ordering::Relaxed);
                    if pending >= self.max_pending {
                        return Err(ServeError::Busy {
                            pending,
                            max: self.max_pending,
                        });
                    }
                    self.shared.pending.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(Slot::new());
                    inflight.insert(key, Arc::clone(&slot));
                    let tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
                    if let Some(tx) = tx.as_ref() {
                        let _ = tx.send(Job {
                            key,
                            workload: name.clone(),
                            program,
                            cfg: configs[v].clone(),
                            window,
                            slot: Arc::clone(&slot),
                        });
                    }
                    slot
                }
            };
            waits.push((i, slot));
        }

        // Wait for every miss under one request-wide deadline.
        let deadline = Instant::now() + self.timeout;
        for (i, slot) in waits {
            match slot.wait_until(deadline) {
                Some(computed) => stats[i] = Some(computed),
                None => {
                    return Err(ServeError::Timeout {
                        ms: self.timeout.as_millis() as u64,
                    })
                }
            }
        }
        for (i, j) in dups {
            stats[i] = stats[j];
            from_cache[i] = from_cache[j];
        }

        let cached = from_cache.iter().filter(|&&c| c).count();
        let cells: Vec<Measurement> = stats
            .iter()
            .enumerate()
            .map(|(i, st)| Measurement {
                name: workloads[i / nv].name.clone(),
                stats: st.expect("every cell resolved"),
            })
            .collect();
        let labels: Vec<String> = s.variants.iter().map(|(l, _)| l.clone()).collect();
        let grid = SweepGrid::from_parts(workloads, labels, cells);
        let body = match format {
            Format::Table => render_report(&s, &grid),
            Format::Json => json_report(&s, &grid, &from_cache),
        };
        Ok(ServeResponse {
            body,
            cells: n,
            cached,
            computed: n - cached,
        })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Close the queue, then drain the pool: in-flight cells finish
        // (and land in the cache) before the engine disappears.
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Renders the JSON body: scenario identity, resolved window, and one
/// object per cell with IPC, raw cycle/µ-op counts and `cached`
/// provenance. Hand-rolled like `BENCH_*.json` — the workspace is
/// dependency-free. Scenario names/notes need no escaping: validation
/// already rejects quotes, backslashes and control characters.
fn json_report(scenario: &Scenario, grid: &SweepGrid, from_cache: &[bool]) -> String {
    let window = scenario.options.window();
    let labels = grid.labels();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", scenario.name));
    if !scenario.note.is_empty() {
        out.push_str(&format!("  \"note\": \"{}\",\n", scenario.note));
    }
    out.push_str(&format!(
        "  \"window\": {{ \"warmup\": {}, \"measure\": {} }},\n",
        window.warmup, window.measure
    ));
    out.push_str(&format!(
        "  \"variants\": [{}],\n",
        labels
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"cells\": [\n");
    let nv = labels.len();
    let mut first = true;
    for (w, row) in grid.rows().enumerate() {
        for (v, label) in labels.iter().enumerate() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let m = row.get(label);
            out.push_str(&format!(
                "    {{ \"workload\": \"{}\", \"variant\": \"{label}\", \
                 \"ipc\": {:.6}, \"cycles\": {}, \"committed\": {}, \
                 \"cached\": {} }}",
                row.workload().name,
                m.ipc(),
                m.stats.cycles,
                m.stats.committed,
                from_cache[w * nv + v]
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

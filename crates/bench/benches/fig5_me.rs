//! **Figure 5**: move elimination.
//!
//! (a) Speedup over baseline as a function of ISRB entries (8/16/32/∞).
//! (b) Percentage of renamed µ-ops eliminated with an unlimited ISRB.
//!
//! Paper shape: a handful of entries suffice (8 reasonable, 16 generally
//! enough, 32 ≈ unlimited); gains are limited (~1% gmean, up to ~5%);
//! elimination rate does not correlate strongly with speedup.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::CoreConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    let sizes = [8usize, 16, 32, 0];
    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "me8%",
        "me16%",
        "me32%",
        "meUnl%",
        "pct_renamed_elim",
    ]);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for wl in suite() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string(), format!("{:.3}", base.ipc())];
        let mut elim_pct = 0.0;
        for (i, &n) in sizes.iter().enumerate() {
            let m = measure(
                &wl,
                CoreConfig::hpca16().with_me().with_isrb_entries(n),
                window,
            );
            let sp = speedup_pct(base.ipc(), m.ipc());
            per_size[i].push(1.0 + sp / 100.0);
            cells.push(format!("{sp:+.2}"));
            if n == 0 {
                elim_pct = m.stats.pct_renamed_eliminated();
            }
        }
        cells.push(format!("{elim_pct:.2}%"));
        t.row(cells);
    }
    println!("# Figure 5(a)+(b): move elimination vs ISRB size\n");
    t.print();
    for (i, &n) in sizes.iter().enumerate() {
        let g = (geomean(&per_size[i]).unwrap_or(1.0) - 1.0) * 100.0;
        let label = if n == 0 {
            "unlimited".into()
        } else {
            n.to_string()
        };
        println!("geomean speedup, ISRB {label}: {g:+.2}%");
    }
}

//! Miss Status Holding Registers: track in-flight line misses, merge
//! secondary misses, and bound outstanding miss parallelism.

use regshare_types::hasher::FastMap;
use regshare_types::{Addr, Cycle};

/// A file of MSHRs keyed by line address.
///
/// Entries are implicitly released when their fill time passes; occupancy is
/// always evaluated against a "now" cycle, so no explicit event is needed.
///
/// # Examples
///
/// ```
/// use regshare_mem::MshrFile;
/// use regshare_types::Cycle;
/// let mut m = MshrFile::new(2);
/// assert!(m.allocate(0x40, Cycle(100), Cycle(0)));
/// assert_eq!(m.pending(0x40, Cycle(50)), Some(Cycle(100)));
/// assert_eq!(m.pending(0x40, Cycle(150)), None); // released
/// ```
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    entries: FastMap<Addr, Cycle>,
    capacity: usize,
}

impl MshrFile {
    /// Creates a file with `capacity` entries (0 = unlimited).
    pub fn new(capacity: usize) -> MshrFile {
        MshrFile {
            entries: FastMap::default(),
            capacity,
        }
    }

    /// Drops entries whose fill completed before `now`.
    fn gc(&mut self, now: Cycle) {
        if self.entries.len() > 32 {
            self.entries.retain(|_, ready| ready.0 > now.0);
        }
    }

    /// Number of live (unfilled) entries at `now`.
    pub fn occupancy(&self, now: Cycle) -> usize {
        self.entries.values().filter(|r| r.0 > now.0).count()
    }

    /// Whether an entry can be allocated at `now`.
    pub fn has_free(&self, now: Cycle) -> bool {
        self.capacity == 0 || self.occupancy(now) < self.capacity
    }

    /// If the line has an in-flight miss at `now`, returns its fill time.
    pub fn pending(&self, line: Addr, now: Cycle) -> Option<Cycle> {
        self.entries.get(&line).copied().filter(|r| r.0 > now.0)
    }

    /// Allocates an entry for `line`, filling at `ready`. Returns `false`
    /// if the file is full at `now`.
    pub fn allocate(&mut self, line: Addr, ready: Cycle, now: Cycle) -> bool {
        self.gc(now);
        if !self.has_free(now) {
            return false;
        }
        self.entries.insert(line, ready);
        true
    }
}

impl regshare_types::snapshot::Snapshot for MshrFile {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        regshare_types::snapshot::encode_map_sorted(&self.entries, w);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        self.entries = regshare_types::snapshot::decode_map(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced_and_released_over_time() {
        let mut m = MshrFile::new(2);
        assert!(m.allocate(0x00, Cycle(10), Cycle(0)));
        assert!(m.allocate(0x40, Cycle(20), Cycle(0)));
        assert!(!m.has_free(Cycle(5)));
        assert!(!m.allocate(0x80, Cycle(30), Cycle(5)));
        // After the first fill completes an entry frees up.
        assert!(m.has_free(Cycle(15)));
        assert!(m.allocate(0x80, Cycle(30), Cycle(15)));
    }

    #[test]
    fn unlimited_capacity() {
        let mut m = MshrFile::new(0);
        for i in 0..100 {
            assert!(m.allocate(i * 64, Cycle(1000), Cycle(0)));
        }
        assert!(m.has_free(Cycle(0)));
    }

    #[test]
    fn pending_respects_time() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, Cycle(100), Cycle(0));
        assert_eq!(m.pending(0x40, Cycle(99)), Some(Cycle(100)));
        assert_eq!(m.pending(0x40, Cycle(100)), None);
        assert_eq!(m.pending(0x80, Cycle(0)), None);
    }

    #[test]
    fn occupancy_counts_live_only() {
        let mut m = MshrFile::new(8);
        m.allocate(0x00, Cycle(10), Cycle(0));
        m.allocate(0x40, Cycle(50), Cycle(0));
        assert_eq!(m.occupancy(Cycle(0)), 2);
        assert_eq!(m.occupancy(Cycle(20)), 1);
        assert_eq!(m.occupancy(Cycle(60)), 0);
    }
}

//! TAGE conditional branch direction predictor (Seznec & Michaud).
//!
//! Configured per Table 1 of the paper: one bimodal base component plus 12
//! partially tagged components with geometrically increasing history
//! lengths, ~15K entries total, speculative history with snapshot/restore.

use crate::history::{FoldedHistory, GlobalHistory};
use regshare_types::counter::{SatCounter, SignedCounter};
use regshare_types::hasher::mix64;
use regshare_types::Addr;

/// Geometry of one tagged component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentConfig {
    /// log2(number of entries).
    pub log_entries: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// History length in bits.
    pub hist_len: usize,
}

/// Full TAGE geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// log2(base bimodal entries).
    pub log_base_entries: u32,
    /// Tagged components, shortest history first.
    pub components: Vec<ComponentConfig>,
    /// Useful-counter graceful-reset period (updates).
    pub u_reset_period: u64,
}

impl TageConfig {
    /// The paper's configuration: 1 base + 12 tagged components,
    /// ~15K entries total, histories from 4 to 640 bits.
    pub fn hpca16() -> TageConfig {
        // 8K base + (4×1K + 6×512 + 2×256) tagged = 15.9K entries total.
        let lens = [4usize, 6, 10, 16, 25, 40, 64, 101, 160, 254, 403, 640];
        let log_sizes = [10u32, 10, 10, 10, 9, 9, 9, 9, 9, 9, 8, 8];
        let tag_bits = [8u32, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13];
        TageConfig {
            log_base_entries: 13,
            components: (0..12)
                .map(|i| ComponentConfig {
                    log_entries: log_sizes[i],
                    tag_bits: tag_bits[i],
                    hist_len: lens[i],
                })
                .collect(),
            u_reset_period: 1 << 18,
        }
    }

    /// Total predictor entries (base + tagged).
    pub fn total_entries(&self) -> usize {
        (1usize << self.log_base_entries)
            + self
                .components
                .iter()
                .map(|c| 1usize << c.log_entries)
                .sum::<usize>()
    }
}

#[derive(Debug, Clone, Copy)]
struct TageEntry {
    tag: u32,
    ctr: SignedCounter,
    useful: SatCounter,
}

#[derive(Debug, Clone)]
struct Component {
    cfg: ComponentConfig,
    entries: Vec<TageEntry>,
    folded_idx: FoldedHistory,
    folded_tag0: FoldedHistory,
    folded_tag1: FoldedHistory,
}

impl Component {
    fn new(cfg: ComponentConfig) -> Component {
        Component {
            cfg,
            entries: vec![
                TageEntry {
                    tag: 0,
                    ctr: SignedCounter::new(3),
                    useful: SatCounter::new(2),
                };
                1 << cfg.log_entries
            ],
            folded_idx: FoldedHistory::new(cfg.hist_len, cfg.log_entries),
            folded_tag0: FoldedHistory::new(cfg.hist_len, cfg.tag_bits),
            folded_tag1: FoldedHistory::new(cfg.hist_len, cfg.tag_bits - 1),
        }
    }

    #[inline]
    fn index(&self, pc: Addr, path: u16) -> usize {
        let h = mix64(pc) ^ self.folded_idx.value() as u64 ^ ((path as u64) << 2);
        (h as usize) & ((1 << self.cfg.log_entries) - 1)
    }

    #[inline]
    fn tag(&self, pc: Addr) -> u32 {
        let t = (mix64(pc ^ 0x5a5a) as u32)
            ^ self.folded_tag0.value()
            ^ (self.folded_tag1.value() << 1);
        t & ((1 << self.cfg.tag_bits) - 1)
    }
}

/// Speculative history state, checkpointed per predicted branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageHistory {
    ghist: GlobalHistory,
    path: u16,
    folds: Vec<(FoldedHistory, FoldedHistory, FoldedHistory)>,
}

/// Maximum tagged components a [`Tage`] may have. Predictions carry
/// per-component indices/tags inline (no heap) at this capacity; the
/// paper's geometry uses 12.
pub const MAX_COMPONENTS: usize = 16;

/// The information recorded at prediction time, needed to train the tables
/// when the branch commits. Stored inline (fixed arrays, no heap): one of
/// these is produced per predicted conditional branch and lives in the ROB
/// until commit, so it sits on the simulator's steady-state path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagePrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Providing tagged component (`None` ⇒ base bimodal provided).
    provider: Option<usize>,
    /// Alternate prediction (next-longest hit, or base).
    alt_taken: bool,
    /// Whether the provider entry was a fresh allocation (weak counter).
    provider_weak: bool,
    /// Live components (slots beyond this are zero).
    n_comps: u8,
    /// Table indices captured at prediction time (per component).
    indices: [u32; MAX_COMPONENTS],
    /// Tags captured at prediction time.
    tags: [u32; MAX_COMPONENTS],
    /// Base table index.
    base_index: usize,
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use regshare_predictors::{Tage, TageConfig};
///
/// let mut tage = Tage::new(TageConfig::hpca16());
/// // A strongly biased branch becomes predictable after training.
/// for _ in 0..64 {
///     let p = tage.predict(0x400000);
///     tage.train(0x400000, &p, true);
///     tage.update_history(true, 0x400000);
/// }
/// let p = tage.predict(0x400000);
/// assert!(p.taken);
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    base: Vec<SignedCounter>,
    comps: Vec<Component>,
    ghist: GlobalHistory,
    path: u16,
    log_base: u32,
    updates: u64,
    u_reset_period: u64,
    /// Deterministic LFSR for allocation randomization.
    lfsr: u32,
    lookups: u64,
    mispredicts_trained: u64,
}

impl Tage {
    /// Creates a predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than [`MAX_COMPONENTS`] tagged
    /// components or a component with `log_entries >= 32` (prediction
    /// indices are carried as `u32`).
    pub fn new(cfg: TageConfig) -> Tage {
        assert!(
            cfg.components.len() <= MAX_COMPONENTS,
            "TAGE geometry exceeds MAX_COMPONENTS"
        );
        assert!(
            cfg.components.iter().all(|c| c.log_entries < 32),
            "TAGE component too large for u32 indices"
        );
        Tage {
            base: vec![SignedCounter::new(2); 1 << cfg.log_base_entries],
            comps: cfg.components.iter().map(|c| Component::new(*c)).collect(),
            ghist: GlobalHistory::new(),
            path: 0,
            log_base: cfg.log_base_entries,
            updates: 0,
            u_reset_period: cfg.u_reset_period,
            lfsr: 0xace1,
            lookups: 0,
            mispredicts_trained: 0,
        }
    }

    #[inline]
    fn base_index(&self, pc: Addr) -> usize {
        (mix64(pc) as usize) & ((1 << self.log_base) - 1)
    }

    #[inline]
    fn rand(&mut self) -> u32 {
        // 16-bit Galois LFSR: deterministic "randomness" for allocation.
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }

    /// Predicts the direction of the conditional branch at `pc` using the
    /// current speculative history.
    pub fn predict(&mut self, pc: Addr) -> TagePrediction {
        self.lookups += 1;
        let base_index = self.base_index(pc);
        let base_taken = self.base[base_index].is_taken();

        let mut indices = [0u32; MAX_COMPONENTS];
        let mut tags = [0u32; MAX_COMPONENTS];
        let mut provider = None;
        let mut alt = None;
        for (i, c) in self.comps.iter().enumerate() {
            let idx = c.index(pc, self.path);
            let tag = c.tag(pc);
            indices[i] = idx as u32;
            tags[i] = tag;
            if c.entries[idx].tag == tag {
                alt = provider;
                provider = Some(i);
            }
        }
        let (taken, alt_taken, provider_weak) = match provider {
            Some(p) => {
                let e = &self.comps[p].entries[indices[p] as usize];
                let alt_taken = match alt {
                    Some(a) => self.comps[a].entries[indices[a] as usize].ctr.is_taken(),
                    None => base_taken,
                };
                // "Weak" provider: newly allocated, low confidence — use alt
                // prediction instead (TAGE's use_alt_on_na, simplified).
                let weak = !e.ctr.is_strong() && e.useful.value() == 0;
                let taken = if weak { alt_taken } else { e.ctr.is_taken() };
                (taken, alt_taken, weak)
            }
            None => (base_taken, base_taken, false),
        };
        TagePrediction {
            taken,
            provider,
            alt_taken,
            provider_weak,
            n_comps: self.comps.len() as u8,
            indices,
            tags,
            base_index,
        }
    }

    /// Pushes the (speculative) outcome of a branch into the history.
    /// Every branch — conditional or not — shifts history, conditionals by
    /// their direction, others by `taken = true`.
    pub fn update_history(&mut self, taken: bool, pc: Addr) {
        for c in &mut self.comps {
            c.folded_idx.push(taken, &self.ghist);
            c.folded_tag0.push(taken, &self.ghist);
            c.folded_tag1.push(taken, &self.ghist);
        }
        self.ghist.push(taken);
        self.path = (self.path << 1) ^ (pc as u16 & 0x7fff);
    }

    /// Snapshots the speculative history (taken when a branch is predicted;
    /// restored on its misprediction).
    pub fn snapshot(&self) -> TageHistory {
        TageHistory {
            ghist: self.ghist,
            path: self.path,
            folds: self
                .comps
                .iter()
                .map(|c| (c.folded_idx, c.folded_tag0, c.folded_tag1))
                .collect(),
        }
    }

    /// [`Tage::snapshot`] into an existing `TageHistory`, reusing its
    /// buffer — the allocation-free path for pooled snapshots (one is taken
    /// per predicted branch, so this sits on the simulator's hot loop).
    pub fn snapshot_into(&self, out: &mut TageHistory) {
        out.ghist = self.ghist;
        out.path = self.path;
        out.folds.clear();
        out.folds.extend(
            self.comps
                .iter()
                .map(|c| (c.folded_idx, c.folded_tag0, c.folded_tag1)),
        );
    }

    /// Restores a speculative-history snapshot.
    pub fn restore(&mut self, snap: &TageHistory) {
        self.ghist = snap.ghist;
        self.path = snap.path;
        for (c, f) in self.comps.iter_mut().zip(&snap.folds) {
            c.folded_idx = f.0;
            c.folded_tag0 = f.1;
            c.folded_tag1 = f.2;
        }
    }

    /// Low bits of the current speculative global history / path, for
    /// building [`regshare_types::HistorySnapshot`]s.
    pub fn history_bits(&self) -> (u64, u16) {
        (self.ghist.low64(), self.path)
    }

    /// Advances a detached history snapshot by one branch outcome, exactly
    /// as [`Tage::update_history`] would advance the live state. Used to
    /// maintain an *architectural* history image at commit, so commit-time
    /// flushes can restore the front-end history without checkpoints.
    pub fn advance_snapshot(&self, snap: &mut TageHistory, taken: bool, pc: Addr) {
        for f in &mut snap.folds {
            f.0.push(taken, &snap.ghist);
            f.1.push(taken, &snap.ghist);
            f.2.push(taken, &snap.ghist);
        }
        snap.ghist.push(taken);
        snap.path = (snap.path << 1) ^ (pc as u16 & 0x7fff);
    }

    /// Trains the predictor with the architectural outcome of a branch,
    /// using the indices/tags captured at prediction time.
    pub fn train(&mut self, _pc: Addr, pred: &TagePrediction, taken: bool) {
        self.updates += 1;
        if self.updates.is_multiple_of(self.u_reset_period) {
            // Graceful useful-counter aging.
            for c in &mut self.comps {
                for e in &mut c.entries {
                    e.useful.decrement();
                }
            }
        }

        let mispredicted = pred.taken != taken;
        if mispredicted {
            self.mispredicts_trained += 1;
        }

        match pred.provider {
            Some(p) => {
                let e = &mut self.comps[p].entries[pred.indices[p] as usize];
                e.ctr.update(taken);
                // Useful bit: provider differed from alternate and was right.
                let provider_dir_taken = {
                    // After the counter update the direction may have flipped;
                    // usefulness is judged on the prediction actually made.
                    pred.taken
                };
                if !pred.provider_weak && provider_dir_taken != pred.alt_taken {
                    if provider_dir_taken == taken {
                        e.useful.increment();
                    } else {
                        e.useful.decrement();
                    }
                }
                // If the weak provider was overridden by alt, still train base
                // when base provided the alt.
                if pred.provider_weak {
                    self.base[pred.base_index].update(taken);
                }
            }
            None => {
                self.base[pred.base_index].update(taken);
            }
        }

        // Allocate a new entry in a longer-history component on misprediction.
        if mispredicted {
            let start = pred.provider.map_or(0, |p| p + 1);
            if start < self.comps.len() {
                // Pick among components with u == 0, preferring shorter
                // histories with some randomization (classic TAGE policy).
                let r = self.rand();
                let mut allocated = false;
                let mut i = start + (r as usize % 2).min(self.comps.len() - 1 - start);
                while i < self.comps.len() {
                    let idx = pred.indices[i] as usize;
                    let e = &mut self.comps[i].entries[idx];
                    if e.useful.value() == 0 {
                        e.tag = pred.tags[i];
                        e.ctr.set(if taken { 0 } else { -1 });
                        allocated = true;
                        break;
                    }
                    i += 1;
                }
                if !allocated {
                    // Decay useful counters on the allocation path.
                    for i in start..self.comps.len() {
                        let idx = pred.indices[i] as usize;
                        self.comps[i].entries[idx].useful.decrement();
                    }
                }
            }
        }
    }

    /// (lookups, trained mispredictions) observed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts_trained)
    }
}

regshare_types::impl_snap!(TageEntry { tag, ctr, useful });
regshare_types::impl_snap!(TageHistory { ghist, path, folds });
regshare_types::impl_snap!(TagePrediction {
    taken,
    provider,
    alt_taken,
    provider_weak,
    n_comps,
    indices,
    tags,
    base_index
});

impl regshare_types::snapshot::Snapshot for Tage {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.base.encode(w);
        w.put_len(self.comps.len());
        for c in &self.comps {
            c.entries.encode(w);
            c.folded_idx.encode(w);
            c.folded_tag0.encode(w);
            c.folded_tag1.encode(w);
        }
        self.ghist.encode(w);
        w.put_u16(self.path);
        w.put_u64(self.updates);
        w.put_u32(self.lfsr);
        w.put_u64(self.lookups);
        w.put_u64(self.mispredicts_trained);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let base: Vec<SignedCounter> = Snap::decode(r)?;
        if base.len() != self.base.len() {
            return Err(r.corrupt("Tage base table size"));
        }
        self.base = base;
        let n = r.get_len()?;
        if n != self.comps.len() {
            return Err(r.corrupt("Tage component count"));
        }
        for c in &mut self.comps {
            let entries: Vec<TageEntry> = Snap::decode(r)?;
            if entries.len() != c.entries.len() {
                return Err(r.corrupt("Tage component table size"));
            }
            c.entries = entries;
            c.folded_idx = Snap::decode(r)?;
            c.folded_tag0 = Snap::decode(r)?;
            c.folded_tag1 = Snap::decode(r)?;
        }
        self.ghist = Snap::decode(r)?;
        self.path = r.get_u16()?;
        self.updates = r.get_u64()?;
        self.lfsr = r.get_u32()?;
        self.lookups = r.get_u64()?;
        self.mispredicts_trained = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TageConfig {
        TageConfig {
            log_base_entries: 8,
            components: vec![
                ComponentConfig {
                    log_entries: 7,
                    tag_bits: 8,
                    hist_len: 4,
                },
                ComponentConfig {
                    log_entries: 7,
                    tag_bits: 9,
                    hist_len: 12,
                },
                ComponentConfig {
                    log_entries: 7,
                    tag_bits: 10,
                    hist_len: 32,
                },
            ],
            u_reset_period: 1 << 14,
        }
    }

    /// Run a closure producing (pc, outcome) pairs through the predictor and
    /// return the misprediction rate over the last half of the run.
    fn mispredict_rate(mut gen: impl FnMut(usize) -> (Addr, bool), steps: usize) -> f64 {
        let mut tage = Tage::new(small_cfg());
        let mut mis = 0usize;
        let mut counted = 0usize;
        for i in 0..steps {
            let (pc, outcome) = gen(i);
            let p = tage.predict(pc);
            if i >= steps / 2 {
                counted += 1;
                if p.taken != outcome {
                    mis += 1;
                }
            }
            tage.train(pc, &p, outcome);
            tage.update_history(outcome, pc);
        }
        mis as f64 / counted as f64
    }

    #[test]
    fn biased_branch_is_learned() {
        let rate = mispredict_rate(|_| (0x400100, true), 2000);
        assert!(rate < 0.01, "biased branch mispredict rate {rate}");
    }

    #[test]
    fn short_pattern_is_learned() {
        // Period-4 pattern requires history.
        let pat = [true, true, false, true];
        let rate = mispredict_rate(|i| (0x400200, pat[i % 4]), 4000);
        assert!(rate < 0.05, "pattern mispredict rate {rate}");
    }

    #[test]
    fn history_correlated_branch_is_learned() {
        // Branch B's outcome equals branch A's previous outcome: only
        // history-indexed components can capture this.
        let mut a_prev = false;
        let mut tage = Tage::new(small_cfg());
        let mut mis = 0;
        let mut total = 0;
        let mut x = 99u64;
        for i in 0..6000 {
            // Branch A: pseudo-random.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a_out = x & 1 == 1;
            let pa = tage.predict(0x400300);
            tage.train(0x400300, &pa, a_out);
            tage.update_history(a_out, 0x400300);
            // Branch B: copies A.
            let b_out = a_prev;
            let pb = tage.predict(0x400400);
            if i > 3000 {
                total += 1;
                if pb.taken != b_out {
                    mis += 1;
                }
            }
            tage.train(0x400400, &pb, b_out);
            tage.update_history(b_out, 0x400400);
            a_prev = a_out;
        }
        let rate = mis as f64 / total as f64;
        assert!(rate < 0.10, "correlated branch mispredict rate {rate}");
    }

    #[test]
    fn snapshot_restore_round_trips_history() {
        let mut tage = Tage::new(small_cfg());
        for i in 0..100 {
            tage.update_history(i % 3 == 0, 0x400000 + i * 4);
        }
        let snap = tage.snapshot();
        let before = tage.history_bits();
        for i in 0..50 {
            tage.update_history(i % 2 == 0, 0x500000 + i * 4);
        }
        assert_ne!(tage.history_bits(), before);
        tage.restore(&snap);
        assert_eq!(tage.history_bits(), before);
        // Predictions must be identical after restore.
        let p1 = tage.predict(0x400abc);
        tage.restore(&snap);
        let p2 = tage.predict(0x400abc);
        assert_eq!(p1, p2);
    }

    #[test]
    fn hpca16_geometry_is_about_15k_entries() {
        let cfg = TageConfig::hpca16();
        let total = cfg.total_entries();
        assert!((14_000..=17_000).contains(&total), "total entries {total}");
        assert_eq!(cfg.components.len(), 12);
        assert_eq!(cfg.components.last().unwrap().hist_len, 640);
    }
}

//! Micro-op definitions: static operations and decoded dynamic micro-ops.

use regshare_types::{Addr, ArchReg, HistorySnapshot, RegClass, SeqNum};

/// Integer ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `src2 & 63`.
    Shl,
    /// Logical shift right by `src2 & 63`.
    Shr,
}

impl AluOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
            AluOp::Shr => a >> (b & 63),
        }
    }
}

/// Branch condition selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `src1 == src2`
    Eq,
    /// `src1 != src2`
    Ne,
    /// `src1 < src2` (unsigned)
    Lt,
    /// `src1 >= src2` (unsigned)
    Ge,
    /// `src1 & 1 != 0`
    BitSet,
}

impl Cond {
    /// Evaluates the condition.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::BitSet => a & 1 != 0,
        }
    }
}

/// A register or immediate second operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a register.
    Reg(ArchReg),
    /// Use an immediate value.
    Imm(u64),
}

/// Width of a register-to-register move, governing move-elimination
/// eligibility exactly as on x86_64 (§2.1 of the paper):
/// 32/64-bit moves fully overwrite the destination and are eliminable;
/// 8/16-bit moves merge into the old destination value (extra dependency)
/// and are not eliminable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoveWidth {
    /// 8-bit merge move (not eliminable).
    W8,
    /// 16-bit merge move (not eliminable).
    W16,
    /// 32-bit move with zero extension (eliminable).
    W32,
    /// Full 64-bit move (eliminable).
    W64,
}

impl MoveWidth {
    /// Whether a move of this width fully overwrites its destination and is
    /// therefore a move-elimination candidate.
    #[inline]
    pub fn is_eliminable(self) -> bool {
        matches!(self, MoveWidth::W32 | MoveWidth::W64)
    }

    /// Whether the move merges into (i.e. also reads) its old destination.
    #[inline]
    pub fn is_merge(self) -> bool {
        !self.is_eliminable()
    }

    /// Byte mask kept from the source.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            MoveWidth::W8 => 0xff,
            MoveWidth::W16 => 0xffff,
            MoveWidth::W32 => 0xffff_ffff,
            MoveWidth::W64 => u64::MAX,
        }
    }
}

/// A static operation in a [`crate::program::Program`].
///
/// Branch/jump/call targets are static instruction indices within the
/// program; the interpreter and front-end convert them to PCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Integer ALU operation, 1-cycle class.
    IntAlu {
        /// Operation selector.
        op: AluOp,
        /// Destination register (INT).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Integer multiply (3-cycle pipelined class).
    IntMul {
        /// Destination register (INT).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: Operand,
    },
    /// Integer divide (25-cycle unpipelined class).
    IntDiv {
        /// Destination register (INT).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: Operand,
    },
    /// FP add/sub class (3-cycle pipelined). Values are deterministic u64
    /// dataflow tokens, not IEEE arithmetic — only dependencies and timing
    /// matter to the experiments.
    FpAdd {
        /// Destination register (FP).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: ArchReg,
    },
    /// FP multiply (5-cycle pipelined class).
    FpMul {
        /// Destination register (FP).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: ArchReg,
    },
    /// FP divide (10-cycle unpipelined class).
    FpDiv {
        /// Destination register (FP).
        dst: ArchReg,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: ArchReg,
    },
    /// Integer register-to-register move. Width decides ME eligibility.
    MovInt {
        /// Destination register (INT).
        dst: ArchReg,
        /// Source register (INT).
        src: ArchReg,
        /// Move width.
        width: MoveWidth,
    },
    /// FP register-to-register move (eliminable when FP ME is enabled).
    MovFp {
        /// Destination register (FP).
        dst: ArchReg,
        /// Source register (FP).
        src: ArchReg,
    },
    /// Load an immediate into a register (1-cycle ALU class).
    LoadImm {
        /// Destination register.
        dst: ArchReg,
        /// Immediate value.
        imm: u64,
    },
    /// Memory load: `dst = mem[base + offset]`, `size` bytes, zero-extended.
    Load {
        /// Destination register (INT or FP).
        dst: ArchReg,
        /// Base address register (INT).
        base: ArchReg,
        /// Signed displacement.
        offset: i64,
        /// Access size in bytes (1, 2, 4, 8); address must be size-aligned.
        size: u8,
    },
    /// Memory store: `mem[base + offset] = data`, `size` bytes.
    Store {
        /// Data register (INT or FP).
        data: ArchReg,
        /// Base address register (INT).
        base: ArchReg,
        /// Signed displacement.
        offset: i64,
        /// Access size in bytes (1, 2, 4, 8); address must be size-aligned.
        size: u8,
    },
    /// Conditional branch to `target` when the condition holds.
    CondBranch {
        /// Condition selector.
        cond: Cond,
        /// First source.
        src1: ArchReg,
        /// Second source.
        src2: Operand,
        /// Static index of the taken target.
        target: u32,
    },
    /// Unconditional direct jump.
    Jump {
        /// Static index of the target.
        target: u32,
    },
    /// Direct call; pushes the return index on the return stack.
    Call {
        /// Static index of the callee.
        target: u32,
    },
    /// Return to the most recent call site.
    Ret,
    /// No-operation (1-cycle ALU class, no registers).
    Nop,
    /// Stops the machine; subsequent steps yield `Nop`s.
    Halt,
}

/// Functional-unit class of a micro-op, used by the issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// 1-cycle integer ALU (also moves executed on an ALU, branches).
    IntAlu,
    /// 3-cycle pipelined integer multiply.
    IntMul,
    /// 25-cycle unpipelined integer divide.
    IntDiv,
    /// 3-cycle pipelined FP add.
    FpAdd,
    /// 5-cycle pipelined FP multiply.
    FpMul,
    /// 10-cycle unpipelined FP divide.
    FpDiv,
    /// Load port (AGU + cache access).
    Load,
    /// Store port (AGU).
    Store,
}

/// Kind of a branch, for predictor bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Direct,
    /// Direct call (pushes the RAS).
    Call,
    /// Return (pops the RAS).
    Return,
}

/// Resolved control-flow outcome of a branch micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// What sort of branch this is.
    pub kind: BranchKind,
    /// Whether the branch was architecturally taken.
    pub taken: bool,
    /// Static index of the next instruction actually executed.
    pub next_sidx: u32,
    /// Static index of the fall-through instruction.
    pub fallthrough_sidx: u32,
}

/// A memory reference carried by a load or store micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Resolved virtual address.
    pub addr: Addr,
    /// Access size in bytes.
    pub size: u8,
    /// Whether this is a store.
    pub is_store: bool,
}

impl MemRef {
    /// Whether this access overlaps `other` (any shared byte).
    #[inline]
    pub fn overlaps(&self, other: &MemRef) -> bool {
        self.addr < other.addr + other.size as u64 && other.addr < self.addr + self.size as u64
    }

    /// Whether `self` is fully contained within `other`.
    #[inline]
    pub fn contained_in(&self, other: &MemRef) -> bool {
        self.addr >= other.addr && self.addr + self.size as u64 <= other.addr + other.size as u64
    }
}

/// Simplified micro-op kind used by the pipeline for policy decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UopKind {
    /// Integer ALU / immediate load / nop.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// FP add class.
    FpAdd,
    /// FP multiply class.
    FpMul,
    /// FP divide class.
    FpDiv,
    /// Register move (candidate for move elimination depending on width).
    Move {
        /// Width class of the move.
        width: MoveWidth,
        /// Register class (INT moves vs FP moves).
        class: RegClass,
    },
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Any branch kind.
    Branch(BranchKind),
}

impl UopKind {
    /// The functional-unit class this micro-op issues to.
    #[inline]
    pub fn exec_class(self) -> ExecClass {
        match self {
            UopKind::IntAlu | UopKind::Branch(_) => ExecClass::IntAlu,
            UopKind::IntMul => ExecClass::IntMul,
            UopKind::IntDiv => ExecClass::IntDiv,
            UopKind::FpAdd => ExecClass::FpAdd,
            UopKind::FpMul => ExecClass::FpMul,
            UopKind::FpDiv => ExecClass::FpDiv,
            UopKind::Move {
                class: RegClass::Int,
                ..
            } => ExecClass::IntAlu,
            UopKind::Move {
                class: RegClass::Fp,
                ..
            } => ExecClass::FpAdd,
            UopKind::Load => ExecClass::Load,
            UopKind::Store => ExecClass::Store,
        }
    }

    /// Whether this is a register move that move elimination may target
    /// (width permitting; the ME policy also checks configuration).
    #[inline]
    pub fn eliminable_move(self) -> bool {
        matches!(self, UopKind::Move { width, .. } if width.is_eliminable())
    }
}

/// A decoded dynamic micro-op, produced by the interpreter and consumed by
/// the pipeline. Carries resolved oracle values so Speculative Memory
/// Bypassing validation can compare real data.
#[derive(Debug, Clone)]
pub struct DynUop {
    /// Program-order sequence number (the paper's CSN on the correct path).
    /// Wrong-path micro-ops get sequence numbers above the fork point but
    /// are flagged via [`DynUop::wrong_path`].
    pub seq: SeqNum,
    /// Static instruction index.
    pub sidx: u32,
    /// Program counter.
    pub pc: Addr,
    /// Kind, for pipeline policy.
    pub kind: UopKind,
    /// Source architectural registers (up to 3: e.g. store base + data, or
    /// merge-move old destination).
    pub srcs: [Option<ArchReg>; 3],
    /// Destination architectural register, if any.
    pub dst: Option<ArchReg>,
    /// Memory reference, for loads/stores.
    pub mem: Option<MemRef>,
    /// Oracle result value (register result, or loaded value).
    pub result: u64,
    /// Branch outcome, for branches.
    pub branch: Option<BranchOutcome>,
    /// True when fetched down a mispredicted path.
    pub wrong_path: bool,
    /// Front-end history snapshot at fetch, for history-indexed predictors.
    pub history: HistorySnapshot,
}

impl DynUop {
    /// Iterator over the present source registers.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Whether the µ-op is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, UopKind::Load)
    }

    /// Whether the µ-op is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, UopKind::Store)
    }

    /// Whether the µ-op is any branch.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, UopKind::Branch(_))
    }

    /// The data source register of a store, if this is a store.
    ///
    /// By convention stores place the base register in `srcs[0]` and the
    /// data register in `srcs[1]`.
    #[inline]
    pub fn store_data_reg(&self) -> Option<ArchReg> {
        if self.is_store() {
            self.srcs[1]
        } else {
            None
        }
    }
}

/// Implements [`Snap`](regshare_types::snapshot::Snap) for a fieldless
/// enum (or one whose payloads are listed per variant would need a hand
/// impl) via a stable `u8` tag table.
macro_rules! snap_enum {
    ($ty:ty, $what:literal, { $($tag:literal => $variant:path),* $(,)? }) => {
        impl regshare_types::snapshot::Snap for $ty {
            fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
                let tag: u8 = match self {
                    $( $variant => $tag, )*
                };
                w.put_u8(tag);
            }
            fn decode(
                r: &mut regshare_types::snapshot::SnapReader<'_>,
            ) -> Result<Self, regshare_types::snapshot::SnapError> {
                match r.get_u8()? {
                    $( $tag => Ok($variant), )*
                    _ => Err(r.corrupt($what)),
                }
            }
        }
    };
}

snap_enum!(AluOp, "AluOp", {
    0 => AluOp::Add,
    1 => AluOp::Sub,
    2 => AluOp::And,
    3 => AluOp::Or,
    4 => AluOp::Xor,
    5 => AluOp::Shl,
    6 => AluOp::Shr,
});

snap_enum!(Cond, "Cond", {
    0 => Cond::Eq,
    1 => Cond::Ne,
    2 => Cond::Lt,
    3 => Cond::Ge,
    4 => Cond::BitSet,
});

snap_enum!(MoveWidth, "MoveWidth", {
    0 => MoveWidth::W8,
    1 => MoveWidth::W16,
    2 => MoveWidth::W32,
    3 => MoveWidth::W64,
});

snap_enum!(BranchKind, "BranchKind", {
    0 => BranchKind::Conditional,
    1 => BranchKind::Direct,
    2 => BranchKind::Call,
    3 => BranchKind::Return,
});

snap_enum!(ExecClass, "ExecClass", {
    0 => ExecClass::IntAlu,
    1 => ExecClass::IntMul,
    2 => ExecClass::IntDiv,
    3 => ExecClass::FpAdd,
    4 => ExecClass::FpMul,
    5 => ExecClass::FpDiv,
    6 => ExecClass::Load,
    7 => ExecClass::Store,
});

impl regshare_types::snapshot::Snap for Operand {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        match self {
            Operand::Reg(r) => {
                w.put_u8(0);
                r.encode(w);
            }
            Operand::Imm(v) => {
                w.put_u8(1);
                w.put_u64(*v);
            }
        }
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(Operand::Reg(ArchReg::decode(r)?)),
            1 => Ok(Operand::Imm(r.get_u64()?)),
            _ => Err(r.corrupt("Operand")),
        }
    }
}

impl regshare_types::snapshot::Snap for UopKind {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        match self {
            UopKind::IntAlu => w.put_u8(0),
            UopKind::IntMul => w.put_u8(1),
            UopKind::IntDiv => w.put_u8(2),
            UopKind::FpAdd => w.put_u8(3),
            UopKind::FpMul => w.put_u8(4),
            UopKind::FpDiv => w.put_u8(5),
            UopKind::Move { width, class } => {
                w.put_u8(6);
                width.encode(w);
                class.encode(w);
            }
            UopKind::Load => w.put_u8(7),
            UopKind::Store => w.put_u8(8),
            UopKind::Branch(kind) => {
                w.put_u8(9);
                kind.encode(w);
            }
        }
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(UopKind::IntAlu),
            1 => Ok(UopKind::IntMul),
            2 => Ok(UopKind::IntDiv),
            3 => Ok(UopKind::FpAdd),
            4 => Ok(UopKind::FpMul),
            5 => Ok(UopKind::FpDiv),
            6 => Ok(UopKind::Move {
                width: MoveWidth::decode(r)?,
                class: RegClass::decode(r)?,
            }),
            7 => Ok(UopKind::Load),
            8 => Ok(UopKind::Store),
            9 => Ok(UopKind::Branch(BranchKind::decode(r)?)),
            _ => Err(r.corrupt("UopKind")),
        }
    }
}

regshare_types::impl_snap!(BranchOutcome {
    kind,
    taken,
    next_sidx,
    fallthrough_sidx
});
regshare_types::impl_snap!(MemRef {
    addr,
    size,
    is_store
});
regshare_types::impl_snap!(DynUop {
    seq,
    sidx,
    pc,
    kind,
    srcs,
    dst,
    mem,
    result,
    branch,
    wrong_path,
    history,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(3, 5), u64::MAX - 1);
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift amount masked
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(4, 4));
        assert!(Cond::Ne.eval(4, 5));
        assert!(Cond::Lt.eval(4, 5));
        assert!(Cond::Ge.eval(5, 5));
        assert!(Cond::BitSet.eval(3, 0));
        assert!(!Cond::BitSet.eval(2, 0));
    }

    #[test]
    fn move_width_rules_match_x86() {
        assert!(MoveWidth::W64.is_eliminable());
        assert!(MoveWidth::W32.is_eliminable());
        assert!(!MoveWidth::W16.is_eliminable());
        assert!(!MoveWidth::W8.is_eliminable());
        assert!(MoveWidth::W8.is_merge());
        assert_eq!(MoveWidth::W32.mask(), 0xffff_ffff);
    }

    #[test]
    fn memref_overlap_and_containment() {
        let a = MemRef {
            addr: 100,
            size: 8,
            is_store: true,
        };
        let b = MemRef {
            addr: 104,
            size: 4,
            is_store: false,
        };
        let c = MemRef {
            addr: 108,
            size: 4,
            is_store: false,
        };
        assert!(b.overlaps(&a));
        assert!(b.contained_in(&a));
        assert!(!c.overlaps(&a));
        assert!(!a.contained_in(&b));
    }

    #[test]
    fn exec_class_mapping() {
        assert_eq!(UopKind::Load.exec_class(), ExecClass::Load);
        assert_eq!(
            UopKind::Branch(BranchKind::Conditional).exec_class(),
            ExecClass::IntAlu
        );
        assert_eq!(
            UopKind::Move {
                width: MoveWidth::W64,
                class: RegClass::Fp
            }
            .exec_class(),
            ExecClass::FpAdd
        );
        assert!(UopKind::Move {
            width: MoveWidth::W64,
            class: RegClass::Int
        }
        .eliminable_move());
        assert!(!UopKind::Move {
            width: MoveWidth::W8,
            class: RegClass::Int
        }
        .eliminable_move());
    }
}

//! **Figure 4**: IPC, memory traps and false memory dependencies of every
//! workload on the baseline (no ME, no SMB) Table 1 machine.
//!
//! Paper shape: IPC spread roughly 0.5–3.5; trap counts spanning orders of
//! magnitude (log scale); false dependencies up to ~1M per 100M µ-ops in
//! the worst benchmarks.
//!
//! The matrix is the `fig4_baseline` preset scenario; this target only adds
//! the figure's extra stat columns on top of the scenario's grid.

use regshare_bench::{preset, Table};
use regshare_types::stats::geomean;

fn main() {
    let scenario = preset("fig4_baseline").expect("built-in scenario");
    let window = scenario.options.window();
    let grid = scenario
        .to_sweep()
        .expect("preset validates")
        .run()
        .expect("sweep completes");
    let mut t = Table::new(vec![
        "bench",
        "class",
        "ipc",
        "mem_traps",
        "false_deps",
        "branch_mpki",
        "bypassable_loads",
    ]);
    let mut ipcs = Vec::new();
    for row in grid.rows() {
        let m = row.get("base").expect("declared label");
        ipcs.push(m.ipc());
        t.row(vec![
            row.workload().name.clone(),
            format!("{:?}", row.workload().class),
            format!("{:.3}", m.ipc()),
            format!("{}", m.stats.memory_traps),
            format!("{}", m.stats.false_dependencies),
            format!("{:.2}", m.stats.branch_mpki()),
            format!("{}", m.stats.loads),
        ]);
    }
    t.footer(format!("geomean IPC: {:.3}", geomean(&ipcs).unwrap_or(0.0)));
    println!(
        "# Figure 4: baseline characterization ({} µ-ops measured/bench)\n",
        window.measure
    );
    t.print();
}

//! The Data Dependency Table (DDT, §3.1 / Figure 1).
//!
//! A commit-side table indexed by data virtual address. A committing store
//! writes the CSN of the instruction that produced its data; a committing
//! load reads the entry to discover its producer and compute the
//! Instruction Distance, then (for load-load bypassing) writes its *own*
//! CSN back so later redundant loads can bypass from it.

use regshare_types::hasher::{mix64, FastMap};
use regshare_types::{Addr, SeqNum};

/// DDT geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdtConfig {
    /// Number of entries; 0 = unlimited (exact, address-keyed map).
    pub entries: usize,
    /// Tag bits for finite configurations.
    pub tag_bits: u32,
}

impl DdtConfig {
    /// The paper's large first design point: 16K entries, 14-bit tags
    /// (~156KB with full VAs; our storage report uses the tagged layout).
    pub fn base16k() -> DdtConfig {
        DdtConfig {
            entries: 16 * 1024,
            tag_bits: 14,
        }
    }

    /// The paper's cost-optimized point: 1K entries, 5-bit tags (~8.6KB).
    pub fn opt1k() -> DdtConfig {
        DdtConfig {
            entries: 1024,
            tag_bits: 5,
        }
    }

    /// Unlimited oracle DDT.
    pub fn unlimited() -> DdtConfig {
        DdtConfig {
            entries: 0,
            tag_bits: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DdtEntry {
    valid: bool,
    tag: u32,
    csn: SeqNum,
}

/// The Data Dependency Table. See the module docs and [`DdtConfig`].
///
/// # Examples
///
/// ```
/// use regshare_distance::{Ddt, DdtConfig};
/// use regshare_types::SeqNum;
///
/// let mut ddt = Ddt::new(DdtConfig::opt1k());
/// ddt.store_commit(0x8000, SeqNum(3)); // store of data produced by #3
/// assert_eq!(ddt.load_lookup(0x8000), Some(SeqNum(3)));
/// ```
#[derive(Debug)]
pub struct Ddt {
    cfg: DdtConfig,
    table: Vec<DdtEntry>,
    exact: FastMap<Addr, SeqNum>,
    stores_recorded: u64,
    load_hits: u64,
    load_misses: u64,
}

impl Ddt {
    /// Builds a DDT.
    pub fn new(cfg: DdtConfig) -> Ddt {
        Ddt {
            table: vec![DdtEntry::default(); cfg.entries],
            exact: FastMap::default(),
            cfg,
            stores_recorded: 0,
            load_hits: 0,
            load_misses: 0,
        }
    }

    #[inline]
    fn index_and_tag(&self, addr: Addr) -> (usize, u32) {
        // Word-granular address key: accesses to the same 8-byte word pair up.
        let h = mix64(addr >> 3);
        (
            (h as usize) % self.table.len(),
            ((h >> 32) as u32) & ((1 << self.cfg.tag_bits) - 1),
        )
    }

    /// A committing store (or, for load-load pairs, a committing load)
    /// deposits its producer CSN for address `addr`.
    pub fn store_commit(&mut self, addr: Addr, producer_csn: SeqNum) {
        self.stores_recorded += 1;
        if self.cfg.entries == 0 {
            self.exact.insert(addr >> 3, producer_csn);
            return;
        }
        let (idx, tag) = self.index_and_tag(addr);
        self.table[idx] = DdtEntry {
            valid: true,
            tag,
            csn: producer_csn,
        };
    }

    /// A committing load reads the producer CSN for address `addr`.
    pub fn load_lookup(&mut self, addr: Addr) -> Option<SeqNum> {
        let res = if self.cfg.entries == 0 {
            self.exact.get(&(addr >> 3)).copied()
        } else {
            let (idx, tag) = self.index_and_tag(addr);
            let e = self.table[idx];
            if e.valid && e.tag == tag {
                Some(e.csn)
            } else {
                None
            }
        };
        if res.is_some() {
            self.load_hits += 1;
        } else {
            self.load_misses += 1;
        }
        res
    }

    /// (stores recorded, load hits, load misses).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.stores_recorded, self.load_hits, self.load_misses)
    }

    /// Storage bits (finite configurations; the unlimited DDT reports 0 as
    /// it is an oracle).
    pub fn storage_bits(&self) -> usize {
        // Tagged layout: valid + tag + 8-bit distance-source CSN field.
        self.cfg.entries * (1 + self.cfg.tag_bits as usize + 64)
    }
}

regshare_types::impl_snap!(DdtEntry { valid, tag, csn });

impl regshare_types::snapshot::Snapshot for Ddt {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.table.encode(w);
        regshare_types::snapshot::encode_map_sorted(&self.exact, w);
        w.put_u64(self.stores_recorded);
        w.put_u64(self.load_hits);
        w.put_u64(self.load_misses);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let table: Vec<DdtEntry> = Snap::decode(r)?;
        if table.len() != self.table.len() {
            return Err(r.corrupt("Ddt table size"));
        }
        self.table = table;
        self.exact = regshare_types::snapshot::decode_map(r)?;
        self.stores_recorded = r.get_u64()?;
        self.load_hits = r.get_u64()?;
        self.load_misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliasing_pointers_find_last_producer() {
        // Figure 1: two stores to the same VA through different pointers;
        // the load finds the CSN of the *second* store's producer.
        let mut ddt = Ddt::new(DdtConfig::base16k());
        ddt.store_commit(0x9000, SeqNum(0)); // store3's producer add1
        ddt.store_commit(0x9000, SeqNum(1)); // store4's producer sub2
        assert_eq!(ddt.load_lookup(0x9000), Some(SeqNum(1)));
    }

    #[test]
    fn load_load_chaining() {
        let mut ddt = Ddt::new(DdtConfig::base16k());
        ddt.store_commit(0xa000, SeqNum(5));
        // load commits: reads 5, then deposits its own CSN 9.
        assert_eq!(ddt.load_lookup(0xa000), Some(SeqNum(5)));
        ddt.store_commit(0xa000, SeqNum(9));
        assert_eq!(ddt.load_lookup(0xa000), Some(SeqNum(9)));
    }

    #[test]
    fn unlimited_has_no_aliasing() {
        let mut ddt = Ddt::new(DdtConfig::unlimited());
        for i in 0..10_000u64 {
            ddt.store_commit(0x10000 + i * 8, SeqNum(i));
        }
        for i in 0..10_000u64 {
            assert_eq!(ddt.load_lookup(0x10000 + i * 8), Some(SeqNum(i)));
        }
    }

    #[test]
    fn finite_table_can_alias_but_tags_filter() {
        let mut ddt = Ddt::new(DdtConfig {
            entries: 4,
            tag_bits: 8,
        });
        ddt.store_commit(0x1000, SeqNum(1));
        // A lookup at a different address either misses (tag filter) or, on
        // an unlucky index+tag collision, returns a wrong CSN — that is the
        // nature of the finite DDT. With 8-bit tags and 4 entries, check a
        // specific non-colliding address misses.
        let mut missed = false;
        for probe in [0x2000u64, 0x3000, 0x4000, 0x5000] {
            if ddt.load_lookup(probe).is_none() {
                missed = true;
            }
        }
        assert!(missed, "tag filtering never rejected any probe");
    }

    #[test]
    fn word_granularity_pairs_subword_accesses() {
        let mut ddt = Ddt::new(DdtConfig::base16k());
        ddt.store_commit(0xb000, SeqNum(3));
        // A 4-byte load of the same word still finds the pair.
        assert_eq!(ddt.load_lookup(0xb004 & !7), Some(SeqNum(3)));
    }

    #[test]
    fn storage_scale_matches_paper_order() {
        // 16K entries ≈ 156KB with full VAs in the paper; our tagged layout
        // is of the same order.
        let big = Ddt::new(DdtConfig::base16k()).storage_bits() / 8 / 1024;
        assert!(big >= 100, "16K DDT too small: {big}KB");
        let small = Ddt::new(DdtConfig::opt1k()).storage_bits() / 8 / 1024;
        assert!(small <= 10, "1K DDT too big: {small}KB");
    }
}

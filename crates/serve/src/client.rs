//! A small synchronous client for the daemon protocol — what the
//! `serve --client` mode and the end-to-end tests use.

use crate::engine::Format;
use crate::protocol::{read_reply, write_run, Reply};
use crate::server::is_unix_addr;
use std::io::{BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// One connection to a daemon. Requests are serial per connection; open
/// several connections for parallelism.
pub struct Connection {
    reader: BufReader<Stream>,
    writer: Stream,
}

fn connect_once(addr: &str) -> std::io::Result<(Stream, Stream)> {
    if is_unix_addr(addr) {
        #[cfg(unix)]
        {
            let s = UnixStream::connect(addr)?;
            let r = s.try_clone()?;
            return Ok((Stream::Unix(r), Stream::Unix(s)));
        }
        #[cfg(not(unix))]
        return Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "unix socket paths are not supported on this platform",
        ));
    }
    let s = TcpStream::connect(addr)?;
    let r = s.try_clone()?;
    Ok((Stream::Tcp(r), Stream::Tcp(s)))
}

impl Connection {
    /// Connects to `addr` (TCP `host:port`, or a Unix socket path —
    /// anything containing `/`). `retries` extra attempts are made 100 ms
    /// apart, so a client started alongside the daemon can wait for the
    /// socket to come up.
    pub fn connect(addr: &str, retries: u32) -> std::io::Result<Connection> {
        let mut attempt = 0;
        loop {
            match connect_once(addr) {
                Ok((r, w)) => {
                    return Ok(Connection {
                        reader: BufReader::new(r),
                        writer: w,
                    })
                }
                Err(e) if attempt < retries => {
                    let _ = e;
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits a scenario (in `.scenario` text form) and reads the
    /// reply. The outer `Err` is transport failure; the inner
    /// `Err(line)` is a server-reported error such as
    /// `busy: server is at capacity ...`.
    pub fn run(
        &mut self,
        scenario_text: &str,
        format: Format,
    ) -> std::io::Result<Result<Reply, String>> {
        write_run(&mut self.writer, format, scenario_text)?;
        read_reply(&mut self.reader)
    }

    fn command(&mut self, cmd: &str) -> std::io::Result<Result<Reply, String>> {
        writeln!(self.writer, "{cmd}")?;
        self.writer.flush()?;
        read_reply(&mut self.reader)
    }

    /// Liveness probe; replies `pong`.
    pub fn ping(&mut self) -> std::io::Result<Result<Reply, String>> {
        self.command("ping")
    }

    /// Engine counters, one `name value` per line.
    pub fn stats(&mut self) -> std::io::Result<Result<Reply, String>> {
        self.command("stats")
    }

    /// Asks the daemon to stop (it drains in-flight work first).
    pub fn shutdown(&mut self) -> std::io::Result<Result<Reply, String>> {
        self.command("shutdown")
    }
}

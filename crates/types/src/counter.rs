//! Small saturating counters used by predictors and the ISRB.

/// An `n`-bit saturating up/down counter.
///
/// Used for predictor confidence (4-bit, saturating at 15 per the paper) and
/// for TAGE useful bits. The width is a runtime parameter so experiments can
/// sweep it (the paper's §6.3 counter-width study).
///
/// # Examples
///
/// ```
/// use regshare_types::counter::SatCounter;
/// let mut c = SatCounter::new(4);
/// for _ in 0..20 { c.increment(); }
/// assert_eq!(c.value(), 15);
/// assert!(c.is_saturated());
/// c.reset();
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// Creates a zeroed counter with the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `bits > 31`.
    pub fn new(bits: u32) -> SatCounter {
        assert!(bits > 0 && bits <= 31, "counter width out of range: {bits}");
        SatCounter {
            value: 0,
            max: (1 << bits) - 1,
        }
    }

    /// Creates a counter with an explicit maximum value (inclusive).
    pub fn with_max(max: u32) -> SatCounter {
        SatCounter { value: 0, max }
    }

    /// Current counter value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The saturation value.
    #[inline]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Increments, saturating at the maximum. Returns `true` if the value
    /// changed (i.e. the counter was not already saturated).
    #[inline]
    pub fn increment(&mut self) -> bool {
        if self.value < self.max {
            self.value += 1;
            true
        } else {
            false
        }
    }

    /// Decrements, saturating at zero. Returns `true` if the value changed.
    #[inline]
    pub fn decrement(&mut self) -> bool {
        if self.value > 0 {
            self.value -= 1;
            true
        } else {
            false
        }
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Whether the counter is at its maximum.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max
    }

    /// Sets the counter to an arbitrary value, clamped to the maximum.
    #[inline]
    pub fn set(&mut self, v: u32) {
        self.value = v.min(self.max);
    }
}

/// A signed saturating counter in `[-2^(bits-1), 2^(bits-1) - 1]`, as used by
/// bimodal/TAGE taken/not-taken predictions.
///
/// # Examples
///
/// ```
/// use regshare_types::counter::SignedCounter;
/// let mut c = SignedCounter::new(3); // range [-4, 3]
/// assert!(!c.is_taken());
/// c.update(true);
/// assert!(c.is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedCounter {
    value: i32,
    min: i32,
    max: i32,
}

impl SignedCounter {
    /// Creates a counter of the given width, initialized to the weakly
    /// not-taken value (-1).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 2` or `bits > 31`.
    pub fn new(bits: u32) -> SignedCounter {
        assert!(
            (2..=31).contains(&bits),
            "counter width out of range: {bits}"
        );
        let max = (1 << (bits - 1)) - 1;
        SignedCounter {
            value: -1,
            min: -(max + 1),
            max,
        }
    }

    /// Prediction: `true` (taken) when the value is non-negative.
    #[inline]
    pub fn is_taken(&self) -> bool {
        self.value >= 0
    }

    /// Trains toward `taken`.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.value = (self.value + 1).min(self.max);
        } else {
            self.value = (self.value - 1).max(self.min);
        }
    }

    /// Raw value.
    #[inline]
    pub fn value(&self) -> i32 {
        self.value
    }

    /// Whether the counter is at either extreme (high confidence).
    #[inline]
    pub fn is_strong(&self) -> bool {
        self.value == self.min || self.value == self.max
    }

    /// Sets the raw value, clamped to the representable range.
    #[inline]
    pub fn set(&mut self, v: i32) {
        self.value = v.clamp(self.min, self.max);
    }

    /// Resets to the weak state nearest the current direction.
    #[inline]
    pub fn weaken(&mut self) {
        self.value = if self.value >= 0 { 0 } else { -1 };
    }
}

impl crate::snapshot::Snap for SatCounter {
    fn encode(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u32(self.value);
        w.put_u32(self.max);
    }
    fn decode(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let value = r.get_u32()?;
        let max = r.get_u32()?;
        if value > max {
            return Err(r.corrupt("SatCounter value"));
        }
        Ok(SatCounter { value, max })
    }
}

impl crate::snapshot::Snap for SignedCounter {
    fn encode(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u32(self.value as u32);
        w.put_u32(self.min as u32);
        w.put_u32(self.max as u32);
    }
    fn decode(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let value = r.get_u32()? as i32;
        let min = r.get_u32()? as i32;
        let max = r.get_u32()? as i32;
        if min > max || value < min || value > max {
            return Err(r.corrupt("SignedCounter value"));
        }
        Ok(SignedCounter { value, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_counter_saturates_and_resets() {
        let mut c = SatCounter::new(3);
        assert_eq!(c.max(), 7);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 7);
        assert!(c.is_saturated());
        assert!(!c.increment());
        assert!(c.decrement());
        assert_eq!(c.value(), 6);
        c.reset();
        assert_eq!(c.value(), 0);
        assert!(!c.decrement());
    }

    #[test]
    fn sat_counter_set_clamps() {
        let mut c = SatCounter::new(2);
        c.set(100);
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic]
    fn sat_counter_zero_width_panics() {
        let _ = SatCounter::new(0);
    }

    #[test]
    fn signed_counter_range() {
        let mut c = SignedCounter::new(3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.value(), -4);
        assert!(c.is_strong());
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_taken());
    }

    #[test]
    fn signed_counter_weaken() {
        let mut c = SignedCounter::new(3);
        c.set(3);
        c.weaken();
        assert_eq!(c.value(), 0);
        c.set(-4);
        c.weaken();
        assert_eq!(c.value(), -1);
    }
}

//! Synthetic SPEC-like workload suite.
//!
//! The paper evaluates 18 SPEC INT + 18 SPEC FP Simpoint slices. Those
//! binaries and inputs are not redistributable, so this crate synthesizes a
//! suite of 36 named workloads from parameterized *program motifs* —
//! spill/reload loops, streaming kernels, pointer chases, branchy reducers,
//! x86-style move-heavy call glue, redundant-load chains — compiled into
//! real control-flow graphs for the `regshare-isa` interpreter.
//!
//! What matters for the paper's experiments is workload *structure*:
//!
//! - density of eliminable (32/64-bit) and merge (8/16-bit) moves → ME;
//! - spill/reload pairs at stable distances, redundant load chains, and
//!   history-correlated path lengths → SMB and the distance predictors;
//! - pointer aliasing invisible to PC-indexed predictors → memory traps and
//!   Store Sets false dependencies;
//! - branch predictability and working-set size → baseline IPC spread.
//!
//! Each named profile ([`suite`]) fixes a deterministic seed, so every run
//! of a given workload reproduces the same dynamic stream.
//!
//! # Examples
//!
//! ```
//! use regshare_workloads::{suite, WorkloadClass};
//!
//! let all = suite();
//! assert_eq!(all.len(), 36);
//! let crafty = all.iter().find(|w| w.name == "crafty").unwrap();
//! assert_eq!(crafty.class, WorkloadClass::Int);
//! let program = crafty.build();
//! assert!(program.len() > 50);
//! ```

#![deny(missing_docs)]

pub mod asm;
pub mod fuzz;
pub mod motifs;
pub mod profile;
pub mod rng;

pub use asm::AsmSpec;
pub use profile::{
    by_names, custom, find, mini, names, suite, try_by_names, Workload, WorkloadClass,
    WorkloadProfile, WorkloadSource,
};

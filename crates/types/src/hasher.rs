//! A small, fast, deterministic hasher for simulator tables.
//!
//! The simulator must be bit-reproducible across runs and platforms, so all
//! hash maps and table-index hashes in the workspace use this FxHash-style
//! mixer instead of `std`'s randomly-seeded SipHash.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor mixer (the rustc FxHash constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A deterministic, non-cryptographic [`Hasher`].
///
/// # Examples
///
/// ```
/// use regshare_types::hasher::FastMap;
/// let mut m: FastMap<u64, &str> = FastMap::default();
/// m.insert(42, "line");
/// assert_eq!(m.get(&42), Some(&"line"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` with the deterministic [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` with the deterministic [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

/// Mixes a 64-bit value into a well-distributed 64-bit hash
/// (splitmix64 finalizer). Used for table indexing from PCs/addresses.
///
/// # Examples
///
/// ```
/// use regshare_types::hasher::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(7), mix64(7));
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_deterministic() {
        let h = |x: u64| {
            let mut hh = FastHasher::default();
            hh.write_u64(x);
            hh.finish()
        };
        assert_eq!(h(1234), h(1234));
        assert_ne!(h(1234), h(1235));
    }

    #[test]
    fn byte_writes_match_padding_rules() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_spreads_low_bits() {
        // Consecutive inputs should disagree in many output bits.
        let d = (mix64(100) ^ mix64(101)).count_ones();
        assert!(d > 16, "poor diffusion: {d} differing bits");
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }
}

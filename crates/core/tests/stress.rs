//! Resource-pressure stress tests: shrink every structure far below Table 1
//! sizes and make sure the pipeline still runs correctly (every stall path
//! exercised) with sharing enabled.

use regshare_core::{CoreConfig, Simulator, TrackerKind};
use regshare_refcount::IsrbConfig;
use regshare_workloads::{mini, suite};

fn tiny_machine() -> CoreConfig {
    let mut cfg = CoreConfig::hpca16();
    cfg.rob_entries = 24;
    cfg.iq_entries = 8;
    cfg.lq_entries = 6;
    cfg.sq_entries = 4;
    cfg.pregs_per_class = 48; // 16 architectural + 32 free
    cfg.frontend_width = 2;
    cfg.issue_width = 2;
    cfg.commit_width = 2;
    cfg
}

#[test]
fn tiny_machine_baseline_runs() {
    let program = mini().build();
    let mut sim = Simulator::new(&program, tiny_machine());
    let s = sim.run(30_000);
    assert!(s.ipc() > 0.05, "tiny machine IPC {}", s.ipc());
    sim.audit_registers().expect("audit");
}

#[test]
fn tiny_machine_with_sharing_matches_architecture() {
    let program = mini().build();
    let mut a = Simulator::new(&program, tiny_machine());
    a.run(30_000);
    let mut cfg = tiny_machine().with_me().with_smb();
    cfg.tracker = TrackerKind::Isrb(IsrbConfig {
        entries: 4,
        ..IsrbConfig::hpca16()
    });
    let mut b = Simulator::new(&program, cfg);
    b.run(30_000);
    assert_eq!(a.arch_digest(), b.arch_digest());
    b.audit_registers().expect("audit");
}

#[test]
fn tiny_prf_forces_stalls_but_stays_sound() {
    // 4 free registers per class: rename stalls constantly; with sharing the
    // free list pressure interacts with Keep decisions.
    let mut cfg = CoreConfig::hpca16().with_me().with_smb();
    cfg.pregs_per_class = 20;
    let program = mini().build();
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(20_000);
    assert!(s.committed >= 20_000);
    sim.audit_registers().expect("audit");
}

#[test]
fn lazy_reclaim_under_rob_pressure() {
    // Lazy reclaiming keeps committed entries in a small ROB: the release
    // scan must kick in or the machine deadlocks.
    let mut cfg = CoreConfig::hpca16().with_smb();
    cfg.smb_from_committed = true;
    cfg.rob_entries = 32;
    cfg.pregs_per_class = 40;
    let program = mini().build();
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(30_000);
    assert!(s.committed >= 30_000);
    sim.audit_registers().expect("audit");
}

#[test]
fn single_entry_everything() {
    // The most hostile configuration that can still make progress.
    let mut cfg = tiny_machine().with_me().with_smb();
    cfg.iq_entries = 2;
    cfg.lq_entries = 2;
    cfg.sq_entries = 2;
    cfg.tracker = TrackerKind::Isrb(IsrbConfig {
        entries: 1,
        ..IsrbConfig::hpca16()
    });
    cfg.tracker_rename_ports = 1;
    cfg.tracker_reclaim_ports = 1;
    let program = mini().build();
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(10_000);
    assert!(s.committed >= 10_000);
    sim.audit_registers().expect("audit");
}

#[test]
fn memory_bound_workload_with_sharing_on_small_machine() {
    let wl = suite().into_iter().find(|w| w.name == "mcf").unwrap();
    let program = wl.build();
    let mut cfg = tiny_machine().with_me().with_smb();
    cfg.mem.l1d_mshrs = 2; // heavy MSHR pressure → Retry paths
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(5_000);
    assert!(s.committed >= 5_000);
    sim.audit_registers().expect("audit");
}

#[test]
fn wide_squashes_cut_exactly_the_younger_iq_suffix() {
    // Regression test for the IQ squash path: recovery drops squashed
    // µ-ops from the IQ with one ordered suffix retain (`seq <= branch`),
    // not an O(IQ × squashed) membership scan. A branch-heavy workload on
    // a machine with an oversized IQ makes individual squashes wide; a
    // mis-cut suffix would either issue squashed µ-ops (diverging the
    // architectural digest from the stock configuration) or strand live
    // ones (deadlock → `run` panics).
    let wl = regshare_workloads::by_names(&["astar"]).remove(0);
    let program = wl.build();

    let mut reference = Simulator::new(&program, CoreConfig::hpca16());
    reference.run(40_000);

    let mut cfg = CoreConfig::hpca16().with_me().with_smb();
    cfg.iq_entries = 128; // deep IQ: squashes cut long suffixes
    let mut sim = Simulator::new(&program, cfg);
    let s = sim.run(40_000);

    assert!(
        s.branch_mispredicts > 100,
        "workload not branchy enough to exercise squashes ({} recoveries)",
        s.branch_mispredicts
    );
    assert!(
        s.squashed_uops > 64 * s.branch_mispredicts / 10,
        "squashes too narrow to stress the suffix cut ({} uops / {} recoveries)",
        s.squashed_uops,
        s.branch_mispredicts
    );
    assert_eq!(
        sim.arch_digest(),
        reference.arch_digest(),
        "wide squashes corrupted the committed architectural trace"
    );
    sim.audit_registers().expect("audit after wide squashes");
}

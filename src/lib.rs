//! Facade crate re-exporting the whole `regshare` workspace.
//!
//! `regshare` reproduces Perais & Seznec, *Cost Effective Physical Register
//! Sharing* (HPCA 2016): an out-of-order core in which move elimination and
//! speculative memory bypassing let several architectural registers map to
//! one physical register, with the paper's Irredundant Shared Register
//! Buffer (ISRB) doing the reference counting that makes reclaiming those
//! registers safe.
//!
//! Each subsystem lives in its own workspace crate; this crate only renames
//! them under one roof so downstream code and the repo-level examples can
//! write `regshare::core::Simulator` instead of depending on every crate
//! individually:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `regshare-types` | register/sequence identifiers, hashing, counters, stats |
//! | [`isa`] | `regshare-isa` | µ-op ISA, programs, in-order oracle interpreter |
//! | [`mem`] | `regshare-mem` | L1/L2/DRAM timing model, MSHRs, prefetcher |
//! | [`predictors`] | `regshare-predictors` | TAGE, BTB, return-address stack, Store Sets |
//! | [`distance`] | `regshare-distance` | instruction-distance prediction for bypassing |
//! | [`refcount`] | `regshare-refcount` | the ISRB and the baseline sharing trackers |
//! | [`core`] | `regshare-core` | the cycle-level out-of-order core simulator |
//! | [`workloads`] | `regshare-workloads` | synthetic SPEC-like workload suite |
//! | [`mod@bench`] | `regshare-bench` | scenario layer, measurement harness and the deterministic parallel sweep engine |
//! | [`serve`] | `regshare-serve` | persistent simulation daemon with a content-addressed result cache |
//!
//! The experiment front door is the scenario layer: a [`Scenario`] names a
//! (workloads × configurations) experiment, validates it with typed errors,
//! and round-trips through checked-in `.scenario` files — the types below
//! are re-exported at the crate root so downstream experiment drivers can
//! use them without digging into `bench`.
//!
//! # Examples
//!
//! Direct simulation:
//!
//! ```
//! use regshare::core::{CoreConfig, Simulator};
//! use regshare::workloads;
//!
//! let wl = workloads::mini();
//! let program = wl.build();
//! let cfg = CoreConfig::builder()
//!     .move_elimination(true)
//!     .smb(true)
//!     .build()
//!     .expect("valid config");
//! let mut sim = Simulator::new(&program, cfg);
//! let run = sim.run(1_000);
//! assert_eq!(run.committed, 1_000);
//! ```
//!
//! A whole experiment as data:
//!
//! ```
//! use regshare::{RunOptions, Scenario, VariantSpec};
//!
//! let scenario = Scenario::builder("quick")
//!     .options(RunOptions::default().warmup(500).measure(1_500).jobs(2))
//!     .workloads(&["crafty"])
//!     .variant("base", VariantSpec::hpca16())
//!     .variant("both", VariantSpec::preset("me_smb").isrb_entries(32))
//!     .build()
//!     .expect("validated scenario");
//! let grid = scenario.to_sweep().expect("resolvable").run().expect("sweep completes");
//! assert!(grid.get(0, "both").expect("declared label").ipc() > 0.0);
//! // ...and the same experiment as a checked-in .scenario file:
//! assert_eq!(Scenario::parse(&scenario.render()).unwrap(), scenario);
//! ```

#![deny(missing_docs)]

pub use regshare_bench as bench;
pub use regshare_core as core;
pub use regshare_distance as distance;
pub use regshare_isa as isa;
pub use regshare_mem as mem;
pub use regshare_predictors as predictors;
pub use regshare_refcount as refcount;
pub use regshare_serve as serve;
pub use regshare_types as types;
pub use regshare_workloads as workloads;

pub use regshare_bench::{
    preset, RunOptions, Scenario, ScenarioBuilder, ScenarioError, VariantSpec,
};
pub use regshare_core::{ConfigError, CoreConfigBuilder};

//! Ablations and §4 comparisons that the paper argues qualitatively:
//!
//! 1. **Reference-counting schemes** (§4.2): IPC with each tracker under
//!    ME+SMB, its storage, per-checkpoint storage, recovery stalls, and
//!    commit-time checkpoint writes (the RDA's burden). The MIT cannot track
//!    SMB, so its SMB gains vanish; per-register counters pay a sequential
//!    walk on every squash.
//! 2. **DDT sizing** (§3.1): unlimited vs 16K vs 1K entries.
//! 3. **Load-load bypassing** (§6.2): SMB with and without load-load pairs
//!    ("bypassing only from stores was particularly detrimental" in astar,
//!    wupwise, applu, bzip, hmmer).
//! 4. **ISRB ports** (§4.3.4): rename/reclaim CAM port sweeps and the flag
//!    filter's effectiveness.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::{CoreConfig, TrackerKind};
use regshare_distance::DdtConfig;
use regshare_refcount::IsrbConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn subset() -> Vec<regshare_workloads::Workload> {
    suite()
        .into_iter()
        .filter(|w| {
            [
                "crafty", "vortex", "hmmer", "astar", "bzip", "gobmk", "wupwise", "applu", "namd",
                "gamess",
            ]
            .contains(&w.name)
        })
        .collect()
}

/// Long redundant chains whose original producer drifts beyond the 8-bit
/// instruction distance: only load-load bypassing can keep propagating the
/// register (§6.2), and the many distinct spill slots overflow a 1K DDT.
fn stress_workloads() -> Vec<regshare_workloads::Workload> {
    use regshare_workloads::{custom, WorkloadClass, WorkloadProfile};
    let ll = custom(
        "ll-stress",
        WorkloadClass::Int,
        WorkloadProfile {
            redundant_blocks: 2,
            redundant_chain: 5,
            redundant_gap: 70,
            redundant_value_chained: true,
            spill_blocks: 0,
            alias_blocks: 0,
            move_blocks: 0,
            branchy_blocks: 0,
            call_blocks: 0,
            trips: 6,
            ..WorkloadProfile::default()
        },
    );
    let ddt = custom(
        "ddt-stress",
        WorkloadClass::Int,
        WorkloadProfile {
            spill_blocks: 4,
            spill_slots: 2048,
            spill_work: 6,
            redundant_blocks: 0,
            alias_blocks: 0,
            move_blocks: 0,
            branchy_blocks: 0,
            call_blocks: 0,
            trips: 16,
            ..WorkloadProfile::default()
        },
    );
    vec![ll, ddt]
}

fn main() {
    let window = RunWindow::from_env();

    // --- 1. Trackers ---
    println!("# §4.2 ablation: reference-counting schemes (ME+SMB)\n");
    let trackers: Vec<(&str, TrackerKind)> = vec![
        ("isrb-32", TrackerKind::Isrb(IsrbConfig::hpca16())),
        ("unlimited", TrackerKind::Unlimited),
        (
            "counters-walk8",
            TrackerKind::PerRegCounters { walk_width: 8 },
        ),
        ("roth-matrix", TrackerKind::RothMatrix),
        ("mit-8", TrackerKind::Mit { entries: 8 }),
        (
            "rda-32",
            TrackerKind::Rda {
                entries: 32,
                counter_bits: 3,
            },
        ),
    ];
    let mut t = Table::new(vec![
        "scheme",
        "gmean_speedup%",
        "storage_bits",
        "bits_per_ckpt",
        "recovery_stalls",
        "ckpt_writes_at_commit",
    ]);
    for (name, kind) in &trackers {
        let mut speedups = Vec::new();
        let mut stalls = 0u64;
        let mut ckpt_writes = 0u64;
        let mut storage = (0usize, 0usize);
        for wl in subset() {
            let base = measure(&wl, CoreConfig::hpca16(), window);
            let cfg = CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_tracker(kind.clone());
            let m = measure(&wl, cfg, window);
            speedups.push(1.0 + speedup_pct(base.ipc(), m.ipc()) / 100.0);
            stalls += m.stats.tracker_recovery_stalls;
            ckpt_writes += m.stats.tracker.commit_checkpoint_writes;
            let kindc = kind.clone();
            let tr = kindc.build(256, 192);
            storage = (tr.storage().main_bits, tr.storage().per_checkpoint_bits);
        }
        let g = (geomean(&speedups).unwrap_or(1.0) - 1.0) * 100.0;
        t.row(vec![
            name.to_string(),
            format!("{g:+.2}"),
            format!("{}", storage.0),
            format!("{}", storage.1),
            format!("{stalls}"),
            format!("{ckpt_writes}"),
        ]);
    }
    t.print();

    // --- 2. DDT sizing ---
    println!("\n# §3.1: DDT sizing (SMB, unlimited ISRB)\n");
    let mut t = Table::new(vec!["bench", "ddt_unlimited%", "ddt_16k%", "ddt_1k%"]);
    for wl in subset().into_iter().chain(stress_workloads()) {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string()];
        for ddt in [
            DdtConfig::unlimited(),
            DdtConfig::base16k(),
            DdtConfig::opt1k(),
        ] {
            let mut cfg = CoreConfig::hpca16().with_smb().with_isrb_entries(0);
            cfg.ddt = ddt;
            let m = measure(&wl, cfg, window);
            cells.push(format!("{:+.2}", speedup_pct(base.ipc(), m.ipc())));
        }
        t.row(cells);
    }
    t.print();

    // --- 3. Load-load bypassing ---
    println!("\n# §6.2: store-load only vs + load-load\n");
    let mut t = Table::new(vec!["bench", "store_load_only%", "with_load_load%"]);
    for wl in subset().into_iter().chain(stress_workloads()) {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut only = CoreConfig::hpca16().with_smb().with_isrb_entries(0);
        only.smb_load_load = false;
        let a = measure(&wl, only, window);
        let b = measure(
            &wl,
            CoreConfig::hpca16().with_smb().with_isrb_entries(0),
            window,
        );
        t.row(vec![
            wl.name.to_string(),
            format!("{:+.2}", speedup_pct(base.ipc(), a.ipc())),
            format!("{:+.2}", speedup_pct(base.ipc(), b.ipc())),
        ]);
    }
    t.print();

    // --- 4. ISRB ports + flag filter ---
    println!("\n# §4.3.4: ISRB CAM ports and the reclaim flag filter\n");
    let mut t = Table::new(vec![
        "bench",
        "ports_unl%",
        "ports_2r_6c%",
        "ports_1r_2c%",
        "flag_filtered",
        "cam_checked",
    ]);
    for wl in subset() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string()];
        let mut filtered = 0;
        let mut checked = 0;
        for (rp, cp) in [(0usize, 0usize), (2, 6), (1, 2)] {
            let mut cfg = CoreConfig::hpca16().with_me().with_smb();
            cfg.tracker_rename_ports = rp;
            cfg.tracker_reclaim_ports = cp;
            let m = measure(&wl, cfg, window);
            cells.push(format!("{:+.2}", speedup_pct(base.ipc(), m.ipc())));
            if rp == 0 {
                filtered = m.stats.reclaims_flag_filtered;
                checked = m.stats.reclaims_cam_checked;
            }
        }
        cells.push(format!("{filtered}"));
        cells.push(format!("{checked}"));
        t.row(cells);
    }
    t.print();
}

//! End-to-end pipeline tests: correctness invariants that must hold for
//! every configuration of the paper's mechanisms.

use regshare_core::{CoreConfig, Simulator, TrackerKind};
use regshare_refcount::IsrbConfig;
use regshare_workloads::{mini, suite};

const RUN: u64 = 30_000;

fn run_with(cfg: CoreConfig, uops: u64) -> Simulator {
    let program = mini().build();
    let mut sim = Simulator::new(&program, cfg);
    sim.run(uops);
    sim
}

#[test]
fn baseline_makes_progress() {
    let sim = run_with(CoreConfig::hpca16(), RUN);
    let s = sim.stats();
    assert!(s.ipc() > 0.2, "baseline IPC too low: {}", s.ipc());
    assert!(s.ipc() <= 8.0, "IPC above machine width: {}", s.ipc());
    assert!(s.branches > 100, "no branches committed");
}

#[test]
fn me_preserves_architectural_state() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    let me = run_with(CoreConfig::hpca16().with_me(), RUN);
    assert!(me.stats().moves_eliminated > 0, "ME never fired");
    assert_eq!(
        base.arch_digest(),
        me.arch_digest(),
        "move elimination changed architectural state"
    );
}

#[test]
fn smb_preserves_architectural_state() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    let smb = run_with(CoreConfig::hpca16().with_smb(), RUN);
    assert!(smb.stats().loads_bypassed > 0, "SMB never fired");
    assert_eq!(
        base.arch_digest(),
        smb.arch_digest(),
        "speculative memory bypassing changed architectural state"
    );
}

#[test]
fn combined_me_smb_preserves_architectural_state() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    let both = run_with(CoreConfig::hpca16().with_me().with_smb(), RUN);
    assert_eq!(base.arch_digest(), both.arch_digest());
    assert!(both.stats().moves_eliminated > 0);
    assert!(both.stats().loads_bypassed > 0);
}

#[test]
fn lazy_reclaim_preserves_architectural_state() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    let mut cfg = CoreConfig::hpca16().with_smb();
    cfg.smb_from_committed = true;
    let lazy = run_with(cfg, RUN);
    assert_eq!(base.arch_digest(), lazy.arch_digest());
}

#[test]
fn register_audit_holds_under_sharing() {
    let program = mini().build();
    let mut sim = Simulator::new(
        &program,
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(8),
    );
    for _ in 0..60 {
        sim.run(500);
        sim.audit_registers().expect("register accounting violated");
    }
}

#[test]
fn register_audit_holds_with_lazy_reclaim() {
    let program = mini().build();
    let mut cfg = CoreConfig::hpca16().with_me().with_smb();
    cfg.smb_from_committed = true;
    let mut sim = Simulator::new(&program, cfg);
    for _ in 0..40 {
        sim.run(500);
        sim.audit_registers()
            .expect("register accounting violated (lazy)");
    }
}

#[test]
fn all_trackers_run_and_agree_architecturally() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    for tracker in [
        TrackerKind::Isrb(IsrbConfig {
            entries: 16,
            ..IsrbConfig::hpca16()
        }),
        TrackerKind::Unlimited,
        TrackerKind::PerRegCounters { walk_width: 8 },
        TrackerKind::RothMatrix,
        TrackerKind::Mit { entries: 8 },
        TrackerKind::Rda {
            entries: 16,
            counter_bits: 3,
        },
    ] {
        let name = format!("{tracker:?}");
        let cfg = CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_tracker(tracker);
        let sim = run_with(cfg, RUN);
        assert_eq!(
            base.arch_digest(),
            sim.arch_digest(),
            "tracker {name} changed architectural state"
        );
    }
}

#[test]
fn tiny_isrb_limits_sharing_but_stays_correct() {
    let base = run_with(CoreConfig::hpca16(), RUN);
    let tiny = run_with(
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(1),
        RUN,
    );
    assert_eq!(base.arch_digest(), tiny.arch_digest());
    let unlimited = run_with(
        CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(0),
        RUN,
    );
    assert!(
        tiny.stats().moves_eliminated + tiny.stats().loads_bypassed
            < unlimited.stats().moves_eliminated + unlimited.stats().loads_bypassed,
        "1-entry ISRB should share less than unlimited"
    );
}

#[test]
fn memory_traps_occur_and_store_sets_learn() {
    // The alias-heavy profile must produce violations early, then fewer
    // as Store Sets converge.
    let wl = suite().into_iter().find(|w| w.name == "bzip").unwrap();
    let program = wl.build();
    let mut sim = Simulator::new(&program, CoreConfig::hpca16());
    let first = sim.run(40_000);
    let early = first.memory_traps;
    let second = sim.run(40_000);
    let late = second.memory_traps - early;
    assert!(early > 0, "alias workload produced no traps");
    assert!(
        late * 2 < early * 3,
        "store sets never learned: early {early}, late {late}"
    );
}

#[test]
fn wrong_paths_never_corrupt_memory() {
    // Digest equality across ISRB sizes already implies this, but check a
    // branchy workload explicitly against a fresh run.
    let wl = suite().into_iter().find(|w| w.name == "gobmk").unwrap();
    let program = wl.build();
    let mut a = Simulator::new(&program, CoreConfig::hpca16());
    a.run(RUN);
    let mut b = Simulator::new(&program, CoreConfig::hpca16().with_me().with_smb());
    b.run(RUN);
    assert!(
        a.stats().branch_mispredicts > 50,
        "no wrong paths exercised"
    );
    assert_eq!(a.arch_digest(), b.arch_digest());
}

#[test]
fn deterministic_across_runs() {
    let a = run_with(CoreConfig::hpca16().with_me().with_smb(), RUN);
    let b = run_with(CoreConfig::hpca16().with_me().with_smb(), RUN);
    assert_eq!(a.stats().cycles, b.stats().cycles);
    assert_eq!(a.arch_digest(), b.arch_digest());
}

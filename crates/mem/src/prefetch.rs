//! PC-indexed stride prefetcher (Table 1: degree 8, distance 1, at L2).

use regshare_types::hasher::mix64;
use regshare_types::Addr;

/// Stride prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridePrefetcherConfig {
    /// log2(table entries).
    pub log_entries: u32,
    /// Number of lines fetched per trigger.
    pub degree: usize,
    /// How many strides ahead the first prefetch lands.
    pub distance: u64,
    /// Confidence needed before issuing (consecutive same-stride hits).
    pub threshold: u8,
}

impl StridePrefetcherConfig {
    /// Table 1: degree 8, distance 1.
    pub fn hpca16() -> StridePrefetcherConfig {
        StridePrefetcherConfig {
            log_entries: 9,
            degree: 8,
            distance: 1,
            threshold: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    tag: u32,
    last_line: Addr,
    stride: i64,
    confidence: u8,
}

/// The prefetcher: observes demand line addresses per PC, detects constant
/// strides, and emits prefetch candidates.
///
/// # Examples
///
/// ```
/// use regshare_mem::{StridePrefetcher, StridePrefetcherConfig};
/// let mut pf = StridePrefetcher::new(StridePrefetcherConfig::hpca16());
/// let mut issued = vec![];
/// for i in 0..8u64 {
///     issued.extend(pf.observe(0x400100, 0x10000 + i * 64, 64));
/// }
/// assert!(!issued.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StridePrefetcherConfig,
    table: Vec<StrideEntry>,
}

impl StridePrefetcher {
    /// Builds the prefetcher.
    pub fn new(cfg: StridePrefetcherConfig) -> StridePrefetcher {
        StridePrefetcher {
            table: vec![StrideEntry::default(); 1 << cfg.log_entries],
            cfg,
        }
    }

    /// Observes a demand access (PC, line address); returns line addresses
    /// to prefetch (possibly empty).
    pub fn observe(&mut self, pc: Addr, line: Addr, line_bytes: u64) -> Vec<Addr> {
        let h = mix64(pc);
        let idx = (h as usize) & ((1 << self.cfg.log_entries) - 1);
        let tag = (h >> 32) as u32;
        let e = &mut self.table[idx];

        if e.tag != tag {
            *e = StrideEntry {
                tag,
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return Vec::new();
        }
        let stride = line.wrapping_sub(e.last_line) as i64;
        if stride == 0 {
            return Vec::new(); // same line: no training signal
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 0;
        }
        e.last_line = line;
        if e.confidence < self.cfg.threshold {
            return Vec::new();
        }
        // Confident: issue degree prefetches starting `distance` strides out.
        let mut out = Vec::with_capacity(self.cfg.degree);
        for k in 0..self.cfg.degree as u64 {
            let delta = e.stride.wrapping_mul((self.cfg.distance + k) as i64);
            let target = line.wrapping_add(delta as u64) & !(line_bytes - 1);
            out.push(target);
        }
        out
    }
}

regshare_types::impl_snap!(StrideEntry {
    tag,
    last_line,
    stride,
    confidence
});

impl regshare_types::snapshot::Snapshot for StridePrefetcher {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.table.encode(w);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let table: Vec<StrideEntry> = Snap::decode(r)?;
        if table.len() != self.table.len() {
            return Err(r.corrupt("StridePrefetcher table size"));
        }
        self.table = table;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StridePrefetcherConfig {
        StridePrefetcherConfig {
            log_entries: 6,
            degree: 4,
            distance: 1,
            threshold: 2,
        }
    }

    #[test]
    fn constant_stride_triggers_after_threshold() {
        let mut pf = StridePrefetcher::new(cfg());
        let base = 0x10000u64;
        assert!(pf.observe(0x1, base, 64).is_empty()); // allocate
        assert!(pf.observe(0x1, base + 64, 64).is_empty()); // stride learned, conf 0
        assert!(pf.observe(0x1, base + 128, 64).is_empty()); // conf 1
        let issued = pf.observe(0x1, base + 192, 64); // conf 2 == threshold
        assert_eq!(issued.len(), 4);
        assert_eq!(issued[0], base + 256); // distance 1 stride ahead
        assert_eq!(issued[3], base + 448);
    }

    #[test]
    fn negative_stride_supported() {
        let mut pf = StridePrefetcher::new(cfg());
        let base = 0x20000u64;
        for i in 0..4 {
            let _ = pf.observe(0x2, base - i * 64, 64);
        }
        let issued = pf.observe(0x2, base - 4 * 64, 64);
        assert!(!issued.is_empty());
        assert_eq!(issued[0], base - 5 * 64);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::new(cfg());
        let base = 0x30000u64;
        for i in 0..4 {
            let _ = pf.observe(0x3, base + i * 64, 64);
        }
        // Break the pattern.
        assert!(pf.observe(0x3, base + 1024, 64).is_empty());
        assert!(pf.observe(0x3, base + 1024 + 128, 64).is_empty());
    }

    #[test]
    fn same_line_repeats_are_ignored() {
        let mut pf = StridePrefetcher::new(cfg());
        for _ in 0..10 {
            assert!(pf.observe(0x4, 0x40000, 64).is_empty());
        }
    }
}

//! Offline subset of the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! This container has no crates.io access, so the workspace vendors the small
//! slice of criterion's API that the `regshare-bench` targets use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a plain wall-clock median over a handful of batches —
//! good enough for relative comparisons, not a statistical replacement for
//! the real crate. Swap the `criterion` entry in the workspace
//! `[workspace.dependencies]` table for the crates.io version when network
//! access is available; no source changes are required.

#![deny(missing_docs)]

use std::time::Instant;

/// Target wall-clock time (nanoseconds) each benchmark spends measuring.
const TARGET_NS: u128 = 200_000_000;

/// Entry point handed to every benchmark function; registers and runs
/// individual benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run a single benchmark under `name`, timing whatever the closure
    /// feeds to [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark inside this group (reported as `group/name`).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Close the group. Present for API compatibility; reporting is eager.
    pub fn finish(self) {
        let _ = self.parent;
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            ns_per_iter: None,
        }
    }

    /// Time the closure: calibrate an iteration count, then take
    /// `sample_size` timed batches and keep the median batch.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: find an iteration count that runs long enough to be
        // measurable against timer resolution.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed > TARGET_NS / (self.sample_size as u128 * 4) || iters > (1 << 30) {
                break;
            }
            iters = iters.saturating_mul(if elapsed == 0 { 16 } else { 2 });
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.ns_per_iter {
            Some(ns) => println!("{:<40} {:>14.1} ns/iter", name, ns),
            None => println!("{:<40} (no measurement: Bencher::iter never called)", name),
        }
    }
}

/// Bundle benchmark functions into a single runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench_fn(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Deterministic parallel sweep engine.
//!
//! Every figure in the paper's evaluation is a (workload × configuration)
//! matrix. A [`SweepSpec`] declares that matrix once — a list of workloads
//! and a list of labelled [`Variant`] core configurations — and [`SweepSpec::run`]
//! expands it into independent jobs, shards them across a `std::thread`
//! worker pool, and merges the results back **in spec order** into a
//! [`SweepGrid`].
//!
//! Determinism: each job is a pure function of (program, config, window), so
//! scheduling order cannot affect any individual result, and because the
//! grid is assembled by job index rather than completion order, the rendered
//! tables and `csv:` blocks are byte-identical whether the sweep runs on one
//! thread or sixteen. `REGSHARE_JOBS` selects the worker count (default:
//! available parallelism); [`SweepSpec::jobs`] overrides it in code.
//!
//! Programs are memoized per workload: each of the synthetic programs is
//! built exactly once (lazily, by whichever worker first needs it) and
//! shared read-only across every configuration variant.

use crate::harness::{measure_program, Measurement, RunWindow};
use regshare_core::CoreConfig;
use regshare_isa::Program;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// One labelled core configuration of a sweep.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Column label (used by [`SweepGrid::get`] / row accessors).
    pub label: String,
    /// The configuration to measure.
    pub cfg: CoreConfig,
}

/// Worker count from the deprecated `REGSHARE_JOBS` fallback, defaulting
/// to available parallelism — equivalent to
/// [`RunOptions::job_count`](crate::options::RunOptions::job_count) with no
/// explicit jobs value.
pub fn jobs_from_env() -> usize {
    crate::options::RunOptions::default().job_count()
}

/// A declarative (workloads × variants) sweep.
///
/// # Examples
///
/// ```
/// use regshare_bench::{RunWindow, SweepSpec};
/// use regshare_core::CoreConfig;
/// use regshare_workloads::mini;
///
/// let grid = SweepSpec::new(vec![mini()], RunWindow { warmup: 500, measure: 1_500 })
///     .variant("base", CoreConfig::hpca16())
///     .variant("both", CoreConfig::hpca16().with_me().with_smb())
///     .jobs(2)
///     .run();
/// let row = grid.rows().next().unwrap();
/// assert!(row.get("base").ipc() > 0.0);
/// assert!(row.get("both").ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct SweepSpec {
    workloads: Vec<Workload>,
    variants: Vec<Variant>,
    window: RunWindow,
    jobs: Option<usize>,
}

impl SweepSpec {
    /// Creates a spec over `workloads` with no variants yet.
    pub fn new(workloads: Vec<Workload>, window: RunWindow) -> SweepSpec {
        SweepSpec {
            workloads,
            variants: Vec::new(),
            window,
            jobs: None,
        }
    }

    /// Appends a labelled configuration column.
    ///
    /// # Panics
    ///
    /// Panics if `label` is already taken — a duplicate would silently
    /// shadow the later variant's measurements in every grid accessor.
    pub fn variant(mut self, label: impl Into<String>, cfg: CoreConfig) -> SweepSpec {
        let label = label.into();
        assert!(
            self.variants.iter().all(|v| v.label != label),
            "duplicate sweep variant label {label:?}"
        );
        self.variants.push(Variant { label, cfg });
        self
    }

    /// Overrides the worker count (otherwise `REGSHARE_JOBS` / available
    /// parallelism decides).
    pub fn jobs(mut self, jobs: usize) -> SweepSpec {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// The worker count this spec will run with.
    pub fn job_count(&self) -> usize {
        self.jobs.unwrap_or_else(jobs_from_env)
    }

    /// Expands the matrix into jobs, runs them on the worker pool, and
    /// merges the measurements back in spec order.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no variants, or if a worker thread panics
    /// (a simulator bug — the sweep does not hide it).
    pub fn run(self) -> SweepGrid {
        assert!(
            !self.variants.is_empty(),
            "sweep spec needs at least one variant"
        );
        let n_jobs_total = self.workloads.len() * self.variants.len();
        let workers = self.job_count().min(n_jobs_total.max(1));
        // Lazy per-workload program memoization: built once by whichever
        // worker gets there first, shared read-only by all variants.
        let programs: Vec<OnceLock<Program>> =
            self.workloads.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let n_variants = self.variants.len();
        let mut cells: Vec<Option<Measurement>> = Vec::with_capacity(n_jobs_total);
        cells.resize_with(n_jobs_total, || None);

        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, Measurement)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let programs = &programs;
                let workloads = &self.workloads;
                let variants = &self.variants;
                let window = self.window;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs_total {
                        break;
                    }
                    let (w, v) = (i / n_variants, i % n_variants);
                    let program = programs[w].get_or_init(|| workloads[w].build());
                    let m = measure_program(
                        workloads[w].name.as_str(),
                        program,
                        variants[v].cfg.clone(),
                        window,
                    );
                    // The receiver outlives all senders inside this scope;
                    // a send failure means the main thread died first.
                    let _ = tx.send((i, m));
                });
            }
            drop(tx);
            for (i, m) in rx {
                cells[i] = Some(m);
            }
        });

        SweepGrid {
            workloads: self.workloads,
            labels: self.variants.into_iter().map(|v| v.label).collect(),
            cells: cells
                .into_iter()
                .map(|c| c.expect("all sweep jobs completed"))
                .collect(),
        }
    }
}

/// The completed (workload × variant) measurement matrix, in spec order.
#[derive(Debug)]
pub struct SweepGrid {
    workloads: Vec<Workload>,
    labels: Vec<String>,
    /// Row-major: `cells[w * labels.len() + v]`.
    cells: Vec<Measurement>,
}

impl SweepGrid {
    /// Assembles a grid from already-measured cells in row-major order
    /// (`cells[w * labels.len() + v]`) — the merge path for runners that
    /// obtain cells outside the parallel engine: the checkpointed serial
    /// runner and the serve daemon's cache-aware scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != workloads.len() * labels.len()`.
    pub fn from_parts(
        workloads: Vec<Workload>,
        labels: Vec<String>,
        cells: Vec<Measurement>,
    ) -> SweepGrid {
        assert_eq!(cells.len(), workloads.len() * labels.len());
        SweepGrid {
            workloads,
            labels,
            cells,
        }
    }

    /// The workloads, in spec order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The variant labels, in spec order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn variant_index(&self, label: &str) -> usize {
        self.labels
            .iter()
            .position(|l| l == label)
            .unwrap_or_else(|| panic!("unknown sweep variant {label:?}"))
    }

    /// The measurement for workload index `w` under `label`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label or out-of-range index.
    pub fn get(&self, w: usize, label: &str) -> &Measurement {
        &self.cells[w * self.labels.len() + self.variant_index(label)]
    }

    /// The measurement for the workload named `name` under `label`, if that
    /// workload is part of this sweep.
    pub fn by_name(&self, name: &str, label: &str) -> Option<&Measurement> {
        let w = self.workloads.iter().position(|wl| wl.name == name)?;
        Some(self.get(w, label))
    }

    /// Iterates rows (one per workload) in spec order.
    pub fn rows(&self) -> impl Iterator<Item = SweepRow<'_>> {
        (0..self.workloads.len()).map(move |w| SweepRow { grid: self, w })
    }

    /// Geomean speedup (percent) of `label` over `base` across all
    /// workloads of the sweep.
    pub fn geomean_speedup(&self, base: &str, label: &str) -> f64 {
        let ratios: Vec<f64> = (0..self.workloads.len())
            .map(|w| 1.0 + speedup_pct(self.get(w, base).ipc(), self.get(w, label).ipc()) / 100.0)
            .collect();
        (geomean(&ratios).unwrap_or(1.0) - 1.0) * 100.0
    }
}

/// One workload's row of a [`SweepGrid`].
#[derive(Debug, Clone, Copy)]
pub struct SweepRow<'a> {
    grid: &'a SweepGrid,
    w: usize,
}

impl<'a> SweepRow<'a> {
    /// The row's workload.
    pub fn workload(&self) -> &'a Workload {
        &self.grid.workloads[self.w]
    }

    /// The row's measurement under `label`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label.
    pub fn get(&self, label: &str) -> &'a Measurement {
        self.grid.get(self.w, label)
    }

    /// Speedup (percent) of `label` over `base` for this workload.
    pub fn speedup(&self, base: &str, label: &str) -> f64 {
        speedup_pct(self.get(base).ipc(), self.get(label).ipc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_workloads::mini;

    fn tiny_window() -> RunWindow {
        RunWindow {
            warmup: 500,
            measure: 1_500,
        }
    }

    #[test]
    fn grid_is_indexed_in_spec_order() {
        let grid = SweepSpec::new(vec![mini()], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .variant("me", CoreConfig::hpca16().with_me())
            .jobs(2)
            .run();
        assert_eq!(grid.labels(), &["base".to_string(), "me".to_string()]);
        assert_eq!(grid.workloads().len(), 1);
        let row = grid.rows().next().unwrap();
        assert_eq!(row.workload().name, "mini");
        assert!(row.get("base").ipc() > 0.0);
        assert!(grid.by_name("mini", "me").is_some());
        assert!(grid.by_name("absent", "me").is_none());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = |jobs| {
            SweepSpec::new(vec![mini()], tiny_window())
                .variant("base", CoreConfig::hpca16())
                .variant("both", CoreConfig::hpca16().with_me().with_smb())
                .jobs(jobs)
                .run()
        };
        let (a, b) = (spec(1), spec(3));
        for w in 0..1 {
            for label in ["base", "both"] {
                assert_eq!(a.get(w, label).stats, b.get(w, label).stats);
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown sweep variant")]
    fn unknown_label_panics() {
        let grid = SweepSpec::new(vec![mini()], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .jobs(1)
            .run();
        let _ = grid.get(0, "nope");
    }
}

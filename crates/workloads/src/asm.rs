//! The assembled real-program corpus: classic kernels written in the
//! `regshare` assembly dialect ([`regshare_isa::asm`]) and checked in under
//! `programs/*.asm`.
//!
//! Unlike the synthetic motif suite and the fuzz generator, these kernels
//! have *real* loop-nest structure — data-dependent branches, address
//! arithmetic, byte stores, an unpipelined divide — so register-sharing
//! results measured on them rest on genuine control flow. Every kernel ends
//! in a self-checking epilogue that leaves `1` in `r15` on success and then
//! halts; the post-halt machine keeps yielding inert no-ops, so any
//! warmup/measure window remains satisfiable.
//!
//! Kernels are registered as `asm-<name>` workloads (e.g. `asm-quicksort`),
//! resolvable wherever suite names are: `--workloads` flags, scenario
//! `workloads = [...]` lists, and the `kind = "asm"` scenario source.
//!
//! # Examples
//!
//! ```
//! use regshare_workloads::find;
//!
//! let wl = find("asm-quicksort").unwrap();
//! let program = wl.build();
//! assert!(program.len() > 20);
//! ```

use crate::profile::{Workload, WorkloadClass, WorkloadSource};
use regshare_isa::asm::{assemble, AsmError};
use regshare_isa::Program;

/// The embedded corpus: `(kernel name, assembly source)`, in a stable order.
///
/// Sources are compiled in via `include_str!`, so `asm-<name>` workloads
/// resolve without any filesystem access.
pub const CORPUS: [(&str, &str); 4] = [
    ("quicksort", include_str!("../../../programs/quicksort.asm")),
    ("matmul", include_str!("../../../programs/matmul.asm")),
    (
        "prime_sieve",
        include_str!("../../../programs/prime_sieve.asm"),
    ),
    ("box_blur", include_str!("../../../programs/box_blur.asm")),
];

/// Workload-name prefix for assembled kernels.
pub const NAME_PREFIX: &str = "asm-";

/// One assembled-kernel workload: a short name plus the assembly source it
/// was validated from.
///
/// Construction always assembles the source once, so a held `AsmSpec` is
/// guaranteed to build.
#[derive(Debug, Clone)]
pub struct AsmSpec {
    kernel: String,
    src: String,
}

impl AsmSpec {
    /// Looks up an embedded corpus kernel by its short name (`"quicksort"`).
    pub fn new(kernel: &str) -> Option<AsmSpec> {
        let (name, src) = CORPUS.iter().find(|(n, _)| *n == kernel)?;
        // The corpus is pinned by the differential gate; a source that does
        // not assemble is treated as unknown rather than panicking here.
        assemble(src).ok()?;
        Some(AsmSpec {
            kernel: name.to_string(),
            src: src.to_string(),
        })
    }

    /// Wraps external assembly text (e.g. a scenario's `path = "…"` file),
    /// assembling it once up front so errors surface at resolution time.
    ///
    /// # Errors
    ///
    /// Returns the [`AsmError`] if the source does not assemble.
    pub fn from_source(
        kernel: impl Into<String>,
        src: impl Into<String>,
    ) -> Result<AsmSpec, AsmError> {
        let src = src.into();
        assemble(&src)?;
        Ok(AsmSpec {
            kernel: kernel.into(),
            src,
        })
    }

    /// The kernel's short name (without the `asm-` prefix).
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The assembly source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The registry name: `asm-<kernel>`.
    pub fn name(&self) -> String {
        format!("{NAME_PREFIX}{}", self.kernel)
    }

    /// Parses an `asm-<kernel>` registry name back into a spec; `None` if
    /// the prefix is absent or the kernel is not in the embedded corpus.
    pub fn parse_name(name: &str) -> Option<AsmSpec> {
        AsmSpec::new(name.strip_prefix(NAME_PREFIX)?)
    }

    /// Assembles the kernel into an executable [`Program`].
    pub fn build(&self) -> Program {
        assemble(&self.src).expect("AsmSpec sources are assembled at construction")
    }

    /// Wraps the spec as a registry [`Workload`]. The corpus kernels are all
    /// integer-dominated.
    pub fn workload(&self) -> Workload {
        Workload {
            name: self.name(),
            class: WorkloadClass::Int,
            source: WorkloadSource::Asm(self.clone()),
        }
    }
}

/// All embedded corpus kernels as workloads, in [`CORPUS`] order.
pub fn corpus_workloads() -> Vec<Workload> {
    CORPUS
        .iter()
        .map(|(name, _)| {
            AsmSpec::new(name)
                .expect("embedded corpus kernels assemble")
                .workload()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::interp::Machine;
    use std::sync::Arc;

    #[test]
    fn every_corpus_kernel_assembles() {
        for (name, src) in CORPUS {
            assemble(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn corpus_workloads_build_and_halt_with_success_verdict() {
        for wl in corpus_workloads() {
            let p = Arc::new(wl.build());
            let mut m = Machine::new(p);
            let mut halted = false;
            for _ in 0..2_000_000u64 {
                if m.is_halted() {
                    halted = true;
                    break;
                }
                m.step();
            }
            assert!(halted, "{} did not halt", wl.name);
            assert_eq!(m.regs()[15], 1, "{} self-check failed", wl.name);
        }
    }

    #[test]
    fn registry_names_round_trip() {
        let spec = AsmSpec::new("quicksort").unwrap();
        assert_eq!(spec.name(), "asm-quicksort");
        assert_eq!(
            AsmSpec::parse_name("asm-quicksort").unwrap().kernel(),
            "quicksort"
        );
        assert!(AsmSpec::parse_name("asm-doom").is_none());
        assert!(AsmSpec::parse_name("quicksort").is_none());
        assert!(AsmSpec::new("doom").is_none());
    }

    #[test]
    fn from_source_validates_up_front() {
        let ok = AsmSpec::from_source("tiny", "    nop\n    halt\n").unwrap();
        assert_eq!(ok.build().len(), 2);
        assert_eq!(ok.name(), "asm-tiny");
        let err = AsmSpec::from_source("broken", "    bogus r1\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}

//! **Figure 6(c)**: bypassing from committed instructions (lazy register
//! reclaiming via the ROB `release_head` pointer) vs in-window SMB only,
//! at unlimited and 24-entry ISRB.
//!
//! Paper shape: generally marginal (only the STLF/L1 latency can be hidden
//! for committed producers), sometimes harmful at 24 entries because
//! committed bypasses consume ISRB entries that in-window bypassing needs;
//! latency-bound outliers (astar) still profit.
//!
//! The matrix is the `fig6c_committed` preset scenario, built from the
//! `smb` and `lazy_reclaim` presets at each ISRB size.

use regshare_bench::{preset, Table};

const LABELS: [&str; 4] = ["eager-unl", "lazy-unl", "eager-24", "lazy-24"];

fn main() {
    let scenario = preset("fig6c_committed").expect("built-in scenario");
    let grid = scenario
        .to_sweep()
        .expect("preset validates")
        .run()
        .expect("sweep completes");

    let mut t = Table::new(vec![
        "bench",
        "eagerUnl%",
        "lazyUnl%",
        "eager24%",
        "lazy24%",
        "byp_from_committed",
    ]);
    for row in grid.rows() {
        let mut cells = vec![row.workload().name.clone()];
        for label in LABELS {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        cells.push(format!(
            "{}",
            row.get("lazy-unl")
                .expect("declared label")
                .stats
                .bypass_from_committed
        ));
        t.row(cells);
    }
    for label in LABELS {
        t.footer(format!(
            "geomean speedup, {label}: {:+.2}%",
            grid.geomean_speedup("base", label).expect("declared label")
        ));
    }
    println!("# Figure 6(c): eager vs lazy reclaim (bypass from committed)\n");
    t.print();
}

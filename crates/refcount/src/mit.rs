//! The Multiple Instantiation Table (MIT) from Intel's move-elimination
//! patent (Raikin et al., §2.2/§4.2 \[12\]).
//!
//! A small fully-associative table whose entries pair a physical register
//! with a bit-vector over *architectural* registers mapped to it; a bit
//! clears when its architectural register is redefined and an all-zero
//! vector frees the register. The MIT exploits a property **specific to
//! move elimination**: both architectural registers involved are visible in
//! the move instruction. SMB violates this (the store's source register may
//! already have been re-renamed when the load is renamed), so
//! [`Mit::try_share`] rejects [`ShareKind::Bypass`] requests — reproducing
//! the paper's §4.2 argument that the MIT cannot support SMB.
//!
//! **Implementation note.** A literal boolean bit-vector mis-counts when an
//! architectural register maps to the register, is redefined, and maps back
//! to the *same* register while the redefiner is still in flight (two
//! overlapping mapping epochs, one bit): the older epoch's commit-time
//! clear destroys the younger epoch's bit and frees a live register. The
//! patent ties its tracking to retirement, which serializes these epochs;
//! our out-of-order model achieves the same correctness by counting epochs
//! per entry (the same dual never-decremented counters the ISRB uses) while
//! preserving every patent-visible property: ME-only sharing, a handful of
//! fully-associative entries, allocation aborts when full, and
//! `#arch_reg`-bit checkpoints per entry (the storage figure the paper
//! compares against, which is what makes the ISRB cheaper).

use crate::isrb::{Isrb, IsrbConfig};
use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
    StorageReport, TrackerStats,
};
use regshare_types::{ArchReg, PhysReg, RegClass};

/// The MIT tracker. See the module docs.
///
/// # Examples
///
/// ```
/// use regshare_refcount::{Mit, SharingTracker, ShareRequest, ShareKind};
/// use regshare_types::{ArchReg, PhysReg, RegClass};
///
/// let mut mit = Mit::new(8);
/// // Move elimination is trackable...
/// assert!(mit.try_share(&ShareRequest {
///     class: RegClass::Int, preg: PhysReg::new(1),
///     kind: ShareKind::MoveElim { arch_dst: ArchReg::int(2), arch_src: ArchReg::int(3) },
/// }));
/// // ...but SMB is not (the paper's §4.2 point).
/// assert!(!mit.try_share(&ShareRequest {
///     class: RegClass::Int, preg: PhysReg::new(4),
///     kind: ShareKind::Bypass { arch_dst: ArchReg::int(5) },
/// }));
/// ```
#[derive(Debug)]
pub struct Mit {
    inner: Isrb,
    entries: usize,
    rejected_kind: u64,
}

impl Mit {
    /// Creates a MIT with `entries` entries (the patent suggests e.g. 8).
    pub fn new(entries: usize) -> Mit {
        Mit {
            inner: Isrb::new(IsrbConfig {
                entries,
                // Epoch counters sized to the architectural register count:
                // at most one live mapping epoch per architectural register
                // plus in-flight renewals.
                counter_bits: 6,
                ..IsrbConfig::default()
            }),
            entries,
            rejected_kind: 0,
        }
    }
}

impl SharingTracker for Mit {
    fn name(&self) -> &'static str {
        "mit"
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        match req.kind {
            ShareKind::MoveElim { .. } => self.inner.try_share(req),
            ShareKind::Bypass { .. } => {
                // The MIT's algorithm is based on architectural names, which
                // SMB does not preserve: reject.
                self.rejected_kind += 1;
                false
            }
        }
    }

    fn on_sharer_commit(&mut self, req: &ShareRequest) {
        self.inner.on_sharer_commit(req);
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.inner.on_reclaim(req)
    }

    fn checkpoint(&mut self) -> CheckpointId {
        self.inner.checkpoint()
    }

    fn restore(&mut self, id: CheckpointId, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.inner.restore(id, freed);
    }

    fn release_checkpoint(&mut self, id: CheckpointId) {
        self.inner.release_checkpoint(id);
    }

    fn restore_to_committed(&mut self, freed: &mut Vec<(RegClass, PhysReg)>) {
        self.inner.restore_to_committed(freed);
    }

    fn storage(&self) -> StorageReport {
        // Patent-visible layout: tag + valid + one bit per architectural
        // register, checkpointed in full (§4.2: "#arch_reg bits per entry" —
        // the cost the ISRB improves on).
        let tag_bits = 8 + 1 + 1;
        StorageReport {
            main_bits: self.entries * (tag_bits + ArchReg::COUNT),
            per_checkpoint_bits: self.entries * ArchReg::COUNT,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.inner.is_shared(class, preg)
    }

    fn shared_count(&self) -> usize {
        self.inner.shared_count()
    }

    fn stats(&self) -> TrackerStats {
        let mut s = self.inner.stats();
        s.shares_rejected_kind = self.rejected_kind;
        s
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        self.inner.save_state(w);
        w.put_u64(self.rejected_kind);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        self.inner.load_state(r)?;
        self.rejected_kind = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn me(preg: usize, dst: usize, src: usize) -> ShareRequest {
        ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(preg),
            kind: ShareKind::MoveElim {
                arch_dst: ArchReg::int(dst),
                arch_src: ArchReg::int(src),
            },
        }
    }

    fn reclaim(preg: usize) -> ReclaimRequest {
        ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(preg),
            arch: ArchReg::int(0),
            renews: false,
        }
    }

    #[test]
    fn move_elim_lifecycle() {
        let mut t = Mit::new(4);
        // mov r1, r2 eliminated: both map to p5 (two mappings total).
        assert!(t.try_share(&me(5, 1, 2)));
        // r2 redefined: register kept (r1 still maps).
        assert_eq!(t.on_reclaim(&reclaim(5)), ReclaimDecision::Keep);
        // r1 redefined: freed.
        assert_eq!(t.on_reclaim(&reclaim(5)), ReclaimDecision::Free);
    }

    #[test]
    fn smb_is_rejected() {
        let mut t = Mit::new(4);
        assert!(!t.try_share(&ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(1),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(0)
            },
        }));
        assert_eq!(t.stats().shares_rejected_kind, 1);
    }

    #[test]
    fn full_table_rejects() {
        let mut t = Mit::new(2);
        assert!(t.try_share(&me(1, 1, 2)));
        assert!(t.try_share(&me(2, 3, 4)));
        assert!(!t.try_share(&me(3, 5, 6)));
        assert_eq!(t.stats().shares_rejected_full, 1);
    }

    #[test]
    fn chained_moves_accumulate_references() {
        let mut t = Mit::new(4);
        assert!(t.try_share(&me(7, 1, 2))); // r1, r2 → p7
        assert!(t.try_share(&me(7, 3, 1))); // r3 also → p7
        assert_eq!(t.on_reclaim(&reclaim(7)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(7)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(7)), ReclaimDecision::Free);
    }

    #[test]
    fn overlapping_epochs_do_not_free_early() {
        // The case a boolean bit-vector gets wrong: r12 maps to P, is
        // redefined (in flight), and maps back to P before the redefiner
        // commits.
        let mut t = Mit::new(4);
        assert!(t.try_share(&me(9, 11, 12))); // r11, r12 → p9 (2 mappings)
        assert!(t.try_share(&me(9, 12, 11))); // r12 → p9 again (3 mappings)

        // Commits arrive in order: the old r12 epoch dies first.
        assert_eq!(t.on_reclaim(&reclaim(9)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(9)), ReclaimDecision::Keep);
        // Two mappings (r11, new r12) were destroyed above; the third frees.
        assert_eq!(t.on_reclaim(&reclaim(9)), ReclaimDecision::Free);
    }

    #[test]
    fn restore_drops_wrong_path_entries() {
        let mut t = Mit::new(4);
        let ck = t.checkpoint();
        assert!(t.try_share(&me(3, 1, 2))); // wrong path
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert_eq!(t.shared_count(), 0);
    }

    #[test]
    fn commit_flush_restores_architectural_image() {
        let mut t = Mit::new(4);
        assert!(t.try_share(&me(3, 1, 2)));
        t.on_sharer_commit(&me(3, 1, 2));
        assert!(t.try_share(&me(3, 4, 1))); // speculative, squashed by flush
        let mut freed = Vec::new();
        t.restore_to_committed(&mut freed);
        assert!(t.is_shared(RegClass::Int, PhysReg::new(3)));
        assert_eq!(t.on_reclaim(&reclaim(3)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(3)), ReclaimDecision::Free);
    }

    #[test]
    fn storage_is_small_but_checkpoints_are_fat() {
        let t = Mit::new(8);
        let s = t.storage();
        // Checkpoints cost #arch_reg bits per entry — more than the ISRB's
        // 3 bits per entry, the paper's point.
        assert_eq!(s.per_checkpoint_bits, 8 * 32);
    }
}

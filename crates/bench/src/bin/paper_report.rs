//! Generates a compact paper-vs-measured report (the source material for
//! EXPERIMENTS.md) across the headline experiments, using reduced windows.
//!
//! ```sh
//! REGSHARE_MEASURE=120000 cargo run --release -p regshare-bench --bin paper_report
//! ```

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::CoreConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    println!("# Paper-vs-measured headline summary\n");
    println!(
        "window: {} warmup + {} measured µ-ops per run\n",
        window.warmup, window.measure
    );

    let mut both32 = Vec::new();
    let mut both_unl = Vec::new();
    let mut max32: (f64, &str) = (0.0, "-");
    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "me_unl%",
        "smb_unl%",
        "both32%",
        "both_unl%",
    ]);
    for wl in suite() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let me = measure(
            &wl,
            CoreConfig::hpca16().with_me().with_isrb_entries(0),
            window,
        );
        let smb = measure(
            &wl,
            CoreConfig::hpca16().with_smb().with_isrb_entries(0),
            window,
        );
        let b32 = measure(
            &wl,
            CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_isrb_entries(32),
            window,
        );
        let bun = measure(
            &wl,
            CoreConfig::hpca16()
                .with_me()
                .with_smb()
                .with_isrb_entries(0),
            window,
        );
        let s32 = speedup_pct(base.ipc(), b32.ipc());
        let sun = speedup_pct(base.ipc(), bun.ipc());
        both32.push(1.0 + s32 / 100.0);
        both_unl.push(1.0 + sun / 100.0);
        if s32 > max32.0 {
            max32 = (s32, wl.name);
        }
        t.row(vec![
            wl.name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:+.2}", speedup_pct(base.ipc(), me.ipc())),
            format!("{:+.2}", speedup_pct(base.ipc(), smb.ipc())),
            format!("{s32:+.2}"),
            format!("{sun:+.2}"),
        ]);
    }
    t.print();
    let g32 = (geomean(&both32).unwrap_or(1.0) - 1.0) * 100.0;
    let gun = (geomean(&both_unl).unwrap_or(1.0) - 1.0) * 100.0;
    println!("combined ME+SMB, 32-entry ISRB: geomean {g32:+.2}% (paper: +5.5%), max {:+.2}% on {} (paper: up to +39.6%)", max32.0, max32.1);
    println!("combined ME+SMB, unlimited:     geomean {gun:+.2}% (paper: +5.6%)");
}

//! Persistent simulation daemon with a content-addressed result cache.
//!
//! Batch binaries pay the full sweep cost on every invocation even when
//! most of the matrix was simulated before. This crate keeps a process
//! (and an on-disk cache) alive between requests instead:
//!
//! * [`cache`] — one file per simulated cell, addressed by
//!   [`regshare_bench::cell_digest`] (workload × config digest × window),
//!   written atomically, validated on read with the snapshot layer's
//!   typed errors, LRU-evicted under an optional byte cap. Because the
//!   sweep engine is deterministic, a cache hit is byte-identical to a
//!   recomputation — caching is invisible in the output.
//! * [`engine`] — the scheduler: per-cell cache lookup, coalescing of
//!   concurrent identical requests onto one computation, a bounded
//!   worker pool behind admission control (typed
//!   [`ServeError::Busy`] when full), per-request deadlines
//!   ([`ServeError::Timeout`] — abandoned cells still finish and warm
//!   the cache).
//! * [`protocol`] — the line-delimited wire format. The `.scenario`
//!   text format *is* the request body, so anything checked in under
//!   `scenarios/` can be piped to the daemon as-is.
//! * [`server`] / [`client`] — a thread-per-connection TCP or
//!   Unix-socket listener and the matching synchronous client.
//!
//! The `serve` binary wraps it all: `serve --listen <addr>` runs the
//! daemon, `serve --client <addr> --scenario <file>` submits a request
//! (body to stdout, provenance meta line to stderr).

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use cache::{Cache, CacheError};
pub use client::Connection;
pub use engine::{Engine, EngineConfig, Format, ServeError, ServeResponse};
pub use protocol::{Reply, Request};
pub use server::{Server, ServerStop};

//! Facade crate re-exporting the whole `regshare` workspace.
//!
//! `regshare` reproduces Perais & Seznec, *Cost Effective Physical Register
//! Sharing* (HPCA 2016): an out-of-order core in which move elimination and
//! speculative memory bypassing let several architectural registers map to
//! one physical register, with the paper's Irredundant Shared Register
//! Buffer (ISRB) doing the reference counting that makes reclaiming those
//! registers safe.
//!
//! Each subsystem lives in its own workspace crate; this crate only renames
//! them under one roof so downstream code and the repo-level examples can
//! write `regshare::core::Simulator` instead of depending on every crate
//! individually:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `regshare-types` | register/sequence identifiers, hashing, counters, stats |
//! | [`isa`] | `regshare-isa` | µ-op ISA, programs, in-order oracle interpreter |
//! | [`mem`] | `regshare-mem` | L1/L2/DRAM timing model, MSHRs, prefetcher |
//! | [`predictors`] | `regshare-predictors` | TAGE, BTB, return-address stack, Store Sets |
//! | [`distance`] | `regshare-distance` | instruction-distance prediction for bypassing |
//! | [`refcount`] | `regshare-refcount` | the ISRB and the baseline sharing trackers |
//! | [`core`] | `regshare-core` | the cycle-level out-of-order core simulator |
//! | [`workloads`] | `regshare-workloads` | synthetic SPEC-like workload suite |
//! | [`mod@bench`] | `regshare-bench` | measurement harness and the deterministic parallel sweep engine |
//!
//! # Examples
//!
//! ```
//! use regshare::core::{CoreConfig, Simulator};
//! use regshare::workloads;
//!
//! let wl = workloads::mini();
//! let program = wl.build();
//! let mut sim = Simulator::new(&program, CoreConfig::hpca16().with_me().with_smb());
//! let run = sim.run(1_000);
//! assert_eq!(run.committed, 1_000);
//! ```

#![deny(missing_docs)]

pub use regshare_bench as bench;
pub use regshare_core as core;
pub use regshare_distance as distance;
pub use regshare_isa as isa;
pub use regshare_mem as mem;
pub use regshare_predictors as predictors;
pub use regshare_refcount as refcount;
pub use regshare_types as types;
pub use regshare_workloads as workloads;

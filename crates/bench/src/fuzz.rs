//! The differential conformance harness behind `regshare-fuzz`.
//!
//! Every generated program ([`regshare_workloads::fuzz`]) is run through
//! the out-of-order simulator under **all five tracker presets**
//! ([`crate::scenario::CONFIG_PRESETS`]: baseline, ME, SMB, ME+SMB, lazy
//! reclaim) and cross-checked against the in-order oracle on two axes:
//!
//! - the **architectural digest** ([`regshare_isa::Machine::run_digest`] vs
//!   `Simulator::arch_digest`) — the committed trace must be the in-order
//!   trace, µ-op for µ-op;
//! - the **register audit** (`Simulator::audit_registers`) — the tracker
//!   must never have freed a physical register with live consumers, which
//!   is the paper's core safety claim.
//!
//! A divergence is minimized by a **greedy shrinker** over the generated
//! plan: blocks are removed one at a time and trip counts capped while the
//! failure persists. Because each block's code is emitted from its own
//! salt-seeded RNG, removals never perturb the survivors, so the final
//! [`ShrinkSpec`] plus the original `(profile, seed)` is a complete, small
//! reproducer — exactly what the failure report prints as a command line.
//!
//! [`run_cases`] fans a case list across a worker pool with the same
//! determinism discipline as the sweep engine: results merge by case index,
//! so reports are byte-identical at any parallelism level.

use crate::options::RunOptions;
use crate::scenario::{VariantSpec, CONFIG_PRESETS};
use regshare_core::{CoreConfig, Simulator};
use regshare_isa::interp::Machine;
use regshare_workloads::fuzz::{FuzzPlan, FuzzSpec, ShrinkSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// The preset used for deterministic fault injection (the most aggressive
/// sharing point — also the last one checked, so real divergences in the
/// other presets still surface first under injection).
pub const INJECT_PRESET: &str = "lazy_reclaim";

/// The five tracker presets every generated program is checked under, in
/// [`CONFIG_PRESETS`] order.
pub fn tracker_presets() -> Vec<(&'static str, CoreConfig)> {
    CONFIG_PRESETS
        .iter()
        .map(|(name, _)| {
            let cfg = VariantSpec::preset(*name)
                .to_config()
                .expect("built-in presets are valid");
            cfg.validate().expect("built-in presets validate");
            (*name, cfg)
        })
        .collect()
}

/// How one preset diverged from the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The simulator committed fewer µ-ops than asked (a deadlock).
    ShortRun {
        /// µ-ops actually committed.
        committed: u64,
    },
    /// The committed trace differs from the in-order trace.
    DigestMismatch {
        /// Oracle digest.
        expected: u64,
        /// Simulator digest.
        got: u64,
    },
    /// Register accounting failed after the run.
    AuditFailed(String),
}

/// A divergence: which preset failed, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Preset label (see [`CONFIG_PRESETS`]).
    pub preset: String,
    /// Failure detail.
    pub kind: DivergenceKind,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            DivergenceKind::ShortRun { committed } => {
                write!(
                    f,
                    "preset {}: short run ({committed} committed)",
                    self.preset
                )
            }
            DivergenceKind::DigestMismatch { expected, got } => write!(
                f,
                "preset {}: digest mismatch (oracle {expected:#018x}, sim {got:#018x})",
                self.preset
            ),
            DivergenceKind::AuditFailed(msg) => {
                write!(f, "preset {}: register audit failed: {msg}", self.preset)
            }
        }
    }
}

/// Knobs for one differential pass.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// µ-ops run per (program, preset) — and per oracle replay.
    pub uops: u64,
    /// Worker threads for [`run_cases`] (does not affect results).
    pub jobs: usize,
    /// Deterministic self-test fault: flips the computed digest of
    /// [`INJECT_PRESET`] so the divergence → shrink → reproduce pipeline
    /// can be exercised end to end without a real simulator bug.
    pub inject_fault: bool,
    /// Budget of differential checks a single shrink may spend.
    pub max_shrink_checks: usize,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            uops: 4_000,
            jobs: RunOptions::default().job_count(),
            inject_fault: false,
            max_shrink_checks: 200,
        }
    }
}

/// Differentially checks one plan under every tracker preset. `None` means
/// the plan conforms.
pub fn check_plan(plan: &FuzzPlan, opts: &FuzzOptions) -> Option<Divergence> {
    let program = plan.build();
    let expected = Machine::new(Arc::new(program.clone())).run_digest(opts.uops);
    for (preset, cfg) in tracker_presets() {
        let mut sim = Simulator::new(&program, cfg);
        let stats = sim.run(opts.uops);
        if stats.committed != opts.uops {
            return Some(Divergence {
                preset: preset.to_string(),
                kind: DivergenceKind::ShortRun {
                    committed: stats.committed,
                },
            });
        }
        let mut got = sim.arch_digest();
        if opts.inject_fault && preset == INJECT_PRESET {
            got ^= 1;
        }
        if got != expected {
            return Some(Divergence {
                preset: preset.to_string(),
                kind: DivergenceKind::DigestMismatch { expected, got },
            });
        }
        if let Err(msg) = sim.audit_registers() {
            return Some(Divergence {
                preset: preset.to_string(),
                kind: DivergenceKind::AuditFailed(msg),
            });
        }
    }
    None
}

/// Differentially checks one spec with an optional shrink applied.
pub fn check_spec(spec: &FuzzSpec, shrink: &ShrinkSpec, opts: &FuzzOptions) -> Option<Divergence> {
    check_plan(&spec.plan().apply(shrink), opts)
}

/// The outcome of shrinking a failing case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkReport {
    /// The minimizing spec (replayable via `--shrink`).
    pub spec: ShrinkSpec,
    /// Blocks in the original plan.
    pub blocks_before: usize,
    /// Blocks surviving the shrink.
    pub blocks_after: usize,
    /// Differential checks spent.
    pub checks: usize,
}

/// Greedily minimizes a failing case: one pass loop removing blocks while
/// the divergence persists, then the smallest power-of-two trip cap that
/// still fails. Returns `None` if the unshrunk case does not fail (nothing
/// to minimize).
pub fn shrink(spec: &FuzzSpec, opts: &FuzzOptions) -> Option<ShrinkReport> {
    let plan = spec.plan();
    check_plan(&plan, opts)?;
    Some(shrink_failing_plan(&plan, opts))
}

/// The shrink search proper, for a plan already known to fail — callers
/// that just observed the divergence (the batch runner) skip the redundant
/// full re-check [`shrink`] performs as its entry gate.
fn shrink_failing_plan(plan: &FuzzPlan, opts: &FuzzOptions) -> ShrinkReport {
    let mut checks = 0usize;
    fn check(
        plan: &FuzzPlan,
        opts: &FuzzOptions,
        checks: &mut usize,
        shrink_spec: &ShrinkSpec,
    ) -> Option<Divergence> {
        *checks += 1;
        check_plan(&plan.apply(shrink_spec), opts)
    }
    let blocks_before = plan.blocks.len();

    let mut keep: Vec<usize> = plan.blocks.iter().map(|b| b.index).collect();
    let mut changed = true;
    while changed && checks < opts.max_shrink_checks {
        changed = false;
        let mut i = 0;
        while i < keep.len() && checks < opts.max_shrink_checks {
            let mut candidate = keep.clone();
            candidate.remove(i);
            let spec_try = ShrinkSpec {
                keep: Some(candidate.clone()),
                trip_cap: None,
            };
            if check(plan, opts, &mut checks, &spec_try).is_some() {
                keep = candidate; // removal keeps the failure: leave it out
                changed = true;
            } else {
                i += 1;
            }
        }
    }

    let mut trip_cap = None;
    for cap in [1u64, 2, 4, 8, 16] {
        if checks >= opts.max_shrink_checks {
            break;
        }
        let spec_try = ShrinkSpec {
            keep: Some(keep.clone()),
            trip_cap: Some(cap),
        };
        if check(plan, opts, &mut checks, &spec_try).is_some() {
            trip_cap = Some(cap);
            break;
        }
    }

    let blocks_after = keep.len();
    ShrinkReport {
        spec: ShrinkSpec {
            keep: (blocks_after < blocks_before).then_some(keep),
            trip_cap,
        },
        blocks_before,
        blocks_after,
        checks,
    }
}

/// One fuzzed case's outcome: conforming, or a divergence with its shrink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// The case.
    pub spec: FuzzSpec,
    /// The divergence of the *unshrunk* case, with the shrink report, when
    /// the case failed.
    pub failure: Option<(Divergence, ShrinkReport)>,
}

impl CaseResult {
    /// The `fuzz` binary argument string that replays this failure (shrunk
    /// when the shrinker found a smaller plan).
    pub fn repro_args(&self, opts: &FuzzOptions) -> String {
        let (_, shrink_report) = self.failure.as_ref().expect("repro of a failing case");
        let mut args = format!(
            "--profile {} --seed {} --uops {}",
            self.spec.profile, self.spec.seed, opts.uops
        );
        if !shrink_report.spec.is_noop() {
            args.push_str(&format!(" --shrink \"{}\"", shrink_report.spec));
        }
        if opts.inject_fault {
            args.push_str(" --inject-fault");
        }
        args
    }
}

/// Checks every case on a worker pool (shrinking failures in place) and
/// merges results **by case index**, so the output — and therefore
/// [`render_report`] — is byte-identical at any `jobs` level, mirroring the
/// sweep engine's determinism guarantee.
pub fn run_cases(specs: &[FuzzSpec], opts: &FuzzOptions) -> Vec<CaseResult> {
    let workers = opts.jobs.max(1).min(specs.len().max(1));
    let mut results: Vec<Option<CaseResult>> = Vec::with_capacity(specs.len());
    results.resize_with(specs.len(), || None);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, CaseResult)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let opts = &*opts;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let spec = specs[i].clone();
                let plan = spec.plan();
                let failure = check_plan(&plan, opts)
                    .map(|divergence| (divergence, shrink_failing_plan(&plan, opts)));
                let _ = tx.send((i, CaseResult { spec, failure }));
            });
        }
        drop(tx);
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all fuzz cases completed"))
        .collect()
}

/// Renders the stable differential report: a per-profile tally, then one
/// block per failure (divergence, shrink summary, repro command line).
/// Depends only on the case list and options — never on timing or worker
/// count.
pub fn render_report(results: &[CaseResult], opts: &FuzzOptions) -> String {
    let presets = tracker_presets().len();
    let mut out = String::new();
    out.push_str("# regshare-fuzz differential\n");
    out.push_str(&format!(
        "programs: {}  presets: {presets}  uops/run: {}\n",
        results.len(),
        opts.uops
    ));
    if opts.inject_fault {
        out.push_str("fault injection: ON (self-test of the divergence pipeline)\n");
    }
    // Per-profile tally in first-seen order.
    let mut profiles: Vec<(String, usize, usize)> = Vec::new();
    for r in results {
        match profiles.iter_mut().find(|(p, _, _)| *p == r.spec.profile) {
            Some((_, total, failed)) => {
                *total += 1;
                *failed += usize::from(r.failure.is_some());
            }
            None => profiles.push((r.spec.profile.clone(), 1, usize::from(r.failure.is_some()))),
        }
    }
    for (profile, total, failed) in &profiles {
        if *failed == 0 {
            out.push_str(&format!("  {profile:<10} {total:>5} programs ok\n"));
        } else {
            out.push_str(&format!(
                "  {profile:<10} {total:>5} programs, {failed} DIVERGED\n"
            ));
        }
    }
    let failures: Vec<&CaseResult> = results.iter().filter(|r| r.failure.is_some()).collect();
    if failures.is_empty() {
        out.push_str("all programs conform to the in-order oracle\n");
    } else {
        out.push_str(&format!("\n{} failing case(s):\n", failures.len()));
        for r in &failures {
            let (divergence, shrink_report) = r.failure.as_ref().expect("filtered");
            out.push_str(&format!("FAIL {}: {divergence}\n", r.spec.name()));
            out.push_str(&format!(
                "  shrunk {} -> {} blocks{}  ({} checks)\n",
                shrink_report.blocks_before,
                shrink_report.blocks_after,
                match shrink_report.spec.trip_cap {
                    Some(cap) => format!(", trips<={cap}"),
                    None => String::new(),
                },
                shrink_report.checks
            ));
            out.push_str(&format!("  repro: fuzz {}\n", r.repro_args(opts)));
        }
    }
    out
}

/// The repro lines for every failing case — one per line, each a complete
/// `fuzz` argument string. This is the failing-seed artifact CI uploads.
pub fn failure_artifact(results: &[CaseResult], opts: &FuzzOptions) -> String {
    results
        .iter()
        .filter(|r| r.failure.is_some())
        .map(|r| format!("{}\n", r.repro_args(opts)))
        .collect()
}

/// Expands `(profiles × seeds)` into a case list in deterministic order:
/// profiles in registry order, seeds ascending within each profile.
pub fn case_matrix(profiles: &[String], seed_base: u64, seeds_per_profile: u64) -> Vec<FuzzSpec> {
    let mut specs = Vec::new();
    for profile in profiles {
        for i in 0..seeds_per_profile {
            specs.push(FuzzSpec {
                profile: profile.clone(),
                seed: seed_base.wrapping_add(i),
            });
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> FuzzOptions {
        FuzzOptions {
            uops: 1_500,
            jobs: 2,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn presets_cover_the_paper_matrix() {
        let presets = tracker_presets();
        assert_eq!(presets.len(), 5);
        assert!(presets.iter().any(|(n, _)| *n == INJECT_PRESET));
        let lazy = &presets
            .iter()
            .find(|(n, _)| *n == "lazy_reclaim")
            .unwrap()
            .1;
        assert!(lazy.smb && lazy.smb_from_committed);
    }

    #[test]
    fn conforming_case_passes_and_injected_fault_fails() {
        let spec = FuzzSpec::new("balanced", 5).unwrap();
        let opts = quick_opts();
        assert_eq!(check_plan(&spec.plan(), &opts), None);

        let inject = FuzzOptions {
            inject_fault: true,
            ..opts
        };
        let d = check_plan(&spec.plan(), &inject).expect("injected fault diverges");
        assert_eq!(d.preset, INJECT_PRESET);
        assert!(matches!(d.kind, DivergenceKind::DigestMismatch { .. }));
    }

    #[test]
    fn shrink_minimizes_and_the_spec_replays() {
        let spec = FuzzSpec::new("memory", 3).unwrap();
        let opts = FuzzOptions {
            inject_fault: true,
            ..quick_opts()
        };
        assert!(shrink(&spec, &quick_opts()).is_none(), "healthy case");
        let report = shrink(&spec, &opts).expect("injected failure shrinks");
        assert!(report.blocks_after <= report.blocks_before);
        assert!(report.checks <= opts.max_shrink_checks);
        // The printed spec round-trips and still reproduces the failure.
        let replayed: ShrinkSpec = report.spec.to_string().parse().unwrap();
        assert_eq!(replayed, report.spec);
        assert!(check_spec(&spec, &replayed, &opts).is_some());
    }

    #[test]
    fn run_cases_is_deterministic_across_jobs() {
        let specs = case_matrix(&["balanced".into(), "branchy".into()], 1, 3);
        assert_eq!(specs.len(), 6);
        let a = run_cases(
            &specs,
            &FuzzOptions {
                jobs: 1,
                ..quick_opts()
            },
        );
        let b = run_cases(
            &specs,
            &FuzzOptions {
                jobs: 4,
                ..quick_opts()
            },
        );
        assert_eq!(a, b);
        assert_eq!(
            render_report(&a, &quick_opts()),
            render_report(&b, &quick_opts())
        );
        assert!(failure_artifact(&a, &quick_opts()).is_empty());
    }
}

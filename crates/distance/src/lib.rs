//! Instruction Distance prediction for Speculative Memory Bypassing (§3).
//!
//! Two components, mirroring the paper's Figure 1 infrastructure:
//!
//! - the commit-side **Data Dependency Table** ([`Ddt`]) plus the CSN-holding
//!   **Commit Rename Map** ([`CsnMap`]) identify store-load / load-load
//!   producer pairs after retirement and compute the *Instruction Distance*
//!   (in commit-order µ-ops) between a load and the producer of its data;
//! - a front-end **distance predictor** ([`DistancePredictor`]) predicts
//!   that distance for each load at rename. Two implementations are
//!   provided: the NoSQ-style two-table predictor ([`NosqDistance`]) and the
//!   paper's TAGE-like predictor ([`TageDistance`]), which indexes five
//!   tagged components with mixes of global branch history and path history.

#![deny(missing_docs)]

pub mod csn;
pub mod ddt;
pub mod nosq;
pub mod tage_like;

pub use csn::CsnMap;
pub use ddt::{Ddt, DdtConfig};
pub use nosq::{NosqConfig, NosqDistance};
pub use tage_like::{TageDistance, TageDistanceConfig};

use regshare_types::{Addr, HistorySnapshot};

/// A front-end instruction-distance predictor.
///
/// `predict` is consulted at rename with the load's PC and its fetch-time
/// history snapshot; it returns a distance only when the predictor is
/// confident (saturated confidence counter, §3.1). `train` is called at the
/// load's commit with the architectural distance extracted through the DDT.
pub trait DistancePredictor: std::fmt::Debug {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Confident predicted distance for the load at `pc`, if any.
    fn predict(&mut self, pc: Addr, hist: HistorySnapshot) -> Option<u64>;

    /// Trains with the observed architectural distance (`None` when the DDT
    /// had no pair for this load — trains toward "do not bypass").
    fn train(&mut self, pc: Addr, hist: HistorySnapshot, observed: Option<u64>);

    /// Storage in bits (paper: 12.2KB TAGE-like vs 17KB NoSQ-style).
    fn storage_bits(&self) -> usize;

    /// Serializes the full predictor state for checkpointing.
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter);

    /// Restores state saved by [`Self::save_state`] into a predictor built
    /// from the same configuration.
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError>;
}

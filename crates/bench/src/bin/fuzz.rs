//! `regshare-fuzz` front door: differential conformance fuzzing of the
//! out-of-order simulator against the in-order oracle.
//!
//! Three modes:
//!
//! - **smoke** (default): a fixed `(profiles × seeds)` matrix — 100 seeds
//!   per built-in profile, 5 tracker presets each — designed to gate PRs
//!   in under a minute. Output is byte-identical at any `--jobs` level.
//! - **soak** (`--soak --budget-secs N`): keeps drawing fresh seed batches
//!   until the time budget runs out; the nightly CI job runs this.
//! - **repro** (`--profile P --seed N [--shrink SPEC]`): replays one case,
//!   exactly as printed in a failure report.
//!
//! On divergence the process exits 1 after printing (and, with
//! `--artifact`, writing) one replayable repro line per failing seed.
//! `--inject-fault` flips the digest of one preset deterministically so CI
//! can prove the whole divergence → shrink → reproduce pipeline works.

use regshare_bench::fuzz::{
    case_matrix, check_spec, failure_artifact, render_report, run_cases, shrink, FuzzOptions,
};
use regshare_bench::RunOptions;
use regshare_workloads::fuzz::{profile_names, profiles, FuzzSpec, ShrinkSpec};

const USAGE: &str = "usage: fuzz [mode] [options]
modes:
  (default)                smoke: fixed seed matrix, PR gate
  --soak                   run until --budget-secs is spent (nightly)
  --profile P --seed N     repro one case (add --shrink \"SPEC\" from a report)
options:
  --profiles a,b,c   profiles to draw from (default: all built-ins)
  --seeds N          seeds per profile for smoke/soak batches (default 100)
  --seed-base B      first seed (default 1)
  --uops N           µ-ops per (program, preset) run (default 4000)
  --jobs N           worker threads (default: REGSHARE_JOBS or all cores)
  --budget-secs S    soak time budget (default 600)
  --resume PATH      soak: seed-cursor file; if it exists, continue from its
                     recorded seed instead of --seed-base, and keep it
                     updated so the next soak picks up where this one ends
  --checkpoint-every N  soak: batches between cursor writes (default 1)
  --artifact PATH    write failing-seed repro lines to PATH
  --inject-fault     deterministic self-test fault (pipeline proof)
  --shrink SPEC      repro mode: apply a printed shrink spec
  --list-profiles    list generator profiles and exit
  --help             this text";

struct Args {
    profiles: Vec<String>,
    seeds: u64,
    seed_base: u64,
    uops: u64,
    jobs: usize,
    soak: bool,
    budget_secs: u64,
    resume: Option<String>,
    checkpoint_every: u64,
    artifact: Option<String>,
    inject_fault: bool,
    repro: Option<(String, u64)>,
    shrink: Option<ShrinkSpec>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        profiles: profile_names().iter().map(|s| s.to_string()).collect(),
        seeds: 100,
        seed_base: 1,
        uops: 4_000,
        jobs: RunOptions::default().job_count(),
        soak: false,
        budget_secs: 600,
        resume: None,
        checkpoint_every: 1,
        artifact: None,
        inject_fault: false,
        repro: None,
        shrink: None,
    };
    let mut repro_profile: Option<String> = None;
    let mut repro_seed: Option<u64> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--profiles" => {
                let v = value(&mut i)?;
                args.profiles = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--seeds" => {
                let v = value(&mut i)?;
                args.seeds = v.parse().map_err(|_| format!("bad --seeds {v:?}"))?;
            }
            "--seed-base" => {
                let v = value(&mut i)?;
                args.seed_base = v.parse().map_err(|_| format!("bad --seed-base {v:?}"))?;
            }
            "--uops" => {
                let v = value(&mut i)?;
                args.uops = v.parse().map_err(|_| format!("bad --uops {v:?}"))?;
            }
            "--jobs" => {
                let v = value(&mut i)?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs {v:?}"))?;
                // Same typed rejection as every other front door.
                args.jobs = RunOptions::default()
                    .try_jobs(n)
                    .map_err(|e| format!("--jobs: {e}"))?
                    .job_count();
            }
            "--soak" => args.soak = true,
            "--budget-secs" => {
                let v = value(&mut i)?;
                args.budget_secs = v.parse().map_err(|_| format!("bad --budget-secs {v:?}"))?;
            }
            "--resume" => args.resume = Some(value(&mut i)?),
            "--checkpoint-every" => {
                let v = value(&mut i)?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every {v:?}"))?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".to_string());
                }
                args.checkpoint_every = n;
            }
            "--artifact" => args.artifact = Some(value(&mut i)?),
            "--inject-fault" => args.inject_fault = true,
            "--profile" => repro_profile = Some(value(&mut i)?),
            "--seed" => {
                let v = value(&mut i)?;
                repro_seed = Some(v.parse().map_err(|_| format!("bad --seed {v:?}"))?);
            }
            "--shrink" => {
                let v = value(&mut i)?;
                args.shrink = Some(v.parse().map_err(|e| format!("bad --shrink: {e}"))?);
            }
            "--list-profiles" => {
                println!("fuzz generator profiles (workload names: fuzz-<profile>-<seed>):");
                for p in profiles() {
                    println!("  {:<10} {}", p.name, p.description);
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    match (repro_profile, repro_seed) {
        (Some(p), Some(s)) => args.repro = Some((p, s)),
        (None, None) => {
            if args.shrink.is_some() {
                return Err("--shrink needs --profile and --seed".to_string());
            }
        }
        _ => return Err("repro mode needs both --profile and --seed".to_string()),
    }
    if args.uops == 0 {
        return Err("--uops must be at least 1".to_string());
    }
    if args.resume.is_some() && !args.soak {
        return Err("--resume only applies to --soak mode".to_string());
    }
    Ok(Some(args))
}

/// The soak seed cursor: where the next batch starts, plus a running
/// program count, persisted so a nightly soak continues the seed space
/// where the previous one stopped instead of re-fuzzing the same seeds.
struct Cursor {
    seed_base: u64,
    programs: u64,
}

/// Reads a cursor file. `Ok(None)` when the file does not exist (first
/// soak); malformed content is an error, never a silent restart.
fn load_cursor(path: &str) -> Result<Option<Cursor>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read cursor {path:?}: {e}")),
    };
    let mut seed_base: Option<u64> = None;
    let mut programs: Option<u64> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, v) = line
            .split_once('=')
            .ok_or_else(|| format!("cursor {path:?} line {}: expected key = value", lineno + 1))?;
        let v = v.trim();
        let parsed = v
            .parse::<u64>()
            .map_err(|_| format!("cursor {path:?} line {}: bad integer {v:?}", lineno + 1))?;
        match key.trim() {
            "seed_base" => seed_base = Some(parsed),
            "programs" => programs = Some(parsed),
            other => {
                return Err(format!(
                    "cursor {path:?} line {}: unknown key {other:?}",
                    lineno + 1
                ))
            }
        }
    }
    let seed_base = seed_base.ok_or_else(|| format!("cursor {path:?} has no seed_base"))?;
    Ok(Some(Cursor {
        seed_base,
        programs: programs.unwrap_or(0),
    }))
}

/// Writes the cursor atomically (`.tmp` + rename), so a kill mid-write
/// never leaves a torn cursor.
fn write_cursor(path: &str, cursor: &Cursor) -> Result<(), String> {
    let text = format!(
        "# regshare-fuzz seed cursor — next soak resumes here.\n\
         seed_base = {}\nprograms = {}\n",
        cursor.seed_base, cursor.programs
    );
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write cursor {tmp:?}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace cursor {path:?}: {e}"))
}

fn write_artifact(path: &str, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("fuzz: cannot write artifact {path:?}: {e}");
    } else {
        eprintln!("fuzz: wrote failing-seed artifact {path:?}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return,
        Err(msg) => {
            eprintln!("fuzz: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let opts = FuzzOptions {
        uops: args.uops,
        jobs: args.jobs,
        inject_fault: args.inject_fault,
        ..FuzzOptions::default()
    };

    // Repro mode: one case, exactly as a report printed it.
    if let Some((profile, seed)) = &args.repro {
        let spec = match FuzzSpec::new(profile.clone(), *seed) {
            Ok(spec) => spec,
            Err(name) => {
                eprintln!(
                    "fuzz: unknown profile {name:?} (known: {})",
                    profile_names().join(", ")
                );
                std::process::exit(2);
            }
        };
        let shrink_spec = args.shrink.clone().unwrap_or_default();
        println!("# regshare-fuzz repro");
        println!(
            "case: {}  uops: {}  shrink: {}",
            spec.name(),
            opts.uops,
            if shrink_spec.is_noop() {
                "(none)".to_string()
            } else {
                shrink_spec.to_string()
            }
        );
        match check_spec(&spec, &shrink_spec, &opts) {
            None => println!("case conforms to the in-order oracle"),
            Some(divergence) => {
                println!("DIVERGED: {divergence}");
                if args.shrink.is_none() {
                    if let Some(report) = shrink(&spec, &opts) {
                        println!(
                            "shrunk {} -> {} blocks; minimal repro: fuzz --profile {} --seed {} \
                             --uops {} --shrink \"{}\"{}",
                            report.blocks_before,
                            report.blocks_after,
                            spec.profile,
                            spec.seed,
                            opts.uops,
                            report.spec,
                            if opts.inject_fault {
                                " --inject-fault"
                            } else {
                                ""
                            },
                        );
                    }
                }
                std::process::exit(1);
            }
        }
        return;
    }

    for profile in &args.profiles {
        if !profile_names().contains(&profile.as_str()) {
            eprintln!(
                "fuzz: unknown profile {profile:?} (known: {})",
                profile_names().join(", ")
            );
            std::process::exit(2);
        }
    }

    if args.soak {
        // Soak: fresh seed batches until the budget is spent. With
        // --resume, the seed cursor persists across soaks so consecutive
        // nightlies walk fresh seed space instead of restarting at
        // --seed-base every time.
        let start = std::time::Instant::now();
        let budget = std::time::Duration::from_secs(args.budget_secs);
        let mut cursor = Cursor {
            seed_base: args.seed_base,
            programs: 0,
        };
        if let Some(path) = &args.resume {
            match load_cursor(path) {
                Ok(Some(resumed)) => {
                    eprintln!(
                        "fuzz: resuming seed cursor from {path:?}: seed_base {} \
                         ({} programs fuzzed so far)",
                        resumed.seed_base, resumed.programs
                    );
                    cursor = resumed;
                }
                Ok(None) => eprintln!("fuzz: no cursor at {path:?} yet, starting fresh"),
                Err(msg) => {
                    eprintln!("fuzz: {msg}");
                    std::process::exit(2);
                }
            }
        }
        let mut total = 0usize;
        let mut all_failures = String::new();
        let mut failed = 0usize;
        let mut batches_since_write = 0u64;
        while start.elapsed() < budget {
            let specs = case_matrix(&args.profiles, cursor.seed_base, args.seeds);
            let results = run_cases(&specs, &opts);
            total += results.len();
            let batch_failures = failure_artifact(&results, &opts);
            failed += results.iter().filter(|r| r.failure.is_some()).count();
            if !batch_failures.is_empty() {
                print!("{}", render_report(&results, &opts));
                all_failures.push_str(&batch_failures);
                // Rewrite the artifact after every failing batch: a CI
                // timeout mid-soak must not lose already-found repro lines.
                if let Some(path) = &args.artifact {
                    write_artifact(path, &all_failures);
                }
            }
            eprintln!(
                "fuzz: soak {total} programs, {failed} diverged, {:.0}s elapsed",
                start.elapsed().as_secs_f64()
            );
            cursor.seed_base = cursor.seed_base.wrapping_add(args.seeds);
            cursor.programs += results.len() as u64;
            batches_since_write += 1;
            if let Some(path) = &args.resume {
                if batches_since_write >= args.checkpoint_every {
                    if let Err(msg) = write_cursor(path, &cursor) {
                        eprintln!("fuzz: {msg}");
                    }
                    batches_since_write = 0;
                }
            }
        }
        if let Some(path) = &args.resume {
            // Final position, regardless of the write cadence.
            if let Err(msg) = write_cursor(path, &cursor) {
                eprintln!("fuzz: {msg}");
            }
        }
        println!(
            "# regshare-fuzz soak: {total} programs x {} presets, {failed} diverged",
            regshare_bench::fuzz::tracker_presets().len()
        );
        if failed > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Smoke: the fixed matrix, deterministic output.
    let specs = case_matrix(&args.profiles, args.seed_base, args.seeds);
    let results = run_cases(&specs, &opts);
    print!("{}", render_report(&results, &opts));
    eprintln!("[fuzz: {} jobs]", opts.jobs);
    let failures = failure_artifact(&results, &opts);
    if !failures.is_empty() {
        if let Some(path) = &args.artifact {
            write_artifact(path, &failures);
        }
        std::process::exit(1);
    }
}

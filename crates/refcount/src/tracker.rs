//! The [`SharingTracker`] trait: the event interface between the core and a
//! register reference-counting scheme.
//!
//! # Event protocol
//!
//! The core drives a tracker with the following events (all physical
//! registers are class-local, so every event carries a [`RegClass`]):
//!
//! - **`on_alloc`** — a physical register was popped from the free list at
//!   rename (possibly on the wrong path).
//! - **`try_share`** — rename wants an additional mapping to an existing
//!   physical register (move elimination or SMB bypass). The tracker may
//!   refuse (structure full, counter saturated, or the scheme cannot track
//!   this kind of sharing), in which case the optimization is aborted —
//!   *not* stalled — exactly as the paper prescribes.
//! - **`on_sharer_commit`** — a µ-op whose `try_share` was accepted has
//!   committed. This maintains the *architectural* reference picture needed
//!   to repair state after commit-time flushes (memory traps, bypass
//!   validation failures), mirroring how the Commit Rename Map repairs the
//!   Rename Map (§4.1).
//! - **`on_reclaim`** — a committing (or lazily release-scanned) µ-op
//!   overwrote an architectural mapping; the tracker decides whether the old
//!   physical register is [`ReclaimDecision::Free`] or must be
//!   [`ReclaimDecision::Keep`]-ed alive.
//! - **`checkpoint` / `restore` / `release_checkpoint`** — branch-scoped
//!   checkpoints. `restore(id)` repairs speculative state and discards `id`
//!   and everything younger; `release_checkpoint(id)` drops the oldest
//!   checkpoint when its branch commits.
//! - **`restore_to_committed`** — a commit-time flush squashed *all*
//!   in-flight µ-ops; speculative tracking state is rebuilt from the
//!   architectural picture.
//! - **`on_squash_share` / `on_squash_alloc`** — walk-based schemes
//!   (per-register counters) are additionally informed of every squashed
//!   µ-op so they can undo its share/allocation; checkpointed schemes
//!   ignore these.
//! - **`recovery_stall_cycles`** — the modelled front-end stall a squash
//!   inflicts beyond checkpoint restoration (zero for checkpointed schemes,
//!   proportional to squashed µ-ops for walk-based ones).

use regshare_types::{ArchReg, PhysReg, RegClass};
use std::fmt;

/// Monotonically increasing checkpoint identifier.
pub type CheckpointId = u64;

/// Locates checkpoint `id` in an id-ordered deque in O(1).
///
/// Ids are allocated monotonically and checkpoints retire from either end
/// (restore pops the youngest suffix, release drops the oldest), so the live
/// ids stay contiguous and `id - front_id` indexes the deque directly. Ids
/// are sorted ascending regardless, so a binary-search backstop keeps the
/// lookup correct even if a caller ever breaks the contiguity pattern.
pub(crate) fn ckpt_pos<T>(
    deque: &std::collections::VecDeque<T>,
    id: CheckpointId,
    id_of: impl FnMut(&T) -> CheckpointId,
) -> Option<usize> {
    let mut id_of = id_of;
    let front = id_of(deque.front()?);
    let pos = usize::try_from(id.checked_sub(front)?).ok()?;
    match deque.get(pos) {
        Some(c) if id_of(c) == id => Some(pos),
        _ => deque.binary_search_by_key(&id, id_of).ok(),
    }
}

/// Outcome of a reclaim request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimDecision {
    /// The physical register has no remaining mappings; push it to the free
    /// list.
    Free,
    /// The register is still referenced by another mapping; do not free it.
    Keep,
}

/// What kind of sharing a [`ShareRequest`] is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareKind {
    /// Move elimination: both architectural registers are visible in the
    /// move instruction (the property the MIT exploits).
    MoveElim {
        /// The move's architectural destination.
        arch_dst: ArchReg,
        /// The move's architectural source.
        arch_src: ArchReg,
    },
    /// Speculative memory bypassing: only the bypassing instruction's
    /// destination is architecturally visible; the original producer's
    /// architectural register may already have been re-renamed.
    Bypass {
        /// The bypassing load's architectural destination.
        arch_dst: ArchReg,
    },
}

/// A rename-time request to add a mapping to an existing physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareRequest {
    /// Register class.
    pub class: RegClass,
    /// The physical register to be shared.
    pub preg: PhysReg,
    /// The kind of sharing.
    pub kind: ShareKind,
}

/// A commit-time (or release-scan-time) request to reclaim the physical
/// register previously mapped to `arch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimRequest {
    /// Register class.
    pub class: RegClass,
    /// The old physical register being reclaimed.
    pub preg: PhysReg,
    /// The architectural register whose mapping was overwritten.
    pub arch: ArchReg,
    /// The overwriting instruction re-mapped `arch` to the *same* physical
    /// register (an eliminated self-move or repeated move): schemes keyed by
    /// architectural names (MIT) must not clear the mapping bit.
    pub renews: bool,
}

/// Storage accounting for a scheme (paper §4.2/§4.3.3 comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageReport {
    /// Bits of always-present state.
    pub main_bits: usize,
    /// Additional bits required per recovery checkpoint.
    pub per_checkpoint_bits: usize,
}

impl StorageReport {
    /// Total bits with `n` live checkpoints.
    pub fn total_bits(&self, checkpoints: usize) -> usize {
        self.main_bits + checkpoints * self.per_checkpoint_bits
    }
}

impl fmt::Display for StorageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits (+{} bits/checkpoint)",
            self.main_bits, self.per_checkpoint_bits
        )
    }
}

/// Counters every tracker maintains (experiment plumbing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerStats {
    /// Shares accepted.
    pub shares_accepted: u64,
    /// Shares rejected because the structure was full.
    pub shares_rejected_full: u64,
    /// Shares rejected because a counter was saturated.
    pub shares_rejected_saturated: u64,
    /// Shares rejected because the scheme cannot track this kind
    /// (e.g. SMB on the MIT).
    pub shares_rejected_kind: u64,
    /// Reclaim requests processed.
    pub reclaims: u64,
    /// Reclaims that matched a tracked (shared) register.
    pub reclaim_cam_hits: u64,
    /// Tracked entries freed (by reclaim or recovery).
    pub entries_freed: u64,
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Restores performed.
    pub restores: u64,
    /// Checkpoint-state writes performed at commit time (the RDA's burden;
    /// zero for the ISRB by construction).
    pub commit_checkpoint_writes: u64,
    /// Peak number of simultaneously tracked registers.
    pub peak_occupancy: usize,
}

impl regshare_types::snapshot::Snap for ShareKind {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        match self {
            ShareKind::MoveElim { arch_dst, arch_src } => {
                w.put_u8(0);
                arch_dst.encode(w);
                arch_src.encode(w);
            }
            ShareKind::Bypass { arch_dst } => {
                w.put_u8(1);
                arch_dst.encode(w);
            }
        }
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        match r.get_u8()? {
            0 => Ok(ShareKind::MoveElim {
                arch_dst: regshare_types::snapshot::Snap::decode(r)?,
                arch_src: regshare_types::snapshot::Snap::decode(r)?,
            }),
            1 => Ok(ShareKind::Bypass {
                arch_dst: regshare_types::snapshot::Snap::decode(r)?,
            }),
            _ => Err(r.corrupt("ShareKind tag")),
        }
    }
}

regshare_types::impl_snap!(ShareRequest { class, preg, kind });

regshare_types::impl_snap!(TrackerStats {
    shares_accepted,
    shares_rejected_full,
    shares_rejected_saturated,
    shares_rejected_kind,
    reclaims,
    reclaim_cam_hits,
    entries_freed,
    checkpoints_taken,
    restores,
    commit_checkpoint_writes,
    peak_occupancy
});

/// A register reference-counting scheme. See the module documentation for
/// the full event protocol.
pub trait SharingTracker: fmt::Debug {
    /// Short scheme name for reports.
    fn name(&self) -> &'static str;

    /// A physical register was allocated from the free list.
    fn on_alloc(&mut self, _class: RegClass, _preg: PhysReg) {}

    /// Rename requests an additional mapping to `req.preg`.
    /// Returns `false` if the share cannot be tracked (optimization aborts).
    fn try_share(&mut self, req: &ShareRequest) -> bool;

    /// A µ-op whose share was accepted has committed. The original request
    /// is passed back so schemes keyed by architectural names (MIT) can
    /// update their architectural image.
    fn on_sharer_commit(&mut self, _req: &ShareRequest) {}

    /// A committing µ-op overwrote the mapping that held `req.preg`.
    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision;

    /// Takes a checkpoint (at a predicted branch).
    fn checkpoint(&mut self) -> CheckpointId;

    /// Restores to checkpoint `id` after a branch misprediction, appending
    /// any registers freed during recovery to `freed`. Discards `id` and all
    /// younger checkpoints.
    fn restore(&mut self, id: CheckpointId, freed: &mut Vec<(RegClass, PhysReg)>);

    /// The branch owning checkpoint `id` committed; drop the checkpoint.
    fn release_checkpoint(&mut self, id: CheckpointId);

    /// A commit-time flush squashed everything in flight; rebuild from the
    /// architectural picture, appending freed registers to `freed`, and drop
    /// all checkpoints.
    fn restore_to_committed(&mut self, freed: &mut Vec<(RegClass, PhysReg)>);

    /// Walk hook: a squashed µ-op's accepted *share* is undone. Returns the
    /// register if the walk discovers it has no remaining mappings (its
    /// original mapping was already reclaimed by a committed instruction, so
    /// the free-list pointer restore does not cover it). Checkpointed
    /// schemes repair through [`SharingTracker::restore`] and ignore this.
    ///
    /// The core drives squash walks in two passes — all shares first, then
    /// all allocations — so a zero count during the share pass is proof that
    /// no squashed allocation still accounts for the register.
    fn on_squash_share(&mut self, _class: RegClass, _preg: PhysReg) -> Option<(RegClass, PhysReg)> {
        None
    }

    /// Walk hook: a squashed µ-op's *allocation* is undone. The register
    /// itself is recovered by the free-list pointer restore (default:
    /// ignore).
    fn on_squash_alloc(&mut self, _class: RegClass, _preg: PhysReg) {}

    /// Pipeline stall (cycles) this scheme adds to a squash of
    /// `squashed_uops` µ-ops, beyond single-cycle checkpoint restoration.
    fn recovery_stall_cycles(&self, _squashed_uops: usize) -> u64 {
        0
    }

    /// Storage accounting.
    fn storage(&self) -> StorageReport;

    /// Whether `preg` currently has more than one (tracked) mapping.
    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool;

    /// Number of currently tracked (shared) registers.
    fn shared_count(&self) -> usize;

    /// Statistics so far.
    fn stats(&self) -> TrackerStats;

    /// Serializes the full tracker state for checkpointing.
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter);

    /// Restores state saved by [`SharingTracker::save_state`] into a tracker
    /// built from the same configuration.
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_report_totals() {
        let r = StorageReport {
            main_bits: 480,
            per_checkpoint_bits: 96,
        };
        assert_eq!(r.total_bits(0), 480);
        assert_eq!(r.total_bits(4), 480 + 384);
        assert!(r.to_string().contains("480"));
    }

    #[test]
    fn share_kind_carries_arch_info() {
        let k = ShareKind::MoveElim {
            arch_dst: ArchReg::int(1),
            arch_src: ArchReg::int(2),
        };
        match k {
            ShareKind::MoveElim { arch_dst, arch_src } => {
                assert_eq!(arch_dst, ArchReg::int(1));
                assert_eq!(arch_src, ArchReg::int(2));
            }
            _ => panic!(),
        }
    }
}

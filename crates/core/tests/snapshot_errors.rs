//! Malformed-snapshot handling: every way a snapshot image can be wrong
//! maps to the matching typed [`SnapError`] variant — never a panic, and
//! never a silently half-restored simulator.

use regshare_core::{CoreConfig, Simulator};
use regshare_types::snapshot::{SnapError, FORMAT_VERSION, MAGIC};
use regshare_workloads::mini;

/// A warmed-up simulator with live in-flight state (checkpoints, loads,
/// wheel events) so the snapshot exercises every section of the stream.
fn warm_snapshot() -> (Vec<u8>, CoreConfig) {
    let program = mini().build();
    let cfg = CoreConfig::hpca16().with_me().with_smb();
    let mut sim = Simulator::new(&program, cfg.clone());
    sim.run_cycles(400);
    (sim.save_snapshot(), cfg)
}

fn resume(bytes: &[u8], cfg: &CoreConfig) -> Result<Simulator, SnapError> {
    Simulator::resume_from(&mini().build(), cfg.clone(), bytes)
}

/// Header layout: magic `[0..4]`, version `[4..8]`, digest `[8..16]`.
const VERSION_OFFSET: usize = MAGIC.len();
const DIGEST_OFFSET: usize = VERSION_OFFSET + 4;
const HEADER_LEN: usize = DIGEST_OFFSET + 8;

#[test]
fn every_corruption_yields_the_matching_typed_error() {
    let (bytes, cfg) = warm_snapshot();
    assert!(
        bytes.len() > HEADER_LEN + 1024,
        "snapshot suspiciously small"
    );

    struct Case {
        name: &'static str,
        mutate: fn(Vec<u8>) -> Vec<u8>,
        expect: fn(&SnapError) -> bool,
    }
    let cases = [
        Case {
            name: "foreign magic",
            mutate: |mut b| {
                b[0] ^= 0xFF;
                b
            },
            expect: |e| matches!(e, SnapError::BadMagic { .. }),
        },
        Case {
            name: "future format version",
            mutate: |mut b| {
                b[VERSION_OFFSET..VERSION_OFFSET + 4]
                    .copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
                b
            },
            expect: |e| {
                matches!(
                    e,
                    SnapError::BadVersion { found, supported }
                        if *found == FORMAT_VERSION + 1 && *supported == FORMAT_VERSION
                )
            },
        },
        Case {
            name: "flipped config digest",
            mutate: |mut b| {
                b[DIGEST_OFFSET] ^= 0xFF;
                b
            },
            expect: |e| matches!(e, SnapError::ConfigDigestMismatch { .. }),
        },
        Case {
            name: "truncated mid-header",
            mutate: |b| b[..HEADER_LEN - 3].to_vec(),
            expect: |e| matches!(e, SnapError::ShortRead { .. }),
        },
        Case {
            name: "truncated mid-body",
            mutate: |b| {
                let keep = b.len() / 2;
                b[..keep].to_vec()
            },
            expect: |e| matches!(e, SnapError::ShortRead { .. } | SnapError::Corrupt { .. }),
        },
        Case {
            name: "last byte missing",
            mutate: |mut b| {
                b.pop();
                b
            },
            expect: |e| matches!(e, SnapError::ShortRead { .. } | SnapError::Corrupt { .. }),
        },
        Case {
            name: "trailing garbage",
            mutate: |mut b| {
                b.push(0xAB);
                b
            },
            expect: |e| matches!(e, SnapError::Corrupt { what, .. } if *what == "trailing bytes"),
        },
        Case {
            name: "empty stream",
            mutate: |_| Vec::new(),
            expect: |e| matches!(e, SnapError::ShortRead { .. }),
        },
    ];

    for case in &cases {
        let mutated = (case.mutate)(bytes.clone());
        match resume(&mutated, &cfg) {
            Ok(_) => panic!("{}: corrupted snapshot restored successfully", case.name),
            Err(e) => assert!(
                (case.expect)(&e),
                "{}: wrong error variant: {e:?}",
                case.name
            ),
        }
    }
}

#[test]
fn wrong_configuration_is_refused_by_digest() {
    let (bytes, _) = warm_snapshot();
    let mut other = CoreConfig::hpca16().with_me().with_smb();
    other.rob_entries += 1;
    let err = resume(&bytes, &other).expect_err("foreign config accepted");
    assert!(
        matches!(err, SnapError::ConfigDigestMismatch { .. }),
        "{err:?}"
    );
}

#[test]
fn wrong_program_is_refused_by_digest() {
    let (bytes, cfg) = warm_snapshot();
    let other = regshare_workloads::suite()
        .into_iter()
        .map(|w| w.build())
        .find(|p| p.digest() != mini().build().digest())
        .expect("suite has a workload distinct from mini");
    let err = Simulator::resume_from(&other, cfg, &bytes).expect_err("foreign program accepted");
    assert!(
        matches!(err, SnapError::ConfigDigestMismatch { .. }),
        "{err:?}"
    );
}

/// Truncating the stream at *any* sampled prefix must produce a typed
/// error, not a panic or a successful restore.
#[test]
fn truncation_sweep_never_panics() {
    let (bytes, cfg) = warm_snapshot();
    let mut cut = 0usize;
    while cut < bytes.len() {
        if resume(&bytes[..cut], &cfg).is_ok() {
            panic!(
                "prefix of {cut}/{} bytes restored successfully",
                bytes.len()
            );
        }
        cut += 997; // prime stride: samples every section of the stream
    }
}

/// Random byte corruption after the header must never panic; it may
/// decode to an error or — for bytes that only affect counters — a
/// successful restore, but the simulator must then still run.
#[test]
fn byte_flip_sweep_never_panics() {
    let (bytes, cfg) = warm_snapshot();
    let mut offset = HEADER_LEN;
    while offset < bytes.len() {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x55;
        if let Ok(mut sim) = resume(&mutated, &cfg) {
            sim.run_cycles(10);
        }
        offset += 1009;
    }
}

//! The checked-in `scenarios/*.scenario` files must stay byte-identical to
//! the built-in presets they mirror — this is what guarantees that
//! `paper_report --scenario scenarios/headline.scenario` reproduces the
//! preset's output exactly. Regenerate with
//! `cargo run -p regshare-bench --bin gen_scenarios` after editing a
//! preset.

use regshare_bench::{preset, Scenario, SCENARIO_PRESETS};
use std::path::Path;

fn scenarios_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn checked_in_files_match_their_presets_byte_for_byte() {
    for (name, _) in SCENARIO_PRESETS {
        let path = scenarios_dir().join(format!("{name}.scenario"));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e} (run gen_scenarios)", path.display()));
        let rendered = preset(name).expect("built-in preset").render();
        assert_eq!(
            on_disk,
            rendered,
            "{} drifted from its preset; run `cargo run -p regshare-bench --bin gen_scenarios`",
            path.display()
        );
    }
}

#[test]
fn every_checked_in_scenario_parses_and_validates() {
    for entry in std::fs::read_dir(scenarios_dir()).expect("scenarios/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("scenario") {
            continue;
        }
        let s = Scenario::load(path.to_str().expect("utf-8 path"))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        s.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

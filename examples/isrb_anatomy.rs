//! The paper's Figure 3, step by step: how the ISRB's dual never-decremented
//! counters track a shared register across a branch misprediction.
//!
//! ```sh
//! cargo run --example isrb_anatomy
//! ```

use regshare::refcount::{
    Isrb, IsrbConfig, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
};
use regshare::types::{ArchReg, PhysReg, RegClass};

fn main() {
    let mut isrb = Isrb::new(IsrbConfig::hpca16());
    let p1 = PhysReg::new(1);
    let share = |arch: usize| ShareRequest {
        class: RegClass::Int,
        preg: p1,
        kind: ShareKind::Bypass {
            arch_dst: ArchReg::int(arch),
        },
    };
    let reclaim = |arch: usize| ReclaimRequest {
        class: RegClass::Int,
        preg: p1,
        arch: ArchReg::int(arch),
        renews: false,
    };

    println!("Figure 3 walkthrough (register p1):\n");
    println!("sub1 renames rax -> p1 (normal allocation; ISRB not involved)");

    assert!(isrb.try_share(&share(1)));
    println!("load4 bypasses p1 (rbx -> p1):        referenced 0 -> 1");

    let ck = isrb.checkpoint();
    println!("jmp8 predicted: checkpoint taken      (stores the referenced field only)");

    assert!(isrb.try_share(&share(3)));
    println!("load10 (wrong path) bypasses p1:       referenced 1 -> 2");

    assert_eq!(isrb.on_reclaim(&reclaim(0)), ReclaimDecision::Keep);
    println!("shl3 commits, overwrites rax -> p1:    committed 0 -> 1 (Keep)");
    assert_eq!(isrb.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
    println!("sub7 commits, overwrites rbx -> p1:    committed 1 -> 2 (Keep)");
    println!("   committed == referenced: the next overwrite would free p1...");

    println!("\njmp8 resolves MISPREDICTED: restore the checkpoint");
    let mut freed = Vec::new();
    isrb.restore(ck, &mut freed);
    println!("   checkpointed referenced (1) < current committed (2):");
    println!("   -> the last overwrite (sub7) should have freed p1; recovery frees it now");
    assert_eq!(freed, vec![(RegClass::Int, p1)]);
    println!("   freed during recovery: {freed:?}");
    assert!(!isrb.is_shared(RegClass::Int, p1));
    println!("\nrecovery completed with one copy + one narrow compare per entry —");
    println!("no sequential walk of squashed instructions (the paper's §4.3 claim).");
}

//! **Figure 6(c)**: bypassing from committed instructions (lazy register
//! reclaiming via the ROB `release_head` pointer) vs in-window SMB only,
//! at unlimited and 24-entry ISRB.
//!
//! Paper shape: generally marginal (only the STLF/L1 latency can be hidden
//! for committed producers), sometimes harmful at 24 entries because
//! committed bypasses consume ISRB entries that in-window bypassing needs;
//! latency-bound outliers (astar) still profit.

use regshare_bench::{RunWindow, SweepSpec, Table};
use regshare_core::CoreConfig;
use regshare_workloads::suite;

const POINTS: [(usize, bool, &str); 4] = [
    (0, false, "eager-unl"),
    (0, true, "lazy-unl"),
    (24, false, "eager-24"),
    (24, true, "lazy-24"),
];

fn main() {
    let window = RunWindow::from_env();
    let mut spec = SweepSpec::new(suite(), window).variant("base", CoreConfig::hpca16());
    for (entries, lazy, label) in POINTS {
        let mut cfg = CoreConfig::hpca16().with_smb().with_isrb_entries(entries);
        cfg.smb_from_committed = lazy;
        spec = spec.variant(label, cfg);
    }
    let grid = spec.run();

    let mut t = Table::new(vec![
        "bench",
        "eagerUnl%",
        "lazyUnl%",
        "eager24%",
        "lazy24%",
        "byp_from_committed",
    ]);
    for row in grid.rows() {
        let mut cells = vec![row.workload().name.to_string()];
        for (_, _, label) in POINTS {
            cells.push(format!("{:+.2}", row.speedup("base", label)));
        }
        cells.push(format!(
            "{}",
            row.get("lazy-unl").stats.bypass_from_committed
        ));
        t.row(cells);
    }
    for (_, _, label) in POINTS {
        t.footer(format!(
            "geomean speedup, {label}: {:+.2}%",
            grid.geomean_speedup("base", label)
        ));
    }
    println!("# Figure 6(c): eager vs lazy reclaim (bypass from committed)\n");
    t.print();
}

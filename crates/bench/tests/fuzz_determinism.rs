//! Parallelism-invariance of the fuzz subsystem, mirroring
//! `sweep_determinism.rs`: both the differential runner and the
//! scenario-driven sweep over a generated family must produce byte-identical
//! output whether they run serial or sharded — the guarantee the CI
//! `fuzz-smoke` job diffs on every push.

use regshare_bench::fuzz::{case_matrix, render_report, run_cases, FuzzOptions};
use regshare_bench::{preset, render_report as render_sweep, RunOptions};

#[test]
fn differential_report_is_byte_identical_serial_vs_sharded() {
    let specs = case_matrix(&["pressure".into(), "memory".into()], 5, 3);
    let run = |jobs| {
        let opts = FuzzOptions {
            uops: 1_200,
            jobs,
            ..FuzzOptions::default()
        };
        render_report(&run_cases(&specs, &opts), &opts)
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn fuzz_scenario_sweep_is_byte_identical_serial_vs_sharded() {
    let run = |jobs| {
        let mut s = preset("fuzz_smoke").expect("preset");
        s.options = RunOptions::default().warmup(300).measure(900).jobs(jobs);
        let grid = s.to_sweep().expect("valid").run().expect("sweep completes");
        render_sweep(&s, &grid).expect("declared labels")
    };
    // The rendered reports differ only in the jobs option's effect on
    // execution, which must be none; the header prints the window, not
    // the worker count, so byte equality is the whole guarantee.
    let serial = run(1);
    let sharded = run(4);
    assert_eq!(serial, sharded);
    assert!(serial.contains("fuzz-balanced-1"));
}

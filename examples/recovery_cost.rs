//! Why checkpointability matters (§4): compare the ISRB's single-cycle
//! checkpoint restore against conventional per-register counters, whose
//! recovery must walk the squashed µ-ops sequentially, on a branchy
//! workload.
//!
//! ```sh
//! cargo run --release --example recovery_cost
//! ```

use regshare::core::{CoreConfig, Simulator, TrackerKind};
use regshare::refcount::IsrbConfig;
use regshare::types::stats::speedup_pct;
use regshare::workloads::suite;

fn run(program: &regshare::isa::Program, cfg: CoreConfig) -> (f64, u64, u64) {
    let mut sim = Simulator::new(program, cfg);
    sim.run(40_000);
    let warm = *sim.stats();
    sim.run(160_000);
    let s = sim.stats().delta_since(&warm);
    (s.ipc(), s.branch_mispredicts, s.tracker_recovery_stalls)
}

fn main() {
    let wl = suite()
        .into_iter()
        .find(|w| w.name == "gobmk")
        .expect("known workload");
    let program = wl.build();
    let base = run(&program, CoreConfig::hpca16());
    println!(
        "workload {}: baseline IPC {:.3}, {} mispredicts",
        wl.name, base.0, base.1
    );
    println!(
        "{:<28} {:>8} {:>13} {:>12}",
        "tracker", "IPC", "vs baseline", "walk stalls"
    );
    for (name, kind, walk) in [
        (
            "isrb-32 (checkpointed)",
            TrackerKind::Isrb(IsrbConfig::hpca16()),
            0usize,
        ),
        (
            "counters, walk 8/cycle",
            TrackerKind::PerRegCounters { walk_width: 8 },
            8,
        ),
        (
            "counters, walk 4/cycle",
            TrackerKind::PerRegCounters { walk_width: 4 },
            4,
        ),
        (
            "counters, walk 2/cycle",
            TrackerKind::PerRegCounters { walk_width: 2 },
            2,
        ),
    ] {
        let _ = walk;
        let cfg = CoreConfig::hpca16().with_me().with_smb().with_tracker(kind);
        let (ipc, _, stalls) = run(&program, cfg);
        println!(
            "{name:<28} {ipc:>8.3} {:>12.2}% {stalls:>12}",
            speedup_pct(base.0, ipc)
        );
    }
    println!("\nThe ISRB restores in a single cycle (zero walk stalls); counter");
    println!("schemes serialize recovery behind a walk of the squashed µ-ops.");
}

//! Register reference counting for physical register sharing — the paper's
//! primary contribution.
//!
//! Sharing a physical register between several instructions (move
//! elimination, speculative memory bypassing) breaks the usual register
//! reclaiming rule: committing an instruction no longer guarantees that the
//! previous mapping of its architectural destination is freeable. Some form
//! of reference counting is required, and it must cooperate with
//! checkpoint-based misprediction recovery.
//!
//! This crate provides the [`SharingTracker`] trait — the event interface
//! between an out-of-order core's rename/commit/recovery machinery and a
//! reference-counting scheme — plus six implementations:
//!
//! | Scheme | Paper section | Recovery | Notes |
//! |---|---|---|---|
//! | [`Isrb`] | §4.3 | checkpoint restore, single cycle | **the contribution**: small fully-associative buffer, two never-decremented counters per entry |
//! | [`UnlimitedTracker`] | §4.2 "ideal" | instant | per-register dual counters, unbounded; the oracle the ISRB is compared against |
//! | [`PerRegCounters`] | §1/§4.2 | **sequential walk** of squashed µ-ops | the conventional scheme the paper argues against |
//! | [`RothMatrix`] | §4.2 | flash clear | 2D ROB×PRF bit-matrix; decision-ideal but huge storage |
//! | [`Mit`] | §2.2/§4.2 | checkpoint restore | Intel patent scheme; arch-reg bitvectors, **cannot track SMB** |
//! | [`Rda`] | §4.2 | checkpoint restore | Apple patent scheme; one counter/entry, commits must update **every** checkpoint |
//!
//! # The ISRB in one example
//!
//! ```
//! use regshare_refcount::{Isrb, IsrbConfig, SharingTracker, ShareRequest,
//!                         ShareKind, ReclaimRequest, ReclaimDecision};
//! use regshare_types::{ArchReg, PhysReg, RegClass};
//!
//! let mut isrb = Isrb::new(IsrbConfig { entries: 8, counter_bits: 3, ..IsrbConfig::default() });
//! let p1 = PhysReg::new(1);
//! // A load bypasses p1 (SMB): referenced 0 → 1.
//! assert!(isrb.try_share(&ShareRequest {
//!     class: RegClass::Int, preg: p1,
//!     kind: ShareKind::Bypass { arch_dst: ArchReg::int(3) },
//! }));
//! // The first overwrite of a mapping holding p1 commits: kept alive.
//! let r = ReclaimRequest { class: RegClass::Int, preg: p1, arch: ArchReg::int(0), renews: false };
//! assert_eq!(isrb.on_reclaim(&r), ReclaimDecision::Keep);
//! // The second (last) overwrite frees it.
//! assert_eq!(isrb.on_reclaim(&r), ReclaimDecision::Free);
//! ```

#![deny(missing_docs)]

pub mod counters;
pub mod isrb;
pub mod matrix;
pub mod mit;
pub mod rda;
pub mod tracker;
pub mod unlimited;

pub use counters::PerRegCounters;
pub use isrb::{Isrb, IsrbConfig};
pub use matrix::RothMatrix;
pub use mit::Mit;
pub use rda::Rda;
pub use tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
    StorageReport, TrackerStats,
};
pub use unlimited::UnlimitedTracker;

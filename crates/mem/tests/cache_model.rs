//! Model-based property test: the set-associative LRU cache must agree with
//! a straightforward reference implementation under random traffic.

use proptest::prelude::*;
use regshare_mem::{Cache, CacheConfig};
use std::collections::VecDeque;

/// Reference model: per-set LRU as an ordered list of line addresses.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    set_count: usize,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> RefCache {
        RefCache {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways,
            set_count: sets,
        }
    }
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> 6) as usize) % self.set_count
    }
    fn probe(&mut self, addr: u64) -> bool {
        let s = self.set_of(addr);
        let line = addr >> 6;
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            let l = self.sets[s].remove(pos).expect("present");
            self.sets[s].push_back(l);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u64) {
        let s = self.set_of(addr);
        let line = addr >> 6;
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            let l = self.sets[s].remove(pos).expect("present");
            self.sets[s].push_back(l);
            return;
        }
        if self.sets[s].len() == self.ways {
            self.sets[s].pop_front();
        }
        self.sets[s].push_back(line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 1..400)) {
        // 4 sets × 2 ways × 64B lines.
        let mut cache = Cache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, latency: 1 });
        let mut reference = RefCache::new(4, 2);
        for (is_fill, line) in ops {
            let addr = line * 64;
            if is_fill {
                cache.fill(addr, false);
                reference.fill(addr);
            } else {
                let got = cache.probe(addr);
                let want = reference.probe(addr);
                prop_assert_eq!(got, want, "probe({:#x}) diverged", addr);
            }
        }
    }
}

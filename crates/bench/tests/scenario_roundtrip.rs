//! Property test: the `.scenario` text format round-trips.
//!
//! For arbitrary scenarios `s`: `parse(render(s)) == s` (value identity)
//! and `render(parse(render(s))) == render(s)` (byte-identical canonical
//! form — the acceptance bar for checked-in scenario files).
//!
//! Scenarios are decoded from a vector of raw `u64`s (the vendored
//! proptest has no struct derives): each draw decides one field's
//! presence and value, covering every optional key, both string-ish
//! pools and arbitrary identifier names.

use proptest::prelude::*;
use regshare_bench::{AsmSource, FuzzSource, RunOptions, Scenario, ScenarioError, VariantSpec};

const IDENT_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
const NOTE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.,:+%()= -";
const PRESETS: [&str; 6] = ["hpca16", "me", "smb", "me_smb", "lazy_reclaim", "custom0"];
const TRACKERS: [&str; 6] = ["isrb", "unlimited", "counters", "roth", "mit", "rda"];
const DISTANCES: [&str; 2] = ["tage", "nosq"];
const DDTS: [&str; 3] = ["base16k", "opt1k", "unlimited"];

/// A deterministic cursor over the raw draws (wraps around, so any vector
/// length yields a full scenario).
struct Draws<'a> {
    raw: &'a [u64],
    i: usize,
}

impl<'a> Draws<'a> {
    fn next(&mut self) -> u64 {
        let v = self.raw[self.i % self.raw.len()];
        self.i += 1;
        v ^ (self.i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn ident(&mut self) -> String {
        let len = 1 + (self.next() % 12) as usize;
        (0..len)
            .map(|_| IDENT_CHARS[(self.next() % IDENT_CHARS.len() as u64) as usize] as char)
            .collect()
    }

    /// Note text: printable, no quotes/backslashes/newlines, and trimmed
    /// ends (the line-based parser trims around `=`).
    fn note(&mut self) -> String {
        let len = (self.next() % 30) as usize;
        let s: String = (0..len)
            .map(|_| NOTE_CHARS[(self.next() % NOTE_CHARS.len() as u64) as usize] as char)
            .collect();
        s.trim().to_string()
    }

    fn pick(&mut self, pool: &[&str]) -> String {
        pool[(self.next() % pool.len() as u64) as usize].to_string()
    }

    fn opt_bool(&mut self) -> Option<bool> {
        match self.next() % 3 {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        }
    }

    fn opt_usize(&mut self, bound: u64) -> Option<usize> {
        if self.next().is_multiple_of(2) {
            None
        } else {
            Some((self.next() % bound) as usize)
        }
    }

    fn variant(&mut self) -> VariantSpec {
        let mut v = VariantSpec::preset(self.pick(&PRESETS));
        v.me = self.opt_bool();
        v.me_fp_moves = self.opt_bool();
        v.smb = self.opt_bool();
        v.smb_load_load = self.opt_bool();
        v.smb_from_committed = self.opt_bool();
        if self.next().is_multiple_of(2) {
            v.tracker = Some(self.pick(&TRACKERS));
        }
        v.isrb_entries = self.opt_usize(512);
        v.counter_bits = self.opt_usize(40).map(|n| n as u32);
        v.rename_ports = self.opt_usize(8);
        v.reclaim_ports = self.opt_usize(8);
        v.walk_width = self.opt_usize(16);
        v.tracker_entries = self.opt_usize(64);
        if self.next().is_multiple_of(3) {
            v.distance = Some(self.pick(&DISTANCES));
        }
        if self.next().is_multiple_of(3) {
            v.ddt = Some(self.pick(&DDTS));
        }
        v.frontend_width = self.opt_usize(16);
        v.issue_width = self.opt_usize(16);
        v.commit_width = self.opt_usize(16);
        v.rob_entries = self.opt_usize(512);
        v.iq_entries = self.opt_usize(128);
        v.lq_entries = self.opt_usize(128);
        v.sq_entries = self.opt_usize(128);
        v.pregs_per_class = self.opt_usize(512);
        v
    }
}

fn scenario_from(raw: &[u64]) -> Scenario {
    let mut d = Draws { raw, i: 0 };
    let mut options = RunOptions::default();
    if d.next().is_multiple_of(2) {
        options.warmup = Some(d.next() % 1_000_000);
    }
    if d.next().is_multiple_of(2) {
        options.measure = Some(d.next() % 1_000_000);
    }
    if d.next().is_multiple_of(2) {
        options.jobs = Some(1 + (d.next() % 64) as usize);
    }
    // A scenario draws a workload list, a fuzz family, or an asm source
    // (combining them is invalid, and the renderer would emit conflicting
    // sections).
    let (workloads, fuzz, asm) = match d.next() % 8 {
        0 | 1 => (
            Vec::new(),
            Some(FuzzSource {
                profile: d.ident(),
                seed: d.next(),
                programs: 1 + (d.next() % 64) as u32,
            }),
            None,
        ),
        2 | 3 => {
            let asm = match d.next() % 3 {
                0 => AsmSource {
                    kernel: None,
                    path: None,
                },
                1 => AsmSource {
                    kernel: Some(d.ident()),
                    path: None,
                },
                _ => AsmSource {
                    kernel: None,
                    path: Some(format!("{}/{}.asm", d.ident(), d.ident())),
                },
            };
            (Vec::new(), None, Some(asm))
        }
        _ => {
            let n_workloads = (d.next() % 4) as usize;
            ((0..n_workloads).map(|_| d.ident()).collect(), None, None)
        }
    };
    let n_variants = 1 + (d.next() % 4) as usize;
    let variants = (0..n_variants)
        // Index prefix guarantees label uniqueness without a dedup pass.
        .map(|i| (format!("v{i}{}", d.ident()), d.variant()))
        .collect();
    let checkpoint_interval = if d.next().is_multiple_of(3) {
        Some(1 + d.next() % 1_000_000)
    } else {
        None
    };
    let resume_from = if d.next().is_multiple_of(3) {
        // Paths are note-charset strings; slashes exercise the non-ident
        // characters the checkpoint CLI feeds through this key.
        Some(format!("{}/{}.ckpt", d.ident(), d.ident()))
    } else {
        None
    };
    Scenario {
        name: d.ident(),
        note: d.note(),
        options,
        workloads,
        fuzz,
        asm,
        variants,
        checkpoint_interval,
        resume_from,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_render_parse_is_identity(raw in proptest::collection::vec(any::<u64>(), 8..64)) {
        let scenario = scenario_from(&raw);
        let text = scenario.render();
        let parsed = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("rendered scenario failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(&parsed, &scenario);
        // Canonical form is byte-stable.
        prop_assert_eq!(parsed.render(), text);
    }

    #[test]
    fn duplicated_keys_are_rejected_not_last_write_wins(
        raw in proptest::collection::vec(any::<u64>(), 8..64)
    ) {
        // Take a valid rendered scenario, duplicate one `key = value` line
        // immediately after itself (same scope by construction), and the
        // parser must fail with DuplicateKey naming that key — never
        // silently keep either occurrence.
        let scenario = scenario_from(&raw);
        let pick = raw[0] ^ raw[raw.len() - 1];
        let text = scenario.render();
        let lines: Vec<&str> = text.lines().collect();
        // Every render has at least its `name = "..."` line, so `keyed`
        // is never empty.
        let keyed: Vec<usize> = (0..lines.len())
            .filter(|&i| {
                let l = lines[i].trim();
                !l.is_empty() && !l.starts_with('#') && !l.starts_with('[') && l.contains('=')
            })
            .collect();
        let at = keyed[(pick % keyed.len() as u64) as usize];
        let key = lines[at].split('=').next().unwrap().trim().to_string();
        let mut doubled: Vec<&str> = Vec::with_capacity(lines.len() + 1);
        doubled.extend_from_slice(&lines[..=at]);
        doubled.push(lines[at]);
        doubled.extend_from_slice(&lines[at + 1..]);
        let err = Scenario::parse(&doubled.join("\n"))
            .expect_err("duplicated key must not parse");
        prop_assert_eq!(err, ScenarioError::DuplicateKey { line: at + 2, key });
    }
}

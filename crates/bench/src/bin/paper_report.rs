//! Generates a compact paper-vs-measured report (the source material for
//! EXPERIMENTS.md). By default it runs the `headline` preset scenario; any
//! other experiment can be selected with `--preset <name>` or driven from a
//! checked-in `.scenario` file — the two front doors produce byte-identical
//! output for equivalent definitions (CI asserts this against
//! `scenarios/headline.scenario`).
//!
//! ```sh
//! cargo run --release -p regshare-bench --bin paper_report -- --measure 120000
//! cargo run --release -p regshare-bench --bin paper_report -- \
//!     --scenario scenarios/headline.scenario
//! cargo run --release -p regshare-bench --bin paper_report -- --list-presets
//! ```
//!
//! The whole (workload × config) matrix runs through the parallel sweep
//! engine (`--jobs` workers), so wall clock scales with cores while the
//! report stays byte-identical to a serial run.

use regshare_bench::checkpoint;
use regshare_bench::cli::run_front_door;

fn main() {
    let (args, scenario) = run_front_door("paper_report", "headline");
    // Checkpoint-aware: with --checkpoint-every / --resume (or the
    // scenario's own keys) the run is resumable and still byte-identical
    // to an uninterrupted one; otherwise this is the plain parallel sweep.
    match checkpoint::run_report(&scenario, args.checkpoint_file.as_deref()) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("paper_report: {e}");
            std::process::exit(1);
        }
    }
}

//! Memoized-vs-cold equivalence: a simulator run served from the stream
//! cache must be byte-identical (architecturally) to a cold run, and must
//! not touch the interpreter front end at all.

use regshare_bench::fuzz::tracker_presets;
use regshare_core::Simulator;
use regshare_workloads::fuzz::{find_profile, FuzzPlan};

#[test]
fn memoized_run_matches_cold_run_on_fuzz_program() {
    let profile = find_profile("balanced").expect("balanced profile exists");
    let program = FuzzPlan::from_seed(&profile, 0x00d1_ce00).build();
    let (_, cfg) = tracker_presets().into_iter().next().expect("a preset");
    const UOPS: u64 = 4_000;

    let mut cold = Simulator::new(&program, cfg.clone());
    let cold_stats = cold.run(UOPS);
    let cold_digest = cold.arch_digest();
    assert!(
        cold.frontend_decodes() > 0,
        "first run of this program must decode live"
    );
    drop(cold); // publishes the recorded stream

    let mut warm = Simulator::new(&program, cfg);
    let warm_stats = warm.run(UOPS);
    assert_eq!(
        warm.frontend_decodes(),
        0,
        "second run must be served entirely from the stream cache"
    );
    assert_eq!(
        warm.arch_digest(),
        cold_digest,
        "cache warmth must be architecturally invisible"
    );
    // Timing-level equivalence too: the memoized front end feeds the exact
    // same µ-ops on the exact same cycles.
    assert_eq!(warm_stats.committed, cold_stats.committed);
    assert_eq!(warm_stats.cycles, cold_stats.cycles);
}

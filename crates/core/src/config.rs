//! Core configuration: Table 1 defaults plus the feature toggles the
//! paper's experiments sweep.

use regshare_distance::{DdtConfig, NosqConfig, TageDistanceConfig};
use regshare_mem::MemConfig;
use regshare_predictors::{StoreSetsConfig, TageConfig};
use regshare_refcount::{
    Isrb, IsrbConfig, Mit, PerRegCounters, Rda, RothMatrix, SharingTracker, UnlimitedTracker,
};
use regshare_types::ARCH_REGS_PER_CLASS;

/// A structural problem in a [`CoreConfig`] that would make the simulator
/// deadlock, panic, or silently model a machine that cannot exist.
///
/// Returned by [`CoreConfig::validate`] and [`CoreConfigBuilder::build`];
/// each variant names the offending field so callers (and scenario files)
/// get an actionable message instead of a hung or nonsensical run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A pipeline width is zero (`frontend_width`, `issue_width`,
    /// `commit_width`): no µ-op could ever advance through that stage.
    ZeroWidth(&'static str),
    /// A window structure has no entries (`rob_entries`, `iq_entries`,
    /// `lq_entries`, `sq_entries`): dispatch would stall forever.
    ZeroCapacity(&'static str),
    /// A functional-unit or port count is zero (`alu_units`, `muldiv_units`,
    /// `fp_units`, `fpmuldiv_units`, `mem_ports`): µ-ops of that class
    /// could never issue.
    ZeroUnits(&'static str),
    /// Fewer physical registers per class than architectural registers plus
    /// one: rename could never allocate a destination.
    PrfTooSmall {
        /// Configured `pregs_per_class`.
        pregs: usize,
        /// Minimum legal value (`ARCH_REGS_PER_CLASS + 1`).
        min: usize,
    },
    /// A finite ISRB with more entries than physical registers: each entry
    /// tracks one shared register, so the excess entries are unreachable
    /// (and the paper's storage accounting becomes meaningless).
    IsrbExceedsPrf {
        /// Configured ISRB entries.
        entries: usize,
        /// Configured `pregs_per_class`.
        pregs: usize,
    },
    /// A sharing counter width of zero bits, or wider than the 31 bits the
    /// checkpointed counters can represent.
    CounterBitsOutOfRange {
        /// Which tracker declared the width (`"isrb"` or `"rda"`).
        tracker: &'static str,
        /// The rejected width.
        bits: u32,
    },
    /// Per-register counters with a squash-walk width of zero: recovery
    /// would stall forever on the first squashed µ-op.
    ZeroWalkWidth,
    /// A fully-associative tracker (`mit`, `rda`) with zero entries: it
    /// could never record a sharing, so enabling it is a silent no-op.
    ZeroTrackerEntries(&'static str),
    /// A TAGE geometry the predictor cannot carry inline: more tagged
    /// components than `regshare_predictors::tage::MAX_COMPONENTS`, or a
    /// component with `log_entries >= 32` (prediction indices are `u32`).
    TageGeometry {
        /// Configured tagged components.
        components: usize,
        /// The largest configured `log_entries`.
        max_log_entries: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWidth(field) => write!(f, "{field} must be non-zero"),
            ConfigError::ZeroCapacity(field) => write!(f, "{field} must have at least one entry"),
            ConfigError::ZeroUnits(field) => write!(f, "{field} must be non-zero"),
            ConfigError::PrfTooSmall { pregs, min } => write!(
                f,
                "pregs_per_class = {pregs} cannot cover the {} architectural registers \
                 (minimum {min})",
                ARCH_REGS_PER_CLASS
            ),
            ConfigError::IsrbExceedsPrf { entries, pregs } => write!(
                f,
                "ISRB with {entries} entries is larger than the {pregs}-register PRF \
                 (use 0 for an unlimited ISRB)"
            ),
            ConfigError::CounterBitsOutOfRange { tracker, bits } => {
                write!(f, "{tracker} counter width {bits} is outside 1..=31 bits")
            }
            ConfigError::ZeroWalkWidth => {
                write!(f, "per-register counter walk_width must be non-zero")
            }
            ConfigError::ZeroTrackerEntries(tracker) => {
                write!(f, "{tracker} tracker must have at least one entry")
            }
            ConfigError::TageGeometry {
                components,
                max_log_entries,
            } => write!(
                f,
                "TAGE geometry with {components} tagged components / max log_entries \
                 {max_log_entries} exceeds the inline-prediction limits \
                 ({} components, log_entries < 32)",
                regshare_predictors::tage::MAX_COMPONENTS
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which register reference-counting scheme backs sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackerKind {
    /// The paper's ISRB (§4.3).
    Isrb(IsrbConfig),
    /// Ideal unbounded dual counters.
    Unlimited,
    /// Conventional per-register counters with sequential rollback; the
    /// field is the squash-walk width (µ-ops undone per stall cycle).
    PerRegCounters {
        /// µ-ops whose tracker state can be repaired per recovery cycle.
        walk_width: usize,
    },
    /// Roth's ROB×PRF bit-matrix.
    RothMatrix,
    /// Intel's MIT (move elimination only).
    Mit {
        /// Fully-associative entries.
        entries: usize,
    },
    /// Apple's RDA.
    Rda {
        /// Fully-associative entries.
        entries: usize,
        /// Duplicate-counter width.
        counter_bits: u32,
    },
}

impl TrackerKind {
    /// Instantiates the tracker.
    pub fn build(&self, pregs_per_class: usize, rob_entries: usize) -> Box<dyn SharingTracker> {
        match self {
            TrackerKind::Isrb(cfg) => Box::new(Isrb::new(IsrbConfig {
                pregs_per_class,
                ..*cfg
            })),
            TrackerKind::Unlimited => Box::new(UnlimitedTracker::new()),
            TrackerKind::PerRegCounters { walk_width } => {
                Box::new(PerRegCounters::new(pregs_per_class, *walk_width))
            }
            TrackerKind::RothMatrix => Box::new(RothMatrix::new(pregs_per_class, rob_entries)),
            TrackerKind::Mit { entries } => Box::new(Mit::new(*entries)),
            TrackerKind::Rda {
                entries,
                counter_bits,
            } => Box::new(Rda::new(*entries, *counter_bits)),
        }
    }
}

/// Which Instruction Distance predictor drives SMB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistancePredictorKind {
    /// The paper's TAGE-like predictor (§3.1).
    TageLike(TageDistanceConfig),
    /// The NoSQ-style two-table predictor.
    Nosq(NosqConfig),
}

impl Default for DistancePredictorKind {
    fn default() -> Self {
        DistancePredictorKind::TageLike(TageDistanceConfig::hpca16())
    }
}

/// Full core configuration. [`CoreConfig::hpca16`] reproduces Table 1.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    // --- widths & depths (Table 1) ---
    /// Fetch/decode/rename width (µ-ops per cycle).
    pub frontend_width: usize,
    /// Issue width.
    pub issue_width: usize,
    /// Retire width.
    pub commit_width: usize,
    /// ROB entries.
    pub rob_entries: usize,
    /// Unified IQ entries.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Physical registers per class (INT and FP each).
    pub pregs_per_class: usize,
    /// Fetch-to-rename depth in cycles (deep front-end: the misprediction
    /// penalty is dominated by this refill).
    pub frontend_depth: u64,
    /// Store-to-load forwarding latency (Table 1: 4 cycles = L1 latency).
    pub stlf_latency: u64,
    /// Fetch bubble charged when a taken-path transfer misses the BTB.
    pub btb_miss_bubble: u64,
    /// Functional units: ALU count (1-cycle; also branches/moves).
    pub alu_units: usize,
    /// Integer multiply/divide unit count (3c mul, 25c unpipelined div).
    pub muldiv_units: usize,
    /// FP add units (3c).
    pub fp_units: usize,
    /// FP mul/div units (5c mul, 10c unpipelined div).
    pub fpmuldiv_units: usize,
    /// Shared load/store AGU ports.
    pub mem_ports: usize,
    /// Additional store-only port.
    pub store_ports: usize,

    // --- predictors & memory ---
    /// TAGE branch predictor geometry.
    pub tage: TageConfig,
    /// BTB entries / ways.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Store Sets geometry.
    pub store_sets: StoreSetsConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,

    // --- the paper's features ---
    /// Enable move elimination (§2).
    pub move_elimination: bool,
    /// Also eliminate FP-to-FP moves (recent Intel cores do; the paper's
    /// Figure 5 is integer-only, so this defaults to off).
    pub me_fp_moves: bool,
    /// Enable speculative memory bypassing (§3).
    pub smb: bool,
    /// Generalize SMB to load-load pairs (§3: on by default; §6.2 ablates).
    pub smb_load_load: bool,
    /// Bypass from committed-but-unreleased ROB entries via lazy reclaim
    /// (§3.3; Figure 6(c)).
    pub smb_from_committed: bool,
    /// Distance predictor choice.
    pub distance_predictor: DistancePredictorKind,
    /// DDT geometry.
    pub ddt: DdtConfig,
    /// Reference-counting scheme.
    pub tracker: TrackerKind,
    /// ISRB CAM ports available to rename per cycle (0 = unlimited);
    /// bypasses beyond this abort (§4.3.4).
    pub tracker_rename_ports: usize,
    /// ISRB CAM ports for reclaim per cycle (0 = unlimited); reclaims
    /// beyond this stall commit (§4.3.4).
    pub tracker_reclaim_ports: usize,
}

impl CoreConfig {
    /// The paper's Table 1 machine with all sharing optimizations off.
    pub fn hpca16() -> CoreConfig {
        CoreConfig {
            frontend_width: 8,
            issue_width: 6,
            commit_width: 8,
            rob_entries: 192,
            iq_entries: 60,
            lq_entries: 72,
            sq_entries: 48,
            pregs_per_class: 256,
            frontend_depth: 13,
            stlf_latency: 4,
            btb_miss_bubble: 3,
            alu_units: 4,
            muldiv_units: 1,
            fp_units: 2,
            fpmuldiv_units: 2,
            mem_ports: 2,
            store_ports: 1,
            tage: TageConfig::hpca16(),
            btb_entries: 4096,
            btb_ways: 2,
            ras_entries: 32,
            store_sets: StoreSetsConfig::hpca16(),
            mem: MemConfig::hpca16(),
            move_elimination: false,
            me_fp_moves: false,
            smb: false,
            smb_load_load: true,
            smb_from_committed: false,
            distance_predictor: DistancePredictorKind::default(),
            ddt: DdtConfig::base16k(),
            tracker: TrackerKind::Isrb(IsrbConfig::hpca16()),
            tracker_rename_ports: 0,
            tracker_reclaim_ports: 0,
        }
    }

    /// Table 1 machine with ME enabled.
    pub fn with_me(mut self) -> CoreConfig {
        self.move_elimination = true;
        self
    }

    /// Table 1 machine with SMB enabled.
    pub fn with_smb(mut self) -> CoreConfig {
        self.smb = true;
        self
    }

    /// Replaces the tracker.
    pub fn with_tracker(mut self, tracker: TrackerKind) -> CoreConfig {
        self.tracker = tracker;
        self
    }

    /// Replaces the ISRB entry count (shorthand for the figures' sweeps;
    /// 0 = unlimited).
    pub fn with_isrb_entries(mut self, entries: usize) -> CoreConfig {
        let cfg = match &self.tracker {
            TrackerKind::Isrb(c) => IsrbConfig { entries, ..*c },
            _ => IsrbConfig {
                entries,
                ..IsrbConfig::hpca16()
            },
        };
        self.tracker = TrackerKind::Isrb(cfg);
        self
    }

    /// Checks the configuration for structural impossibilities — zero
    /// widths, empty windows, an ISRB larger than the PRF, zero-width
    /// counters, a zero squash-walk width — returning the first problem as
    /// a typed [`ConfigError`]. Hand-mutated configs used to silently
    /// deadlock or model nonsense machines; every builder and scenario
    /// entry point now funnels through this check.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("frontend_width", self.frontend_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroWidth(field));
            }
        }
        for (field, v) in [
            ("rob_entries", self.rob_entries),
            ("iq_entries", self.iq_entries),
            ("lq_entries", self.lq_entries),
            ("sq_entries", self.sq_entries),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroCapacity(field));
            }
        }
        for (field, v) in [
            ("alu_units", self.alu_units),
            ("muldiv_units", self.muldiv_units),
            ("fp_units", self.fp_units),
            ("fpmuldiv_units", self.fpmuldiv_units),
            ("mem_ports", self.mem_ports),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroUnits(field));
            }
        }
        let min_pregs = ARCH_REGS_PER_CLASS + 1;
        if self.pregs_per_class < min_pregs {
            return Err(ConfigError::PrfTooSmall {
                pregs: self.pregs_per_class,
                min: min_pregs,
            });
        }
        match &self.tracker {
            TrackerKind::Isrb(cfg) => {
                if cfg.entries > self.pregs_per_class {
                    return Err(ConfigError::IsrbExceedsPrf {
                        entries: cfg.entries,
                        pregs: self.pregs_per_class,
                    });
                }
                if cfg.counter_bits == 0 || cfg.counter_bits > 31 {
                    return Err(ConfigError::CounterBitsOutOfRange {
                        tracker: "isrb",
                        bits: cfg.counter_bits,
                    });
                }
            }
            TrackerKind::PerRegCounters { walk_width } => {
                if *walk_width == 0 {
                    return Err(ConfigError::ZeroWalkWidth);
                }
            }
            TrackerKind::Mit { entries } => {
                if *entries == 0 {
                    return Err(ConfigError::ZeroTrackerEntries("mit"));
                }
            }
            TrackerKind::Rda {
                entries,
                counter_bits,
            } => {
                if *entries == 0 {
                    return Err(ConfigError::ZeroTrackerEntries("rda"));
                }
                if *counter_bits == 0 || *counter_bits > 31 {
                    return Err(ConfigError::CounterBitsOutOfRange {
                        tracker: "rda",
                        bits: *counter_bits,
                    });
                }
            }
            TrackerKind::Unlimited | TrackerKind::RothMatrix => {}
        }
        let max_log = self
            .tage
            .components
            .iter()
            .map(|c| c.log_entries)
            .max()
            .unwrap_or(0);
        if self.tage.components.len() > regshare_predictors::tage::MAX_COMPONENTS || max_log >= 32 {
            // `Tage::new` would panic on these; surface them as the typed
            // error the builder contract promises.
            return Err(ConfigError::TageGeometry {
                components: self.tage.components.len(),
                max_log_entries: max_log,
            });
        }
        Ok(())
    }

    /// Digest of the front-end knobs that shape the fetched µ-op stream.
    ///
    /// Keys the content-addressed stream cache in `regshare_isa::stream`:
    /// streams recorded under one fetch-path configuration are never
    /// replayed under another, even for the same program.
    pub fn fetch_path_digest(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = regshare_types::hasher::FastHasher::default();
        format!(
            "{}/{}/{}/{}/{}/{}/{:?}",
            self.frontend_width,
            self.frontend_depth,
            self.btb_miss_bubble,
            self.btb_entries,
            self.btb_ways,
            self.ras_entries,
            self.tage,
        )
        .hash(&mut h);
        h.finish()
    }

    /// Digest of the **whole** configuration: every knob that can change
    /// simulated behaviour, so two configs digest equal iff they simulate
    /// identically.
    ///
    /// This is the read-only content-address of a machine: machine
    /// snapshots pin their context with it (combined with the program
    /// digest), and the serve daemon's result cache keys each
    /// (workload × config × window) cell with it. Process-local only — the
    /// underlying hash is not guaranteed stable across builds, which is
    /// why every on-disk format that embeds it also carries a format
    /// version that is bumped on layout changes.
    pub fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = regshare_types::hasher::FastHasher::default();
        h.write(format!("{self:?}").as_bytes());
        h.finish()
    }

    /// Starts a validated [`CoreConfigBuilder`] from the Table 1 machine.
    pub fn builder() -> CoreConfigBuilder {
        CoreConfigBuilder {
            cfg: CoreConfig::hpca16(),
        }
    }
}

/// Validated builder over [`CoreConfig`].
///
/// The free-form struct stays available for exotic studies, but the builder
/// is the supported way to assemble a config: every setter is chainable and
/// [`CoreConfigBuilder::build`] rejects structurally impossible machines
/// with a typed [`ConfigError`] instead of letting them silently deadlock.
///
/// # Examples
///
/// ```
/// use regshare_core::{ConfigError, CoreConfig};
///
/// let cfg = CoreConfig::builder()
///     .move_elimination(true)
///     .smb(true)
///     .isrb_entries(32)
///     .build()
///     .unwrap();
/// assert!(cfg.move_elimination && cfg.smb);
///
/// let err = CoreConfig::builder().isrb_entries(4096).build().unwrap_err();
/// assert!(matches!(err, ConfigError::IsrbExceedsPrf { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct CoreConfigBuilder {
    cfg: CoreConfig,
}

impl From<CoreConfig> for CoreConfigBuilder {
    /// Resumes building from an existing configuration (e.g. a preset).
    fn from(cfg: CoreConfig) -> CoreConfigBuilder {
        CoreConfigBuilder { cfg }
    }
}

impl CoreConfigBuilder {
    /// The tracker currently selected (before [`CoreConfigBuilder::build`]),
    /// so layered builders can refine its geometry.
    pub fn peek_tracker(&self) -> &TrackerKind {
        &self.cfg.tracker
    }

    /// Sets the fetch/decode/rename width.
    pub fn frontend_width(mut self, w: usize) -> Self {
        self.cfg.frontend_width = w;
        self
    }

    /// Sets the issue width.
    pub fn issue_width(mut self, w: usize) -> Self {
        self.cfg.issue_width = w;
        self
    }

    /// Sets the retire width.
    pub fn commit_width(mut self, w: usize) -> Self {
        self.cfg.commit_width = w;
        self
    }

    /// Sets the ROB size.
    pub fn rob_entries(mut self, n: usize) -> Self {
        self.cfg.rob_entries = n;
        self
    }

    /// Sets the unified IQ size.
    pub fn iq_entries(mut self, n: usize) -> Self {
        self.cfg.iq_entries = n;
        self
    }

    /// Sets the load-queue size.
    pub fn lq_entries(mut self, n: usize) -> Self {
        self.cfg.lq_entries = n;
        self
    }

    /// Sets the store-queue size.
    pub fn sq_entries(mut self, n: usize) -> Self {
        self.cfg.sq_entries = n;
        self
    }

    /// Sets the physical-register count per class.
    pub fn pregs_per_class(mut self, n: usize) -> Self {
        self.cfg.pregs_per_class = n;
        self
    }

    /// Enables or disables move elimination (§2).
    pub fn move_elimination(mut self, on: bool) -> Self {
        self.cfg.move_elimination = on;
        self
    }

    /// Enables or disables FP-to-FP move elimination.
    pub fn me_fp_moves(mut self, on: bool) -> Self {
        self.cfg.me_fp_moves = on;
        self
    }

    /// Enables or disables speculative memory bypassing (§3).
    pub fn smb(mut self, on: bool) -> Self {
        self.cfg.smb = on;
        self
    }

    /// Enables or disables load-load bypassing (§6.2).
    pub fn smb_load_load(mut self, on: bool) -> Self {
        self.cfg.smb_load_load = on;
        self
    }

    /// Enables or disables bypassing from committed µ-ops under lazy
    /// reclaim (§3.3).
    pub fn smb_from_committed(mut self, on: bool) -> Self {
        self.cfg.smb_from_committed = on;
        self
    }

    /// Replaces the sharing tracker.
    pub fn tracker(mut self, tracker: TrackerKind) -> Self {
        self.cfg.tracker = tracker;
        self
    }

    /// Resizes the ISRB (0 = unlimited), switching to an ISRB tracker if a
    /// different scheme was selected.
    pub fn isrb_entries(mut self, entries: usize) -> Self {
        self.cfg = self.cfg.with_isrb_entries(entries);
        self
    }

    /// Replaces the distance predictor.
    pub fn distance_predictor(mut self, kind: DistancePredictorKind) -> Self {
        self.cfg.distance_predictor = kind;
        self
    }

    /// Replaces the DDT geometry.
    pub fn ddt(mut self, ddt: DdtConfig) -> Self {
        self.cfg.ddt = ddt;
        self
    }

    /// Escape hatch for fields without a dedicated setter (predictor
    /// geometries, latencies, port counts); the closure mutates the config
    /// in place and [`CoreConfigBuilder::build`] still validates the result.
    pub fn tweak(mut self, f: impl FnOnce(&mut CoreConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the finished configuration.
    pub fn build(self) -> Result<CoreConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_tage_geometry_is_a_typed_error_not_a_panic() {
        // `Tage::new` asserts these limits; validate() must catch them
        // first so the builder keeps its typed-error contract.
        let mut cfg = CoreConfig::hpca16();
        let extra = cfg.tage.components[0];
        while cfg.tage.components.len() <= regshare_predictors::tage::MAX_COMPONENTS {
            cfg.tage.components.push(extra);
        }
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TageGeometry { components, .. })
                if components == cfg.tage.components.len()
        ));

        let mut cfg = CoreConfig::hpca16();
        cfg.tage.components[0].log_entries = 32;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TageGeometry {
                max_log_entries: 32,
                ..
            })
        ));
    }

    #[test]
    fn table1_defaults() {
        let c = CoreConfig::hpca16();
        assert_eq!(c.rob_entries, 192);
        assert_eq!(c.iq_entries, 60);
        assert_eq!((c.lq_entries, c.sq_entries), (72, 48));
        assert_eq!(c.pregs_per_class, 256);
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.stlf_latency, 4);
        assert!(!c.move_elimination && !c.smb);
    }

    #[test]
    fn builders_compose() {
        let c = CoreConfig::hpca16()
            .with_me()
            .with_smb()
            .with_isrb_entries(24);
        assert!(c.move_elimination && c.smb);
        match c.tracker {
            TrackerKind::Isrb(i) => assert_eq!(i.entries, 24),
            _ => panic!(),
        }
    }

    #[test]
    fn all_trackers_instantiate() {
        for kind in [
            TrackerKind::Isrb(IsrbConfig::hpca16()),
            TrackerKind::Unlimited,
            TrackerKind::PerRegCounters { walk_width: 8 },
            TrackerKind::RothMatrix,
            TrackerKind::Mit { entries: 8 },
            TrackerKind::Rda {
                entries: 8,
                counter_bits: 3,
            },
        ] {
            let t = kind.build(256, 192);
            assert!(!t.name().is_empty());
        }
    }
}

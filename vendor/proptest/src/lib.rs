//! Offline subset of the [proptest](https://docs.rs/proptest) property
//! testing framework.
//!
//! This container has no crates.io access, so the workspace vendors the
//! slice of proptest's API that the regshare property tests use: the
//! [`proptest!`] test macro (with `#![proptest_config(..)]`), the
//! [`Strategy`] trait with [`Strategy::prop_map`], integer-range / tuple /
//! [`Just`] / [`collection::vec`] strategies, the weighted [`prop_oneof!`]
//! combinator, [`any`], and the `prop_assert*` macros.
//!
//! Differences from the real crate: case generation is a fixed-seed
//! deterministic PRNG (every run explores the same inputs) and failing
//! cases are **not shrunk** — the panic message reports the case index so a
//! failure can be replayed by iterating the same seed sequence. Swap the
//! `proptest` entry in `[workspace.dependencies]` for the crates.io version
//! when network access is available; no source changes are required.

#![deny(missing_docs)]

pub mod test_runner {
    //! Deterministic random number generation for test-case synthesis.

    /// Splitmix64-based PRNG; deterministic per seed, no external deps.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build a generator from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "below(0) is meaningless");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration; only the fields the regshare tests use.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of [`Strategy::Value`].
///
/// Object-safe: combinators carry `where Self: Sized` so
/// `Box<dyn Strategy<Value = T>>` works (see [`prop_oneof!`]).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for any value of `T`, via its [`Arbitrary`] impl.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy used by the [`Arbitrary`] impls.
#[derive(Clone, Copy, Debug)]
pub struct AnyValue<T> {
    _marker: core::marker::PhantomData<T>,
}

impl Arbitrary for bool {
    type Strategy = AnyValue<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyValue {
            _marker: core::marker::PhantomData,
        }
    }
}

impl Strategy for AnyValue<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyValue<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyValue { _marker: core::marker::PhantomData }
            }
        }
        impl Strategy for AnyValue<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span + 1) as $t
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

pub mod strategy {
    //! Combinator strategies produced by [`Strategy`] adapters and the
    //! [`prop_oneof!`](crate::prop_oneof) macro.

    use super::{Strategy, TestRng};

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies; output of
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> OneOf<T> {
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            OneOf { arms, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights summed correctly")
        }
    }
}

pub mod collection {
    //! Strategies for collections of generated values.

    use super::{Strategy, TestRng};

    /// Strategy yielding `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length in `size`, then that many
    /// elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `fn name(pat in strategy) { body }` becomes a
/// `#[test]` that runs `body` against `config.cases` generated inputs.
///
/// The panic message of a failing case includes the case index; with the
/// fixed-seed [`test_runner::TestRng`] this makes every failure replayable.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ($arg:pat in $strat:expr) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = $strat;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::from_seed(
                        0x5EED_0000_0000_0000u64 ^ (case as u64),
                    );
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || $body,
                    ));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {} of {} failed for property `{}`",
                            case, config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

# matmul — 8x8 u64 matrix multiply with a weighted-checksum epilogue.
#
# A[k] = 3k+1 and B[k] = k*k+2 are generated in place (the simulated memory
# is not zero-filled), C = A*B is computed with the classic i/j/k loop nest,
# and the epilogue folds C into a position-weighted checksum compared against
# a precomputed constant. r15 = 1 on success, 0 on failure.

.equ A   0x1000
.equ B   0x1400
.equ C   0x1800
.equ CHK 2960454016      # sum over k of C[k]*(k+1)

# ---- init: A[k] = 3k+1, B[k] = k*k+2 ---------------------------------------
    li r9, A
    li r10, B
    li r11, C
    li r2, 0
initm:
    mul r6, r2, 3
    add r6, r6, 1
    shl r5, r2, 3
    add r5, r5, r9
    st r6, r5, 0         # A[k]
    mul r6, r2, r2
    add r6, r6, 2
    shl r5, r2, 3
    add r5, r5, r10
    st r6, r5, 0         # B[k]
    add r2, r2, 1
    bne r2, 64, initm

# ---- C[i][j] = sum over k of A[i][k] * B[k][j] -----------------------------
    li r2, 0             # i
iloop:
    li r3, 0             # j
jloop:
    li r8, 0             # acc
    li r4, 0             # k
kloop:
    shl r5, r2, 3        # &A[i*8+k]
    add r5, r5, r4
    shl r5, r5, 3
    add r5, r5, r9
    ld r6, r5, 0
    shl r5, r4, 3        # &B[k*8+j]
    add r5, r5, r3
    shl r5, r5, 3
    add r5, r5, r10
    ld r7, r5, 0
    mul r6, r6, r7
    add r8, r8, r6
    add r4, r4, 1
    bne r4, 8, kloop
    shl r5, r2, 3        # &C[i*8+j]
    add r5, r5, r3
    shl r5, r5, 3
    add r5, r5, r11
    st r8, r5, 0
    add r3, r3, 1
    bne r3, 8, jloop
    add r2, r2, 1
    bne r2, 8, iloop

# ---- self-check: weighted checksum of C ------------------------------------
    li r13, 0
    li r2, 0
csum:
    shl r5, r2, 3
    add r5, r5, r11
    ld r6, r5, 0
    add r7, r2, 1
    mul r6, r6, r7
    add r13, r13, r6
    add r2, r2, 1
    bne r2, 64, csum
    li r14, CHK
    bne r13, r14, fail
    li r15, 1
    halt
fail:
    li r15, 0
    halt

//! The Register Duplicate Array (RDA) from Apple's patent
//! (Sundar et al., §4.2 \[24\]).
//!
//! Like the ISRB, a small fully-associative structure whose entries are
//! allocated on demand; unlike the ISRB, each entry holds a *single*
//! up/down duplicate counter. To make the structure checkpointable, every
//! commit-time decrement must be applied to the live array **and to every
//! checkpoint** — the cost the ISRB's dual never-decremented counters avoid.
//! [`TrackerStats::commit_checkpoint_writes`] quantifies that burden.

use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareRequest, SharingTracker, StorageReport,
    TrackerStats,
};
use regshare_types::{PhysReg, RegClass};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    class_fp: bool,
    preg: u16,
    /// Number of current mappings (entry exists only while ≥ 2).
    count: u32,
    /// Architectural image of `count` (for commit-time flushes).
    arch_count: u32,
}

regshare_types::impl_snap!(Entry {
    valid,
    class_fp,
    preg,
    count,
    arch_count
});

#[derive(Debug, Clone)]
struct Checkpoint {
    id: CheckpointId,
    counts: Vec<u32>,
}

/// Retired checkpoint buffers kept for reuse (one checkpoint per predicted
/// branch — recycling keeps the rename path allocation-free).
const CKPT_POOL_CAP: usize = 64;

/// The RDA tracker. See the module docs.
///
/// # Examples
///
/// ```
/// use regshare_refcount::{Rda, SharingTracker, ShareRequest, ShareKind,
///                         ReclaimRequest, ReclaimDecision};
/// use regshare_types::{ArchReg, PhysReg, RegClass};
///
/// let mut rda = Rda::new(8, 3);
/// let req = ShareRequest { class: RegClass::Int, preg: PhysReg::new(2),
///                          kind: ShareKind::Bypass { arch_dst: ArchReg::int(1) } };
/// assert!(rda.try_share(&req)); // two mappings now
/// let rec = ReclaimRequest { class: RegClass::Int, preg: PhysReg::new(2), arch: ArchReg::int(0), renews: false };
/// assert_eq!(rda.on_reclaim(&rec), ReclaimDecision::Keep);
/// assert_eq!(rda.on_reclaim(&rec), ReclaimDecision::Free);
/// ```
#[derive(Debug)]
pub struct Rda {
    entries: Vec<Entry>,
    /// Free entry slots (index stack) — allocation pops in O(1) instead of
    /// scanning `entries` for an invalid slot.
    free_slots: Vec<usize>,
    checkpoints: VecDeque<Checkpoint>,
    /// Recycled checkpoint buffers (see [`CKPT_POOL_CAP`]).
    ckpt_pool: Vec<Vec<u32>>,
    next_ckpt: CheckpointId,
    max_count: u32,
    counter_bits: u32,
    stats: TrackerStats,
}

impl Rda {
    /// Creates an RDA with `entries` entries and `counter_bits`-bit
    /// duplicate counters.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits < 2` (a duplicate counter must hold ≥ 2).
    pub fn new(entries: usize, counter_bits: u32) -> Rda {
        assert!((2..=31).contains(&counter_bits));
        Rda {
            entries: vec![Entry::default(); entries],
            free_slots: (0..entries).rev().collect(),
            checkpoints: VecDeque::new(),
            ckpt_pool: Vec::new(),
            next_ckpt: 0,
            max_count: (1 << counter_bits) - 1,
            counter_bits,
            stats: TrackerStats::default(),
        }
    }

    fn find(&self, class: RegClass, preg: PhysReg) -> Option<usize> {
        let fp = class == RegClass::Fp;
        let p = preg.index() as u16;
        self.entries
            .iter()
            .position(|e| e.valid && e.class_fp == fp && e.preg == p)
    }

    fn free_entry(&mut self, slot: usize) {
        self.entries[slot] = Entry::default();
        self.free_slots.push(slot);
        self.stats.entries_freed += 1;
        for c in &mut self.checkpoints {
            c.counts[slot] = 0;
        }
    }

    fn occupancy(&self) -> usize {
        self.entries.len() - self.free_slots.len()
    }

    /// Returns a retired checkpoint buffer to the pool.
    fn recycle(&mut self, counts: Vec<u32>) {
        if self.ckpt_pool.len() < CKPT_POOL_CAP {
            self.ckpt_pool.push(counts);
        }
    }
}

impl SharingTracker for Rda {
    fn name(&self) -> &'static str {
        "rda"
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        if let Some(slot) = self.find(req.class, req.preg) {
            let e = &mut self.entries[slot];
            if e.count >= self.max_count {
                self.stats.shares_rejected_saturated += 1;
                return false;
            }
            e.count += 1;
            self.stats.shares_accepted += 1;
            return true;
        }
        match self.free_slots.pop() {
            Some(slot) => {
                self.entries[slot] = Entry {
                    valid: true,
                    class_fp: req.class == RegClass::Fp,
                    preg: req.preg.index() as u16,
                    count: 2, // original mapping + the new duplicate
                    // The original mapping is architectural by the time a
                    // younger duplicate could commit.
                    arch_count: 1,
                };
                self.stats.shares_accepted += 1;
                self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy());
                true
            }
            None => {
                self.stats.shares_rejected_full += 1;
                false
            }
        }
    }

    fn on_sharer_commit(&mut self, req: &ShareRequest) {
        if let Some(slot) = self.find(req.class, req.preg) {
            let e = &mut self.entries[slot];
            e.arch_count = (e.arch_count + 1).min(self.max_count);
        }
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.stats.reclaims += 1;
        match self.find(req.class, req.preg) {
            None => ReclaimDecision::Free,
            Some(slot) => {
                self.stats.reclaim_cam_hits += 1;
                // The RDA's checkpointability requirement: decrement the live
                // counter AND the matching counter in every checkpoint.
                let n = self.checkpoints.len() as u64;
                for c in &mut self.checkpoints {
                    c.counts[slot] = c.counts[slot].saturating_sub(1);
                }
                self.stats.commit_checkpoint_writes += n;
                let e = &mut self.entries[slot];
                e.count = e.count.saturating_sub(1);
                e.arch_count = e.arch_count.saturating_sub(1);
                if e.count <= 1 {
                    // No longer duplicated: entry retires, register lives on
                    // under its single remaining mapping.
                    self.free_entry(slot);
                }
                ReclaimDecision::Keep
            }
        }
    }

    fn checkpoint(&mut self) -> CheckpointId {
        let id = self.next_ckpt;
        self.next_ckpt += 1;
        let mut counts = self.ckpt_pool.pop().unwrap_or_default();
        counts.clear();
        counts.extend(
            self.entries
                .iter()
                .map(|e| if e.valid { e.count } else { 0 }),
        );
        self.checkpoints.push_back(Checkpoint { id, counts });
        self.stats.checkpoints_taken += 1;
        id
    }

    fn restore(&mut self, id: CheckpointId, _freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        while let Some(back) = self.checkpoints.back() {
            if back.id > id {
                let dead = self.checkpoints.pop_back().expect("just peeked");
                self.recycle(dead.counts);
            } else {
                break;
            }
        }
        let ck = self.checkpoints.pop_back().expect("checkpoint exists");
        assert_eq!(ck.id, id, "restore to unknown checkpoint");
        for slot in 0..self.entries.len() {
            if !self.entries[slot].valid {
                continue;
            }
            let c = ck.counts[slot];
            if c <= 1 {
                self.free_entry(slot);
            } else {
                self.entries[slot].count = c;
            }
        }
        self.recycle(ck.counts);
    }

    fn release_checkpoint(&mut self, id: CheckpointId) {
        if let Some(pos) = crate::tracker::ckpt_pos(&self.checkpoints, id, |c| c.id) {
            debug_assert_eq!(pos, 0, "checkpoints must be released oldest-first");
            if let Some(ck) = self.checkpoints.remove(pos) {
                self.recycle(ck.counts);
            }
        }
    }

    fn restore_to_committed(&mut self, _freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
        while let Some(ck) = self.checkpoints.pop_back() {
            self.recycle(ck.counts);
        }
        for slot in 0..self.entries.len() {
            if !self.entries[slot].valid {
                continue;
            }
            let c = self.entries[slot].arch_count;
            if c <= 1 {
                self.free_entry(slot);
            } else {
                self.entries[slot].count = c;
            }
        }
    }

    fn storage(&self) -> StorageReport {
        let tag_bits = 8 + 1 + 1;
        StorageReport {
            main_bits: self.entries.len() * (tag_bits + self.counter_bits as usize),
            per_checkpoint_bits: self.entries.len() * self.counter_bits as usize,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.find(class, preg).is_some()
    }

    fn shared_count(&self) -> usize {
        self.occupancy()
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.entries.encode(w);
        self.free_slots.encode(w);
        w.put_len(self.checkpoints.len());
        for c in &self.checkpoints {
            w.put_u64(c.id);
            c.counts.encode(w);
        }
        w.put_u64(self.next_ckpt);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let entries: Vec<Entry> = Snap::decode(r)?;
        if entries.len() != self.entries.len() {
            return Err(r.corrupt("Rda entry count"));
        }
        let free_slots: Vec<usize> = Snap::decode(r)?;
        if free_slots.iter().any(|&s| s >= entries.len()) {
            return Err(r.corrupt("Rda free slot out of range"));
        }
        let n = r.get_len()?;
        let mut checkpoints = VecDeque::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u64()?;
            let counts: Vec<u32> = Snap::decode(r)?;
            if counts.len() != entries.len() {
                return Err(r.corrupt("Rda checkpoint size"));
            }
            checkpoints.push_back(Checkpoint { id, counts });
        }
        self.entries = entries;
        self.free_slots = free_slots;
        self.checkpoints = checkpoints;
        self.ckpt_pool.clear();
        self.next_ckpt = r.get_u64()?;
        self.stats = Snap::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ShareKind;
    use regshare_types::ArchReg;

    fn share(p: usize) -> ShareRequest {
        ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(0),
            },
        }
    }

    fn reclaim(p: usize) -> ReclaimRequest {
        ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            arch: ArchReg::int(0),
            renews: false,
        }
    }

    #[test]
    fn duplicate_lifecycle() {
        let mut t = Rda::new(4, 3);
        assert!(t.try_share(&share(1))); // count 2
        assert!(t.try_share(&share(1))); // count 3
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep); // 2
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep); // 1, entry freed
        assert!(!t.is_shared(RegClass::Int, PhysReg::new(1)));
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Free); // untracked
    }

    #[test]
    fn commits_write_every_checkpoint() {
        let mut t = Rda::new(4, 3);
        assert!(t.try_share(&share(1)));
        let _c1 = t.checkpoint();
        let _c2 = t.checkpoint();
        let _c3 = t.checkpoint();
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
        // One commit touched 3 checkpoints — the RDA's cost.
        assert_eq!(t.stats().commit_checkpoint_writes, 3);
    }

    #[test]
    fn restore_uses_decremented_checkpoint_counts() {
        let mut t = Rda::new(4, 3);
        assert!(t.try_share(&share(1))); // count 2
        let ck = t.checkpoint(); // snapshot 2
        assert!(t.try_share(&share(1))); // wrong path: 3
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep); // commits: live 2, ckpt 1
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        // Checkpointed count fell to 1 → entry retired; remaining mapping
        // frees normally.
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Free);
    }

    #[test]
    fn wrong_path_only_entry_dies_on_restore() {
        let mut t = Rda::new(4, 3);
        let ck = t.checkpoint();
        assert!(t.try_share(&share(9)));
        let mut freed = Vec::new();
        t.restore(ck, &mut freed);
        assert_eq!(t.shared_count(), 0);
    }

    #[test]
    fn saturation_and_capacity_rejections() {
        let mut t = Rda::new(1, 2); // max count 3
        assert!(t.try_share(&share(1))); // 2
        assert!(t.try_share(&share(1))); // 3
        assert!(!t.try_share(&share(1))); // saturated
        assert!(!t.try_share(&share(2))); // full
        let s = t.stats();
        assert_eq!(s.shares_rejected_saturated, 1);
        assert_eq!(s.shares_rejected_full, 1);
    }

    #[test]
    fn commit_flush_restores_arch_count() {
        let mut t = Rda::new(4, 3);
        assert!(t.try_share(&share(1))); // count 2, arch 1
        t.on_sharer_commit(&share(1)); // arch 2
        assert!(t.try_share(&share(1))); // count 3 (speculative)
        let mut freed = Vec::new();
        t.restore_to_committed(&mut freed);
        // arch count 2 → entry survives with count 2.
        assert!(t.is_shared(RegClass::Int, PhysReg::new(1)));
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Free);
    }
}

//! Roth's 2D reference matrix (§4.2, \[22\]).
//!
//! Columns are physical registers, rows are ROB entries; a set bit means the
//! ROB entry references the register, and a register is free when its column
//! ORs to zero. Recovery is a parallel flash-clear of the squashed rows, so
//! it is as fast as checkpointing — the paper's objection is *storage*
//! (≈7.8KB for a Haswell-sized machine) and scalability, which
//! [`RothMatrix::storage`] quantifies.
//!
//! Functionally, a column's population count is a reference count, so this
//! implementation keeps per-register counts (updated by the same squash-walk
//! hooks a row flash-clear would drive in hardware) rather than materializing
//! the bit-matrix; decisions are identical and the storage report reflects
//! the real matrix geometry.

use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareRequest, SharingTracker, StorageReport,
    TrackerStats,
};
use regshare_types::{PhysReg, RegClass};

/// The matrix scheme. See the module docs.
///
/// # Examples
///
/// ```
/// use regshare_refcount::{RothMatrix, SharingTracker};
/// let t = RothMatrix::new(256, 192);
/// // Haswell-scale: ~2 × 192 × 256 bits of matrix.
/// assert!(t.storage().main_bits > 90_000);
/// // Flash-clear recovery: no walk stall.
/// assert_eq!(t.recovery_stall_cycles(100), 0);
/// ```
#[derive(Debug)]
pub struct RothMatrix {
    counts: [Vec<u32>; 2],
    rob_entries: usize,
    stats: TrackerStats,
}

impl RothMatrix {
    /// Creates a matrix for `pregs_per_class` registers per class and
    /// `rob_entries` rows.
    pub fn new(pregs_per_class: usize, rob_entries: usize) -> RothMatrix {
        RothMatrix {
            counts: [vec![0; pregs_per_class], vec![0; pregs_per_class]],
            rob_entries,
            stats: TrackerStats::default(),
        }
    }

    #[inline]
    fn count_mut(&mut self, class: RegClass, preg: PhysReg) -> &mut u32 {
        &mut self.counts[class.index()][preg.index()]
    }
}

impl SharingTracker for RothMatrix {
    fn name(&self) -> &'static str {
        "roth-matrix"
    }

    fn on_alloc(&mut self, class: RegClass, preg: PhysReg) {
        *self.count_mut(class, preg) = 1;
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        *self.count_mut(req.class, req.preg) += 1;
        self.stats.shares_accepted += 1;
        true
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.stats.reclaims += 1;
        let c = self.count_mut(req.class, req.preg);
        *c = c.saturating_sub(1);
        if *c == 0 {
            ReclaimDecision::Free
        } else {
            self.stats.reclaim_cam_hits += 1;
            ReclaimDecision::Keep
        }
    }

    fn checkpoint(&mut self) -> CheckpointId {
        self.stats.checkpoints_taken += 1;
        0
    }

    fn restore(&mut self, _id: CheckpointId, _freed: &mut Vec<(RegClass, PhysReg)>) {
        // Row flash-clear; per-µ-op effects arrive via on_squash_uop.
        self.stats.restores += 1;
    }

    fn release_checkpoint(&mut self, _id: CheckpointId) {}

    fn restore_to_committed(&mut self, _freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
    }

    fn on_squash_share(&mut self, class: RegClass, preg: PhysReg) -> Option<(RegClass, PhysReg)> {
        // In hardware this is a row flash-clear; functionally it adjusts the
        // column population count. A zero column means the register is free.
        let v = self.count_mut(class, preg);
        *v = v.saturating_sub(1);
        if *v == 0 {
            Some((class, preg))
        } else {
            None
        }
    }

    fn on_squash_alloc(&mut self, class: RegClass, preg: PhysReg) {
        let v = self.count_mut(class, preg);
        *v = v.saturating_sub(1);
    }

    fn recovery_stall_cycles(&self, _squashed: usize) -> u64 {
        0 // rows clear in parallel
    }

    fn storage(&self) -> StorageReport {
        // rows × columns per class, plus the CRM columns the paper notes are
        // not even counted in its 7.8KB figure.
        let cols = self.counts[0].len() + self.counts[1].len();
        StorageReport {
            main_bits: self.rob_entries * cols,
            per_checkpoint_bits: 0,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.counts[class.index()][preg.index()] >= 2
    }

    fn shared_count(&self) -> usize {
        self.counts.iter().flatten().filter(|&&c| c >= 2).count()
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.counts[0].encode(w);
        self.counts[1].encode(w);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let int: Vec<u32> = Snap::decode(r)?;
        let fp: Vec<u32> = Snap::decode(r)?;
        if int.len() != self.counts[0].len() || fp.len() != self.counts[1].len() {
            return Err(r.corrupt("RothMatrix table size"));
        }
        self.counts = [int, fp];
        self.stats = Snap::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ShareKind;
    use regshare_types::ArchReg;

    #[test]
    fn storage_matches_paper_scale() {
        // Haswell: 192-entry ROB, 168+168 registers → ~7.8KB.
        let t = RothMatrix::new(168, 192);
        let bits = t.storage().main_bits;
        let kb = bits as f64 / 8.0 / 1024.0;
        assert!((7.5..8.2).contains(&kb), "matrix storage {kb:.2}KB");
    }

    #[test]
    fn decisions_match_reference_counting() {
        let mut t = RothMatrix::new(16, 32);
        let p = PhysReg::new(3);
        t.on_alloc(RegClass::Int, p);
        t.try_share(&ShareRequest {
            class: RegClass::Int,
            preg: p,
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(0),
            },
        });
        let r = ReclaimRequest {
            class: RegClass::Int,
            preg: p,
            arch: ArchReg::int(0),
            renews: false,
        };
        assert_eq!(t.on_reclaim(&r), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&r), ReclaimDecision::Free);
    }
}

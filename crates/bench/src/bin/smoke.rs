//! Quick shape check: ME / SMB / combined speedups on a few workloads.
//!
//! By default runs the `smoke` preset scenario and appends per-mechanism
//! diagnostics (elimination / bypass rates, traps, false dependencies) to
//! the standard report. `--scenario <file>` / `--preset <name>` swap in any
//! other experiment (standard report only — the diagnostic columns need the
//! smoke preset's `me`/`smb` variants). Output is byte-identical at any
//! `--jobs` level; CI diffs a serial against a sharded run.

use regshare_bench::checkpoint;
use regshare_bench::cli::run_front_door;
use regshare_bench::{render_report, Table};

fn main() {
    let (args, scenario) = run_front_door("smoke", "smoke");

    // Non-default experiments get the standard report; the built-in smoke
    // preset additionally prints its per-mechanism diagnostics below. Gate
    // on how the scenario was selected, not on its self-declared name — a
    // user file named "smoke" need not have the preset's variant labels.
    // Both paths go through the checkpoint-aware runner, which falls back
    // to the parallel engine when no checkpointing is requested.
    let is_builtin_smoke =
        args.scenario_path.is_none() && args.preset.as_deref().unwrap_or("smoke") == "smoke";
    if !is_builtin_smoke {
        match checkpoint::run_report(&scenario, args.checkpoint_file.as_deref()) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("smoke: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let grid = match checkpoint::run_sweep(&scenario, args.checkpoint_file.as_deref()) {
        Ok(grid) => grid,
        Err(e) => {
            eprintln!("smoke: {e}");
            std::process::exit(1);
        }
    };
    match render_report(&scenario, &grid) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("smoke: {e}");
            std::process::exit(1);
        }
    }

    let mut t = Table::new(vec![
        "bench", "elim", "bypassed", "traps_b", "traps_s", "fdep_b", "fdep_s",
    ]);
    for row in grid.rows() {
        let base = row.get("base").expect("smoke preset label");
        let me = row.get("me").expect("smoke preset label");
        let smb = row.get("smb").expect("smoke preset label");
        t.row(vec![
            row.workload().name.clone(),
            format!("{:.2}%", me.stats.pct_renamed_eliminated()),
            format!("{:.1}%", smb.stats.pct_loads_bypassed()),
            format!("{}", base.stats.memory_traps),
            format!("{}", smb.stats.memory_traps),
            format!("{}", base.stats.false_dependencies),
            format!("{}", smb.stats.false_dependencies),
        ]);
    }
    println!("\n# per-mechanism diagnostics\n");
    t.print();
    eprintln!("[smoke: {} jobs]", scenario.options.job_count());
}

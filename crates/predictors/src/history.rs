//! Global branch history and incrementally folded history registers.

/// Maximum supported history length in bits.
pub const MAX_HISTORY: usize = 1024;
const WORDS: usize = MAX_HISTORY / 64;

/// A shift register holding the last [`MAX_HISTORY`] branch outcomes.
/// Bit 0 is the most recent branch.
///
/// # Examples
///
/// ```
/// use regshare_predictors::history::GlobalHistory;
/// let mut h = GlobalHistory::new();
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0));
/// assert!(h.bit(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalHistory {
    words: [u64; WORDS],
}

impl Default for GlobalHistory {
    fn default() -> Self {
        GlobalHistory { words: [0; WORDS] }
    }
}

impl GlobalHistory {
    /// Creates an all-zero (all not-taken) history.
    pub fn new() -> GlobalHistory {
        GlobalHistory::default()
    }

    /// Shifts in one outcome at position 0.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let mut carry = u64::from(taken);
        for w in &mut self.words {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
    }

    /// The outcome `pos` branches ago (`pos == 0` is the most recent).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= MAX_HISTORY`.
    #[inline]
    pub fn bit(&self, pos: usize) -> bool {
        assert!(pos < MAX_HISTORY);
        (self.words[pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// The low 64 bits of history (for [`regshare_types::HistorySnapshot`]).
    #[inline]
    pub fn low64(&self) -> u64 {
        self.words[0]
    }
}

/// An incrementally maintained fold of the most recent `hist_len` history
/// bits down to `folded_bits` bits, as used by TAGE index/tag functions.
///
/// Pushing a bit costs O(1); the fold always equals the XOR of the history
/// window split into `folded_bits`-wide chunks (verified by tests against a
/// naive recomputation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedHistory {
    comp: u32,
    hist_len: usize,
    folded_bits: u32,
    /// Position (within the folded register) where the outgoing bit lands.
    out_pos: u32,
}

impl FoldedHistory {
    /// Creates a fold of `hist_len` bits into `folded_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `folded_bits` is 0 or > 32, or `hist_len` exceeds
    /// [`MAX_HISTORY`].
    pub fn new(hist_len: usize, folded_bits: u32) -> FoldedHistory {
        assert!(folded_bits > 0 && folded_bits <= 32);
        assert!(hist_len <= MAX_HISTORY);
        FoldedHistory {
            comp: 0,
            hist_len,
            folded_bits,
            out_pos: (hist_len as u32) % folded_bits,
        }
    }

    /// Updates the fold for a new outcome entering the history, given the
    /// *pre-push* global history (so the outgoing bit can be read).
    #[inline]
    pub fn push(&mut self, new_bit: bool, pre_push_history: &GlobalHistory) {
        if self.hist_len == 0 {
            return;
        }
        let mask = if self.folded_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.folded_bits) - 1
        };
        // Incoming bit enters at position 0 after a rotate-left by 1.
        self.comp = ((self.comp << 1) | (self.comp >> (self.folded_bits - 1))) & mask;
        self.comp ^= u32::from(new_bit);
        // Outgoing bit: the one that falls off the end of the window.
        let out_bit = pre_push_history.bit(self.hist_len - 1);
        self.comp ^= u32::from(out_bit) << self.out_pos;
        self.comp &= mask;
    }

    /// The folded value.
    #[inline]
    pub fn value(&self) -> u32 {
        self.comp
    }

    /// Recomputes the fold from scratch (slow; used for tests/recovery
    /// verification).
    pub fn recompute(&self, history: &GlobalHistory) -> u32 {
        let mask = if self.folded_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.folded_bits) - 1
        };
        let mut v = 0u32;
        for i in 0..self.hist_len {
            // Bit i of history goes to fold position (i % folded_bits), but
            // accounting for the rotate-based incremental scheme: position
            // of bit i is (i) mod folded_bits counted with rotation.
            let pos = (i as u32) % self.folded_bits;
            if history.bit(i) {
                v ^= 1 << pos;
            }
        }
        v & mask
    }
}

regshare_types::impl_snap!(GlobalHistory { words });

impl regshare_types::snapshot::Snap for FoldedHistory {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        w.put_u32(self.comp);
        regshare_types::snapshot::Snap::encode(&self.hist_len, w);
        w.put_u32(self.folded_bits);
        w.put_u32(self.out_pos);
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        let comp = r.get_u32()?;
        let hist_len: usize = regshare_types::snapshot::Snap::decode(r)?;
        let folded_bits = r.get_u32()?;
        let out_pos = r.get_u32()?;
        // The shift arithmetic in `push` relies on these invariants (the
        // same ones `new` asserts); a corrupt stream must not import a
        // geometry that would overflow a shift later.
        if folded_bits == 0
            || folded_bits > 32
            || hist_len > MAX_HISTORY
            || out_pos != (hist_len as u32) % folded_bits
        {
            return Err(r.corrupt("FoldedHistory geometry"));
        }
        Ok(FoldedHistory {
            comp,
            hist_len,
            folded_bits,
            out_pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_history_shifts_across_words() {
        let mut h = GlobalHistory::new();
        h.push(true);
        for _ in 0..70 {
            h.push(false);
        }
        assert!(h.bit(70));
        assert!(!h.bit(69));
        assert!(!h.bit(0));
    }

    #[test]
    fn low64_matches_pushes() {
        let mut h = GlobalHistory::new();
        for taken in [true, false, true, true] {
            h.push(taken);
        }
        // Most recent push is bit 0: pushes T,F,T,T → bits 1,1,0,1 (LSB first).
        assert_eq!(h.low64() & 0xf, 0b1011);
    }

    #[test]
    fn folded_history_matches_naive_recompute() {
        // Pseudo-random outcome stream; check incremental == naive at every step.
        for (hist_len, bits) in [(5usize, 3u32), (17, 7), (64, 11), (130, 12), (640, 13)] {
            let mut h = GlobalHistory::new();
            let mut f = FoldedHistory::new(hist_len, bits);
            let mut x = 0x12345678u64;
            for step in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let bit = x & 1 == 1;
                f.push(bit, &h);
                h.push(bit);
                assert_eq!(
                    f.value(),
                    f.recompute(&h),
                    "mismatch at step {step} (len {hist_len}, bits {bits})"
                );
            }
        }
    }

    #[test]
    fn zero_length_fold_is_inert() {
        let mut h = GlobalHistory::new();
        let mut f = FoldedHistory::new(0, 5);
        f.push(true, &h);
        h.push(true);
        assert_eq!(f.value(), 0);
    }
}

//! Tiny deterministic RNG for program generation (xorshift64*).

/// A deterministic 64-bit RNG for workload construction.
///
/// # Examples
///
/// ```
/// use regshare_workloads::rng::Xorshift;
/// let mut a = Xorshift::new(7);
/// let mut b = Xorshift::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Seeds the generator (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli trial with probability `pct` percent.
    pub fn chance(&mut self, pct: f64) -> bool {
        (self.next_u64() % 10_000) as f64 / 100.0 < pct
    }

    /// Uniform choice from a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = Xorshift::new(3);
        let hits = (0..100_000).filter(|_| r.chance(25.0)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "25% chance hit {hits}/100000"
        );
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}

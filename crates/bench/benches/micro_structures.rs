//! Criterion microbenchmarks of the core structures: ISRB operations, TAGE
//! prediction, cache probes, end-to-end simulator throughput, and the
//! parallel sweep engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use regshare_bench::{RunWindow, SweepSpec, VariantSpec};
use regshare_core::{CoreConfig, Simulator};
use regshare_mem::{Cache, CacheConfig};
use regshare_predictors::{Tage, TageConfig};
use regshare_refcount::{
    Isrb, IsrbConfig, ReclaimRequest, ShareKind, ShareRequest, SharingTracker,
};
use regshare_types::{ArchReg, PhysReg, RegClass};
use regshare_workloads::mini;
use std::hint::black_box;

fn bench_isrb(c: &mut Criterion) {
    c.bench_function("isrb_share_reclaim_cycle", |b| {
        let mut isrb = Isrb::new(IsrbConfig::hpca16());
        let share = ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(42),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(1),
            },
        };
        let reclaim = ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(42),
            arch: ArchReg::int(1),
            renews: false,
        };
        b.iter(|| {
            black_box(isrb.try_share(black_box(&share)));
            black_box(isrb.on_reclaim(black_box(&reclaim)));
            black_box(isrb.on_reclaim(black_box(&reclaim)));
        });
    });
    c.bench_function("isrb_checkpoint_restore", |b| {
        let mut isrb = Isrb::new(IsrbConfig::hpca16());
        let share = ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(7),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(2),
            },
        };
        let mut freed = Vec::new();
        b.iter(|| {
            let ck = isrb.checkpoint();
            isrb.try_share(black_box(&share));
            isrb.restore(ck, &mut freed);
            freed.clear();
        });
    });
}

fn bench_tage(c: &mut Criterion) {
    c.bench_function("tage_predict_train", |b| {
        let mut tage = Tage::new(TageConfig::hpca16());
        let mut pc = 0x400000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0x40ffff;
            let p = tage.predict(black_box(pc));
            tage.train(pc, &p, pc & 8 == 0);
            tage.update_history(pc & 8 == 0, pc);
            black_box(p.taken)
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1d_probe", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        });
        for i in 0..512 {
            cache.fill(i * 64, false);
        }
        let mut a = 0u64;
        b.iter(|| {
            a = (a + 64) & 0xffff;
            black_box(cache.probe(black_box(a)))
        });
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("throughput_10k_uops", |b| {
        let program = mini().build();
        b.iter(|| {
            let mut sim = Simulator::new(&program, CoreConfig::hpca16().with_me().with_smb());
            black_box(sim.run(10_000).committed)
        });
    });
    g.finish();
}

fn bench_sweep_engine(c: &mut Criterion) {
    // End-to-end engine cost (spawn pool, memoize program, merge grid) for
    // a tiny 1×2 matrix, serial vs sharded — the delta is the engine's
    // scheduling overhead, which must stay negligible next to simulation.
    let window = RunWindow {
        warmup: 500,
        measure: 1_500,
    };
    let base = VariantSpec::hpca16().to_config().expect("valid");
    let both = VariantSpec::preset("me_smb").to_config().expect("valid");
    let mut g = c.benchmark_group("sweep_engine");
    g.sample_size(10);
    for jobs in [1usize, 2] {
        g.bench_function(&format!("mini_grid_jobs{jobs}"), |b| {
            b.iter(|| {
                let grid = SweepSpec::new(vec![mini()], window)
                    .variant("base", base.clone())
                    .variant("both", both.clone())
                    .jobs(jobs)
                    .run()
                    .expect("sweep completes");
                black_box(grid.get(0, "both").expect("declared label").ipc())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_isrb,
    bench_tage,
    bench_cache,
    bench_simulator,
    bench_sweep_engine
);
criterion_main!(benches);

//! Load and store queues: store-to-load forwarding, ordering waits, and
//! memory-order violation detection (Table 1: 72/48 entries, STLF 4 cycles).

use regshare_isa::op::MemRef;
use regshare_types::SeqNum;

/// What a load should do after address generation, given the store queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadAction {
    /// Fully contained in an executed in-flight store: forward from it.
    Forward {
        /// The forwarding store.
        store_seq: SeqNum,
    },
    /// Overlaps an in-flight store without full containment (or the store's
    /// data is not forwardable): wait until that store commits and writes.
    WaitStoreCommit {
        /// The blocking store.
        store_seq: SeqNum,
    },
    /// No conflicting in-flight store: access the cache.
    Cache,
}

/// A store queue entry.
#[derive(Debug, Clone, Copy)]
pub struct SqEntry {
    /// Program-order sequence number.
    pub seq: SeqNum,
    /// ROB slot (for cross-indexing).
    pub rob_slot: usize,
    /// Address/size, known once the store has executed.
    pub mem: MemRef,
    /// Whether the address has been computed (AGU done).
    pub executed: bool,
}

/// A load queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LqEntry {
    /// Program-order sequence number.
    pub seq: SeqNum,
    /// ROB slot.
    pub rob_slot: usize,
    /// Address/size.
    pub mem: MemRef,
    /// The load has obtained (or started obtaining) its value.
    pub read_started: bool,
    /// Store it forwarded from, if any.
    pub fwd_from: Option<SeqNum>,
    /// The load's value came through a *correct* SMB bypass: its
    /// architectural value is right regardless of memory-order races, so it
    /// cannot raise a violation (§3.1).
    pub bypassed_ok: bool,
}

regshare_types::impl_snap!(SqEntry {
    seq,
    rob_slot,
    mem,
    executed
});

regshare_types::impl_snap!(LqEntry {
    seq,
    rob_slot,
    mem,
    read_started,
    fwd_from,
    bypassed_ok
});

/// The store queue.
#[derive(Debug)]
pub struct StoreQueue {
    entries: Vec<Option<SqEntry>>,
    count: usize,
}

impl StoreQueue {
    /// Creates a queue with `capacity` entries.
    pub fn new(capacity: usize) -> StoreQueue {
        StoreQueue {
            entries: vec![None; capacity],
            count: 0,
        }
    }

    /// Whether an entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.count < self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Allocates an entry, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn alloc(&mut self, e: SqEntry) -> usize {
        let idx = self
            .entries
            .iter()
            .position(|s| s.is_none())
            .expect("store queue full");
        self.entries[idx] = Some(e);
        self.count += 1;
        idx
    }

    /// Frees entry `idx` (store committed or squashed).
    pub fn free(&mut self, idx: usize) {
        if self.entries[idx].take().is_some() {
            self.count -= 1;
        }
    }

    /// Mutable access to entry `idx`.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut SqEntry> {
        self.entries[idx].as_mut()
    }

    /// Shared access to entry `idx`.
    pub fn get(&self, idx: usize) -> Option<&SqEntry> {
        self.entries[idx].as_ref()
    }

    /// Frees all entries with `seq > after` (squash).
    pub fn squash_younger(&mut self, after: SeqNum) {
        for e in &mut self.entries {
            if matches!(e, Some(s) if s.seq > after) {
                *e = None;
                self.count -= 1;
            }
        }
    }

    /// Frees every entry (commit-time flush).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.count = 0;
    }

    /// Whether the store `seq` is still in flight and unexecuted (its
    /// address is unknown): the condition Store Sets ordering waits on.
    pub fn is_unexecuted(&self, seq: SeqNum) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|s| s.seq == seq && !s.executed)
    }

    /// Serializes the queue for checkpointing.
    pub fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.entries.encode(w);
    }

    /// Restores state saved by [`StoreQueue::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let entries: Vec<Option<SqEntry>> = Snap::decode(r)?;
        if entries.len() != self.entries.len() {
            return Err(r.corrupt("StoreQueue capacity"));
        }
        self.count = entries.iter().filter(|e| e.is_some()).count();
        self.entries = entries;
        Ok(())
    }

    /// Decides the [`LoadAction`] for a load at `load_seq` accessing `mem`.
    ///
    /// Scans older stores; the *youngest* older store with a known,
    /// overlapping address decides: containment + executed ⇒ forward,
    /// otherwise wait for its commit. Older stores with unknown addresses
    /// are speculated past (violations are caught at their execution).
    pub fn load_action(&self, load_seq: SeqNum, mem: &MemRef) -> LoadAction {
        let mut best: Option<&SqEntry> = None;
        for s in self.entries.iter().flatten() {
            if s.seq >= load_seq || !s.executed {
                continue;
            }
            if mem.overlaps(&s.mem) {
                match best {
                    Some(b) if b.seq > s.seq => {}
                    _ => best = Some(s),
                }
            }
        }
        match best {
            None => LoadAction::Cache,
            Some(s) => {
                if mem.contained_in(&s.mem) {
                    LoadAction::Forward { store_seq: s.seq }
                } else {
                    LoadAction::WaitStoreCommit { store_seq: s.seq }
                }
            }
        }
    }
}

/// The load queue.
#[derive(Debug)]
pub struct LoadQueue {
    entries: Vec<Option<LqEntry>>,
    count: usize,
}

impl LoadQueue {
    /// Creates a queue with `capacity` entries.
    pub fn new(capacity: usize) -> LoadQueue {
        LoadQueue {
            entries: vec![None; capacity],
            count: 0,
        }
    }

    /// Whether an entry can be allocated.
    pub fn has_space(&self) -> bool {
        self.count < self.entries.len()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Allocates an entry, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn alloc(&mut self, e: LqEntry) -> usize {
        let idx = self
            .entries
            .iter()
            .position(|s| s.is_none())
            .expect("load queue full");
        self.entries[idx] = Some(e);
        self.count += 1;
        idx
    }

    /// Frees entry `idx`.
    pub fn free(&mut self, idx: usize) {
        if self.entries[idx].take().is_some() {
            self.count -= 1;
        }
    }

    /// Mutable access to entry `idx`.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut LqEntry> {
        self.entries[idx].as_mut()
    }

    /// Frees all entries with `seq > after` (squash).
    pub fn squash_younger(&mut self, after: SeqNum) {
        for e in &mut self.entries {
            if matches!(e, Some(l) if l.seq > after) {
                *e = None;
                self.count -= 1;
            }
        }
    }

    /// Frees every entry (commit-time flush).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.count = 0;
    }

    /// Serializes the queue for checkpointing.
    pub fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.entries.encode(w);
    }

    /// Restores state saved by [`LoadQueue::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let entries: Vec<Option<LqEntry>> = Snap::decode(r)?;
        if entries.len() != self.entries.len() {
            return Err(r.corrupt("LoadQueue capacity"));
        }
        self.count = entries.iter().filter(|e| e.is_some()).count();
        self.entries = entries;
        Ok(())
    }

    /// Memory-order violation check at a store's address computation:
    /// returns the *oldest* younger load that already read, overlaps the
    /// store, and did not get its value from this store or anything younger.
    pub fn violation(&self, store_seq: SeqNum, store_mem: &MemRef) -> Option<SeqNum> {
        let mut worst: Option<SeqNum> = None;
        for l in self.entries.iter().flatten() {
            if l.seq <= store_seq || !l.read_started {
                continue;
            }
            if !store_mem.overlaps(&l.mem) {
                continue;
            }
            let got_newer_data = matches!(l.fwd_from, Some(f) if f >= store_seq);
            if got_newer_data || l.bypassed_ok {
                continue;
            }
            worst = match worst {
                Some(w) if w < l.seq => Some(w),
                _ => Some(l.seq),
            };
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mref(addr: u64, size: u8, is_store: bool) -> MemRef {
        MemRef {
            addr,
            size,
            is_store,
        }
    }

    fn sq_with(stores: &[(u64, u64, u8, bool)]) -> StoreQueue {
        // (seq, addr, size, executed)
        let mut sq = StoreQueue::new(8);
        for &(seq, addr, size, executed) in stores {
            sq.alloc(SqEntry {
                seq: SeqNum(seq),
                rob_slot: 0,
                mem: mref(addr, size, true),
                executed,
            });
        }
        sq
    }

    #[test]
    fn load_forwards_from_containing_executed_store() {
        let sq = sq_with(&[(5, 100, 8, true)]);
        let a = sq.load_action(SeqNum(9), &mref(100, 8, false));
        assert_eq!(
            a,
            LoadAction::Forward {
                store_seq: SeqNum(5)
            }
        );
        // Sub-word load contained in the store also forwards.
        let b = sq.load_action(SeqNum(9), &mref(104, 4, false));
        assert_eq!(
            b,
            LoadAction::Forward {
                store_seq: SeqNum(5)
            }
        );
    }

    #[test]
    fn partial_overlap_waits_for_commit() {
        let sq = sq_with(&[(5, 100, 4, true)]);
        // 8-byte load over a 4-byte store: overlap without containment.
        let a = sq.load_action(SeqNum(9), &mref(100, 8, false));
        assert_eq!(
            a,
            LoadAction::WaitStoreCommit {
                store_seq: SeqNum(5)
            }
        );
    }

    #[test]
    fn youngest_older_store_wins() {
        let sq = sq_with(&[(3, 100, 8, true), (6, 100, 8, true)]);
        let a = sq.load_action(SeqNum(9), &mref(100, 8, false));
        assert_eq!(
            a,
            LoadAction::Forward {
                store_seq: SeqNum(6)
            }
        );
    }

    #[test]
    fn younger_stores_are_ignored() {
        let sq = sq_with(&[(12, 100, 8, true)]);
        let a = sq.load_action(SeqNum(9), &mref(100, 8, false));
        assert_eq!(a, LoadAction::Cache);
    }

    #[test]
    fn unexecuted_stores_are_speculated_past() {
        let sq = sq_with(&[(5, 100, 8, false)]);
        let a = sq.load_action(SeqNum(9), &mref(100, 8, false));
        assert_eq!(a, LoadAction::Cache);
        assert!(sq.is_unexecuted(SeqNum(5)));
    }

    #[test]
    fn violation_detects_early_load() {
        let mut lq = LoadQueue::new(8);
        lq.alloc(LqEntry {
            seq: SeqNum(9),
            rob_slot: 1,
            mem: mref(100, 8, false),
            read_started: true,
            fwd_from: None,
            bypassed_ok: false,
        });
        // Store 5 computes its address afterwards and overlaps: violation.
        let v = lq.violation(SeqNum(5), &mref(100, 8, true));
        assert_eq!(v, Some(SeqNum(9)));
    }

    #[test]
    fn no_violation_when_load_forwarded_from_newer_store() {
        let mut lq = LoadQueue::new(8);
        lq.alloc(LqEntry {
            seq: SeqNum(9),
            rob_slot: 1,
            mem: mref(100, 8, false),
            read_started: true,
            fwd_from: Some(SeqNum(7)),
            bypassed_ok: false,
        });
        assert_eq!(lq.violation(SeqNum(5), &mref(100, 8, true)), None);
        // But a store younger than the forwarder still violates.
        assert_eq!(
            lq.violation(SeqNum(8), &mref(100, 8, true)),
            Some(SeqNum(9))
        );
    }

    #[test]
    fn violation_ignores_unread_or_disjoint_loads() {
        let mut lq = LoadQueue::new(8);
        lq.alloc(LqEntry {
            seq: SeqNum(9),
            rob_slot: 1,
            mem: mref(100, 8, false),
            read_started: false,
            fwd_from: None,
            bypassed_ok: false,
        });
        lq.alloc(LqEntry {
            seq: SeqNum(10),
            rob_slot: 2,
            mem: mref(400, 8, false),
            read_started: true,
            fwd_from: None,
            bypassed_ok: false,
        });
        assert_eq!(lq.violation(SeqNum(5), &mref(100, 8, true)), None);
    }

    #[test]
    fn squash_frees_younger_entries() {
        let mut sq = sq_with(&[(3, 0, 8, true), (7, 8, 8, true), (9, 16, 8, false)]);
        sq.squash_younger(SeqNum(5));
        assert_eq!(sq.len(), 1);
        let mut lq = LoadQueue::new(4);
        lq.alloc(LqEntry {
            seq: SeqNum(6),
            rob_slot: 0,
            mem: mref(0, 8, false),
            read_started: false,
            fwd_from: None,
            bypassed_ok: false,
        });
        lq.squash_younger(SeqNum(5));
        assert!(lq.is_empty());
    }

    #[test]
    fn capacity_tracking() {
        let mut sq = StoreQueue::new(2);
        assert!(sq.has_space());
        let a = sq.alloc(SqEntry {
            seq: SeqNum(1),
            rob_slot: 0,
            mem: mref(0, 8, true),
            executed: false,
        });
        sq.alloc(SqEntry {
            seq: SeqNum(2),
            rob_slot: 1,
            mem: mref(8, 8, true),
            executed: false,
        });
        assert!(!sq.has_space());
        sq.free(a);
        assert!(sq.has_space());
    }
}

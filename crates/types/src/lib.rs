//! Foundational types shared by every `regshare` crate.
//!
//! This crate defines the strongly-typed identifiers that flow between the
//! simulator subsystems (physical/architectural register names, sequence
//! numbers, cycle counts), the deterministic in-tree hasher used by all
//! simulator tables, and small utilities (saturating counters, geometric
//! mean) used throughout the workspace.
//!
//! # Examples
//!
//! ```
//! use regshare_types::{ArchReg, RegClass, PhysReg};
//!
//! let rax = ArchReg::int(0);
//! assert_eq!(rax.class(), RegClass::Int);
//! let p = PhysReg::new(42);
//! assert_eq!(p.index(), 42);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod counter;
pub mod hasher;
pub mod snapshot;
pub mod stats;

use std::fmt;

/// Register class: integer or floating-point/SIMD.
///
/// The simulated machine, like x86_64, has two independent physical register
/// files, free lists and rename maps — one per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// General-purpose integer registers.
    Int,
    /// Floating-point / SIMD registers.
    Fp,
}

impl RegClass {
    /// Both classes, in a fixed order (useful for per-class arrays).
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// A dense index for per-class arrays: `Int == 0`, `Fp == 1`.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// Number of architectural registers per class (mirrors x86_64's
/// 16 GPRs + 16 SIMD registers).
pub const ARCH_REGS_PER_CLASS: usize = 16;

/// An architectural register name.
///
/// Encoded as a single byte: `0..16` are integer registers, `16..32` are
/// floating-point registers. The encoding is an implementation detail;
/// use [`ArchReg::int`], [`ArchReg::fp`], [`ArchReg::class`] and
/// [`ArchReg::class_index`].
///
/// # Examples
///
/// ```
/// use regshare_types::{ArchReg, RegClass};
/// let r = ArchReg::fp(3);
/// assert_eq!(r.class(), RegClass::Fp);
/// assert_eq!(r.class_index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Total number of architectural registers across both classes.
    pub const COUNT: usize = 2 * ARCH_REGS_PER_CLASS;

    /// The `i`-th integer architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub fn int(i: usize) -> ArchReg {
        assert!(i < ARCH_REGS_PER_CLASS, "int arch reg out of range: {i}");
        ArchReg(i as u8)
    }

    /// The `i`-th floating-point architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub fn fp(i: usize) -> ArchReg {
        assert!(i < ARCH_REGS_PER_CLASS, "fp arch reg out of range: {i}");
        ArchReg((ARCH_REGS_PER_CLASS + i) as u8)
    }

    /// Builds a register from its flat index in `0..ArchReg::COUNT`.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= ArchReg::COUNT`.
    #[inline]
    pub fn from_flat(flat: usize) -> ArchReg {
        assert!(flat < Self::COUNT, "flat arch reg out of range: {flat}");
        ArchReg(flat as u8)
    }

    /// The register's class.
    #[inline]
    pub fn class(self) -> RegClass {
        if (self.0 as usize) < ARCH_REGS_PER_CLASS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Index within the register's class, in `0..16`.
    #[inline]
    pub fn class_index(self) -> usize {
        self.0 as usize % ARCH_REGS_PER_CLASS
    }

    /// Flat index across both classes, in `0..32`.
    #[inline]
    pub fn flat(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.class_index()),
            RegClass::Fp => write!(f, "f{}", self.class_index()),
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A physical register identifier within one register file.
///
/// Physical registers are class-local: `PhysReg::new(3)` in the INT file and
/// `PhysReg::new(3)` in the FP file are distinct registers. Code that handles
/// both classes carries the [`RegClass`] alongside.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysReg(u16);

impl PhysReg {
    /// Creates a physical register with the given index.
    #[inline]
    pub fn new(index: usize) -> PhysReg {
        PhysReg(index as u16)
    }

    /// The register file index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A global dynamic-instruction sequence number in program (commit) order.
///
/// On the correct path this is identical to the paper's *Commit Sequence
/// Number* (CSN): it increments by one for every micro-op in program order,
/// so `SeqNum` subtraction yields the paper's *Instruction Distance*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The next sequence number.
    #[inline]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Distance from `older` to `self` in program order, or `None` if
    /// `older` is in fact younger.
    #[inline]
    pub fn distance_from(self, older: SeqNum) -> Option<u64> {
        self.0.checked_sub(older.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulation cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// This cycle plus `n`.
    #[inline]
    pub fn plus(self, n: u64) -> Cycle {
        Cycle(self.0 + n)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A virtual memory address.
pub type Addr = u64;

/// Branch history snapshot taken in the front-end, carried with each µ-op.
///
/// Predictors indexed with PC ⊕ history (the TAGE-like distance predictor,
/// the NoSQ-style tables) consume this snapshot both at prediction time
/// (rename) and at training time (commit), so speculative-history management
/// does not have to be replicated in each consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistorySnapshot {
    /// Low 64 bits of the global (taken/not-taken) branch history;
    /// bit 0 is the most recent branch.
    pub ghist: u64,
    /// 16 bits of path history (low bits of recent branch PCs).
    pub path: u16,
}

impl HistorySnapshot {
    /// Pushes one branch outcome into the snapshot, returning the new value.
    #[inline]
    pub fn push(self, taken: bool, pc: Addr) -> HistorySnapshot {
        HistorySnapshot {
            ghist: (self.ghist << 1) | u64::from(taken),
            path: (self.path << 1) ^ (pc as u16 & 0x7fff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_classes_round_trip() {
        for i in 0..ARCH_REGS_PER_CLASS {
            let r = ArchReg::int(i);
            assert_eq!(r.class(), RegClass::Int);
            assert_eq!(r.class_index(), i);
            assert_eq!(ArchReg::from_flat(r.flat()), r);
            let f = ArchReg::fp(i);
            assert_eq!(f.class(), RegClass::Fp);
            assert_eq!(f.class_index(), i);
            assert_eq!(ArchReg::from_flat(f.flat()), f);
        }
    }

    #[test]
    #[should_panic]
    fn arch_reg_int_out_of_range_panics() {
        let _ = ArchReg::int(16);
    }

    #[test]
    fn arch_reg_debug_format() {
        assert_eq!(format!("{:?}", ArchReg::int(5)), "r5");
        assert_eq!(format!("{:?}", ArchReg::fp(7)), "f7");
    }

    #[test]
    fn seqnum_distance() {
        assert_eq!(SeqNum(10).distance_from(SeqNum(4)), Some(6));
        assert_eq!(SeqNum(4).distance_from(SeqNum(10)), None);
        assert_eq!(SeqNum(4).next(), SeqNum(5));
    }

    #[test]
    fn history_snapshot_push() {
        let h = HistorySnapshot::default()
            .push(true, 0x40)
            .push(false, 0x44);
        assert_eq!(h.ghist, 0b10);
        // path mixes PC bits of both branches
        assert_eq!(h.path, ((0x40u16 << 1) ^ 0x44));
    }

    #[test]
    fn reg_class_indices() {
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
        assert_eq!(RegClass::ALL.len(), 2);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(PhysReg::new(9).to_string(), "p9");
        assert_eq!(SeqNum(3).to_string(), "#3");
        assert_eq!(Cycle(8).to_string(), "@8");
        assert_eq!(RegClass::Int.to_string(), "int");
    }
}

//! Content-addressed result-cache entry codec.
//!
//! The serve daemon (`regshare-serve`) persists one file per simulated
//! (workload × configuration × window) cell. Each file is a flat
//! little-endian stream in the same discipline as [`crate::snapshot`] but
//! under its **own** magic and version, because the two formats evolve
//! independently: a machine-snapshot layout bump does not invalidate
//! cached results, and a result-payload change does not refuse old
//! machine snapshots.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"RGSC"
//! 4       4     cache format version (u32 LE), currently 1
//! 8       8     cell digest (u64 LE): content address of the entry
//! ```
//!
//! [`read_cache_header`] refuses a stream whose magic, version or digest
//! does not match, with the same typed [`SnapError`]s the snapshot codec
//! uses — a truncated or foreign-version cache file is a *diagnosed*
//! rejection, never a panic or a silently-wrong result.

use crate::snapshot::{SnapError, SnapReader, SnapWriter};

/// Magic bytes opening every cache-entry stream.
pub const CACHE_MAGIC: [u8; 4] = *b"RGSC";

/// Current cache-entry format version. Bump on ANY payload layout change
/// (including a layout change of the stats the payload embeds) — like the
/// snapshot format, there is no migration path: an old entry is refused
/// (and recomputed), never reinterpreted.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Writes the cache-entry header (magic, format version, cell digest).
pub fn write_cache_header(w: &mut SnapWriter, cell_digest: u64) {
    w.put_bytes(&CACHE_MAGIC);
    w.put_u32(CACHE_FORMAT_VERSION);
    w.put_u64(cell_digest);
}

/// Reads and validates a cache-entry header against `expected_digest`,
/// in check order: magic, version, digest.
pub fn read_cache_header(r: &mut SnapReader<'_>, expected_digest: u64) -> Result<(), SnapError> {
    let magic: [u8; 4] = r.get_bytes(4)?.try_into().unwrap();
    if magic != CACHE_MAGIC {
        return Err(SnapError::BadMagic { found: magic });
    }
    let version = r.get_u32()?;
    if version != CACHE_FORMAT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            supported: CACHE_FORMAT_VERSION,
        });
    }
    let digest = r.get_u64()?;
    if digest != expected_digest {
        return Err(SnapError::ConfigDigestMismatch {
            found: digest,
            expected: expected_digest,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(digest: u64) -> Vec<u8> {
        let mut w = SnapWriter::new();
        write_cache_header(&mut w, digest);
        w.put_u64(0xfeed);
        w.finish()
    }

    #[test]
    fn round_trips_and_checks_in_order() {
        let bytes = entry(42);
        let mut r = SnapReader::new(&bytes);
        read_cache_header(&mut r, 42).unwrap();
        assert_eq!(r.get_u64().unwrap(), 0xfeed);
        r.expect_eof().unwrap();
    }

    #[test]
    fn foreign_streams_are_refused_with_typed_errors() {
        // A machine snapshot is NOT a cache entry: different magic.
        let mut w = SnapWriter::new();
        crate::snapshot::write_header(&mut w, 42);
        let snap = w.finish();
        assert!(matches!(
            read_cache_header(&mut SnapReader::new(&snap), 42),
            Err(SnapError::BadMagic { .. })
        ));

        // Foreign version.
        let mut bytes = entry(42);
        bytes[4] = CACHE_FORMAT_VERSION as u8 + 1;
        assert_eq!(
            read_cache_header(&mut SnapReader::new(&bytes), 42),
            Err(SnapError::BadVersion {
                found: CACHE_FORMAT_VERSION + 1,
                supported: CACHE_FORMAT_VERSION,
            })
        );

        // Wrong cell digest (a file renamed over another cell's address).
        let bytes = entry(7);
        assert_eq!(
            read_cache_header(&mut SnapReader::new(&bytes), 42),
            Err(SnapError::ConfigDigestMismatch {
                found: 7,
                expected: 42
            })
        );

        // Truncation anywhere in the header.
        let bytes = entry(42);
        for cut in [0, 3, 7, 15] {
            assert!(matches!(
                read_cache_header(&mut SnapReader::new(&bytes[..cut]), 42),
                Err(SnapError::ShortRead { .. })
            ));
        }
    }
}

//! Memory hierarchy timing model: L1I/L1D, unified L2 with a stride
//! prefetcher, MSHRs, and a DDR3-1600-like DRAM bank/row-buffer model.
//!
//! Reproduces Table 1 of the paper: 32KB 8-way L1s (L1I 1 cycle, L1D 4
//! cycles, 64 MSHRs), 1MB 16-way unified L2 (12 cycles, stride prefetcher
//! degree 8 distance 1), 64B lines, LRU, and DRAM with 75–185 cycle load
//! latency over a 64B bus.
//!
//! The model is *latency-analytic*: an access computes its completion cycle
//! immediately (including MSHR merging, bank/row-buffer state and bus
//! queueing) rather than being driven by a discrete event queue. This keeps
//! the out-of-order core's writeback scheduling simple while preserving the
//! contention behaviour the experiments need.
//!
//! # Examples
//!
//! ```
//! use regshare_mem::{MemConfig, MemorySystem, MemResult};
//! use regshare_types::Cycle;
//!
//! let mut mem = MemorySystem::new(MemConfig::hpca16());
//! // Cold miss goes to DRAM...
//! let c1 = match mem.load(0x400000, 0x10000, Cycle(0)) {
//!     MemResult::Done(c) => c,
//!     MemResult::Retry => unreachable!(),
//! };
//! assert!(c1.0 >= 75);
//! // ...and the line is then L1-resident.
//! let c2 = match mem.load(0x400000, 0x10000, c1) {
//!     MemResult::Done(c) => c,
//!     MemResult::Retry => unreachable!(),
//! };
//! assert_eq!(c2.0, c1.0 + 4);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod dram;
pub mod mshr;
pub mod prefetch;

pub use cache::{Cache, CacheConfig};
pub use dram::{DramConfig, DramModel};
pub use mshr::MshrFile;
pub use prefetch::{StridePrefetcher, StridePrefetcherConfig};

use regshare_types::{Addr, Cycle};

/// Result of a timed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemResult {
    /// Access completes at the given cycle.
    Done(Cycle),
    /// All MSHRs are busy; retry next cycle.
    Retry,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1D MSHR count.
    pub l1d_mshrs: usize,
    /// L2 MSHR count.
    pub l2_mshrs: usize,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// L2 stride prefetcher (None disables it).
    pub prefetcher: Option<StridePrefetcherConfig>,
}

impl MemConfig {
    /// Table 1 configuration.
    pub fn hpca16() -> MemConfig {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 12,
            },
            l1d_mshrs: 64,
            l2_mshrs: 64,
            dram: DramConfig::ddr3_1600(),
            prefetcher: Some(StridePrefetcherConfig::hpca16()),
        }
    }
}

/// Aggregate hierarchy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1I hits.
    pub l1i_hits: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D hits.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Prefetches issued to DRAM.
    pub prefetches_issued: u64,
    /// Demand accesses that hit a prefetched L2 line.
    pub prefetch_hits: u64,
    /// Accesses rejected for lack of MSHRs.
    pub mshr_rejects: u64,
}

/// The complete memory hierarchy.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l1d_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    dram: DramModel,
    prefetcher: Option<StridePrefetcher>,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds the hierarchy from a configuration.
    pub fn new(cfg: MemConfig) -> MemorySystem {
        MemorySystem {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l1d_mshrs: MshrFile::new(cfg.l1d_mshrs),
            l2_mshrs: MshrFile::new(cfg.l2_mshrs),
            dram: DramModel::new(cfg.dram),
            prefetcher: cfg.prefetcher.map(StridePrefetcher::new),
            cfg,
            stats: MemStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    fn line_of(&self, addr: Addr) -> Addr {
        addr & !(self.cfg.l1d.line_bytes as u64 - 1)
    }

    /// L2-and-below access shared by data and instruction paths. Returns the
    /// cycle at which the line is available at L2's output.
    fn access_l2(&mut self, pc: Addr, line: Addr, now: Cycle, is_demand: bool) -> Cycle {
        let l2_lat = self.cfg.l2.latency;
        if self.l2.probe(line) {
            self.stats.l2_hits += 1;
            if is_demand && self.l2.was_prefetched(line) {
                self.stats.prefetch_hits += 1;
                self.l2.clear_prefetched(line);
            }
            self.train_prefetcher(pc, line, now);
            return now.plus(l2_lat);
        }
        // L2 miss → DRAM, with MSHR merging at the L2 level.
        self.stats.l2_misses += 1;
        if let Some(ready) = self.l2_mshrs.pending(line, now) {
            return Cycle(ready.0.max(now.0)).plus(l2_lat);
        }
        let done = self.dram.access(line, now.plus(l2_lat));
        // An L2 MSHR tracks the in-flight line; if none is free the access
        // still proceeds (demand misses are not dropped) but merging is lost.
        let _ = self.l2_mshrs.allocate(line, done, now);
        self.l2.fill(line, false);
        self.train_prefetcher(pc, line, now);
        done.plus(l2_lat)
    }

    fn train_prefetcher(&mut self, pc: Addr, line: Addr, now: Cycle) {
        let Some(pf) = &mut self.prefetcher else {
            return;
        };
        let line_bytes = self.cfg.l2.line_bytes as u64;
        let requests = pf.observe(pc, line, line_bytes);
        for target in requests {
            // Prefetch fills L2 only; needs a free L2 MSHR, silently dropped
            // otherwise (prefetches are best-effort).
            if self.l2.probe_silent(target) {
                continue;
            }
            if self.l2_mshrs.pending(target, now).is_some() {
                continue;
            }
            let done = self.dram.access(target, now);
            if self.l2_mshrs.allocate(target, done, now) {
                self.l2.fill(target, true);
                self.stats.prefetches_issued += 1;
            }
        }
    }

    /// Timed data load. `pc` is the load's PC (prefetcher training).
    pub fn load(&mut self, pc: Addr, addr: Addr, now: Cycle) -> MemResult {
        let line = self.line_of(addr);
        let l1_lat = self.cfg.l1d.latency;
        if self.l1d.probe(line) {
            self.stats.l1d_hits += 1;
            return MemResult::Done(now.plus(l1_lat));
        }
        self.stats.l1d_misses += 1;
        // Merge into an in-flight miss if one exists.
        if let Some(ready) = self.l1d_mshrs.pending(line, now) {
            return MemResult::Done(Cycle(ready.0.max(now.0)).plus(l1_lat));
        }
        if !self.l1d_mshrs.has_free(now) {
            self.stats.mshr_rejects += 1;
            return MemResult::Retry;
        }
        let l2_done = self.access_l2(pc, line, now.plus(l1_lat), true);
        self.l1d_mshrs.allocate(line, l2_done, now);
        self.l1d.fill(line, false);
        MemResult::Done(l2_done.plus(l1_lat))
    }

    /// Committed store: writes through the post-commit write buffer, never
    /// stalls commit. Misses still occupy MSHRs/DRAM bandwidth.
    pub fn store_commit(&mut self, pc: Addr, addr: Addr, now: Cycle) {
        let line = self.line_of(addr);
        if self.l1d.probe(line) {
            self.stats.l1d_hits += 1;
            return;
        }
        self.stats.l1d_misses += 1;
        if self.l1d_mshrs.pending(line, now).is_some() {
            return;
        }
        // Write-allocate in the background; ignore MSHR pressure beyond
        // occupying an entry if available.
        let l2_done = self.access_l2(pc, line, now, true);
        let _ = self.l1d_mshrs.allocate(line, l2_done, now);
        self.l1d.fill(line, false);
    }

    /// Timed instruction fetch of the line containing `pc`.
    pub fn ifetch(&mut self, pc: Addr, now: Cycle) -> Cycle {
        let line = pc & !(self.cfg.l1i.line_bytes as u64 - 1);
        let l1_lat = self.cfg.l1i.latency;
        if self.l1i.probe(line) {
            self.stats.l1i_hits += 1;
            return now.plus(l1_lat);
        }
        self.stats.l1i_misses += 1;
        let l2_done = self.access_l2(pc, line, now.plus(l1_lat), true);
        self.l1i.fill(line, false);
        l2_done.plus(l1_lat)
    }
}

regshare_types::impl_snap!(MemStats {
    l1i_hits,
    l1i_misses,
    l1d_hits,
    l1d_misses,
    l2_hits,
    l2_misses,
    prefetches_issued,
    prefetch_hits,
    mshr_rejects
});

impl regshare_types::snapshot::Snapshot for MemorySystem {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.l1i.save_state(w);
        self.l1d.save_state(w);
        self.l2.save_state(w);
        self.l1d_mshrs.save_state(w);
        self.l2_mshrs.save_state(w);
        self.dram.save_state(w);
        match &self.prefetcher {
            None => w.put_u8(0),
            Some(pf) => {
                w.put_u8(1);
                pf.save_state(w);
            }
        }
        self.stats.encode(w);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        self.l1i.load_state(r)?;
        self.l1d.load_state(r)?;
        self.l2.load_state(r)?;
        self.l1d_mshrs.load_state(r)?;
        self.l2_mshrs.load_state(r)?;
        self.dram.load_state(r)?;
        match (r.get_u8()?, &mut self.prefetcher) {
            (0, None) => {}
            (1, Some(pf)) => pf.load_state(r)?,
            _ => return Err(r.corrupt("MemorySystem prefetcher presence")),
        }
        self.stats = Snap::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(r: MemResult) -> Cycle {
        match r {
            MemResult::Done(c) => c,
            MemResult::Retry => panic!("unexpected retry"),
        }
    }

    #[test]
    fn l1_hit_is_four_cycles() {
        let mut mem = MemorySystem::new(MemConfig::hpca16());
        let warm = done(mem.load(0x400000, 0x8000, Cycle(0)));
        let hit = done(mem.load(0x400000, 0x8010, warm)); // same line
        assert_eq!(hit.0 - warm.0, 4);
    }

    #[test]
    fn cold_miss_pays_dram_latency() {
        let mut mem = MemorySystem::new(MemConfig::hpca16());
        let cold = done(mem.load(0x400000, 0x20000, Cycle(0)));
        assert!(cold.0 >= 75, "cold miss too fast: {cold}");
        let warm = done(mem.load(0x400000, 0x20000, cold));
        assert_eq!(warm.0 - cold.0, 4);
    }

    #[test]
    fn mshr_merging_shares_latency() {
        let mut mem = MemorySystem::new(MemConfig::hpca16());
        let a = done(mem.load(0x400000, 0x30000, Cycle(0)));
        // Second access to the same missing line while in flight merges.
        let b = done(mem.load(0x400004, 0x30008, Cycle(1)));
        assert!(b.0 <= a.0 + 4, "merge did not share the miss: {a} vs {b}");
    }

    #[test]
    fn mshr_exhaustion_rejects() {
        let mut cfg = MemConfig::hpca16();
        cfg.l1d_mshrs = 2;
        cfg.prefetcher = None;
        let mut mem = MemorySystem::new(cfg);
        assert!(matches!(
            mem.load(0x1, 0x100000, Cycle(0)),
            MemResult::Done(_)
        ));
        assert!(matches!(
            mem.load(0x2, 0x200000, Cycle(0)),
            MemResult::Done(_)
        ));
        assert_eq!(mem.load(0x3, 0x300000, Cycle(0)), MemResult::Retry);
        assert_eq!(mem.stats().mshr_rejects, 1);
        // After the misses resolve, MSHRs free up.
        assert!(matches!(
            mem.load(0x3, 0x300000, Cycle(1000)),
            MemResult::Done(_)
        ));
    }

    #[test]
    fn streaming_trains_prefetcher() {
        let mut mem = MemorySystem::new(MemConfig::hpca16());
        let pc = 0x400100;
        let mut now = Cycle(0);
        // Stream with a fixed 64B stride from one PC.
        for i in 0..64u64 {
            now = done(mem.load(pc, 0x100000 + i * 64, now));
        }
        assert!(mem.stats().prefetches_issued > 0, "no prefetches issued");
        assert!(mem.stats().prefetch_hits > 0, "no prefetch hits");
    }

    #[test]
    fn store_commit_never_blocks() {
        let mut cfg = MemConfig::hpca16();
        cfg.l1d_mshrs = 1;
        let mut mem = MemorySystem::new(cfg);
        for i in 0..32 {
            mem.store_commit(0x400000, 0x500000 + i * 4096, Cycle(i));
        }
        // All stores accepted; stats reflect the misses.
        assert!(mem.stats().l1d_misses >= 31);
    }

    #[test]
    fn ifetch_hits_after_warmup() {
        let mut mem = MemorySystem::new(MemConfig::hpca16());
        let c0 = mem.ifetch(0x400000, Cycle(0));
        let c1 = mem.ifetch(0x400000, c0);
        assert_eq!(c1.0 - c0.0, 1);
        assert_eq!(mem.stats().l1i_hits, 1);
        assert_eq!(mem.stats().l1i_misses, 1);
    }
}

# prime_sieve — sieve of Eratosthenes over a 512-entry byte array.
#
# Every flag byte is written before the sieve runs (the simulated memory is
# not zero-filled), composites are struck out with byte stores, and the
# epilogue counts the surviving primes and sums them, comparing both against
# known constants: pi(511) = 97 and the primes below 512 sum to 22548.
# r15 = 1 on success, 0 on failure.

.equ FLAGS 0x1000        # one byte per candidate
.equ N     512
.equ PSUM  22548         # sum of all primes below 512

# ---- init: flag[0..1] = 0, flag[2..N) = 1 ----------------------------------
    li r4, FLAGS
    li r6, 0
    stb r6, r4, 0
    stb r6, r4, 1
    li r2, 2
    li r6, 1
finit:
    add r5, r4, r2
    stb r6, r5, 0
    add r2, r2, 1
    bne r2, N, finit

# ---- sieve: for each prime p, strike p*p, p*p+p, ... -----------------------
    li r2, 2             # p
sieve:
    mul r3, r2, r2       # m = p*p
    bge r3, N, count     # p*p >= N: sieving done
    add r5, r4, r2
    ldb r6, r5, 0
    beq r6, 0, nextp     # p already composite
inner:
    add r5, r4, r3
    li r6, 0
    stb r6, r5, 0
    add r3, r3, r2
    blt r3, N, inner
nextp:
    add r2, r2, 1
    jmp sieve

# ---- self-check: count and sum the primes ----------------------------------
count:
    li r7, 0             # prime count
    li r8, 0             # prime sum
    li r2, 2
cloop:
    add r5, r4, r2
    ldb r6, r5, 0
    beq r6, 0, notp
    add r7, r7, 1
    add r8, r8, r2
notp:
    add r2, r2, 1
    bne r2, N, cloop
    bne r7, 97, fail     # pi(511)
    li r9, PSUM
    bne r8, r9, fail
    li r15, 1
    halt
fail:
    li r15, 0
    halt

//! Quick shape check: ME / SMB / combined speedups on a few workloads.
//!
//! Runs one representative sweep through the parallel engine; output is
//! byte-identical at any `REGSHARE_JOBS` level.

use regshare_bench::{jobs_from_env, RunWindow, SweepSpec, Table};
use regshare_core::CoreConfig;
use regshare_workloads::by_names;

fn main() {
    let window = RunWindow::from_env();
    let workloads = by_names(&[
        "crafty", "vortex", "hmmer", "astar", "bzip", "namd", "wupwise", "applu", "mcf",
    ]);
    let grid = SweepSpec::new(workloads, window)
        .variant("base", CoreConfig::hpca16())
        .variant("me", CoreConfig::hpca16().with_me())
        .variant("smb", CoreConfig::hpca16().with_smb())
        .variant("both", CoreConfig::hpca16().with_me().with_smb())
        .run();

    let mut t = Table::new(vec![
        "bench", "base_ipc", "me%", "smb%", "both%", "elim", "bypassed", "traps_b", "traps_s",
        "fdep_b", "fdep_s",
    ]);
    for row in grid.rows() {
        let base = row.get("base");
        let me = row.get("me");
        let smb = row.get("smb");
        t.row(vec![
            row.workload().name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:+.2}", row.speedup("base", "me")),
            format!("{:+.2}", row.speedup("base", "smb")),
            format!("{:+.2}", row.speedup("base", "both")),
            format!("{:.2}%", me.stats.pct_renamed_eliminated()),
            format!("{:.1}%", smb.stats.pct_loads_bypassed()),
            format!("{}", base.stats.memory_traps),
            format!("{}", smb.stats.memory_traps),
            format!("{}", base.stats.false_dependencies),
            format!("{}", smb.stats.false_dependencies),
        ]);
    }
    t.print();
    eprintln!("[smoke: {} jobs]", jobs_from_env());
}

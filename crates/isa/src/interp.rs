//! In-order functional interpreter (the *oracle*) and wrong-path execution.
//!
//! The oracle [`Machine`] executes the correct path in program order and
//! produces fully resolved [`DynUop`]s (operands, addresses, results, branch
//! outcomes). A [`WrongPath`] is a fork of the register state at a
//! mispredicted branch that genuinely executes the other path; its stores go
//! to a copy-on-write overlay so architectural memory is never polluted —
//! one of the invariants the test suite checks.

use crate::mem::{MemOverlay, SparseMemory};
use crate::op::{BranchKind, BranchOutcome, DynUop, MemRef, MoveWidth, Op, Operand, UopKind};
use crate::program::Program;
use regshare_types::hasher::mix64;
use regshare_types::{ArchReg, HistorySnapshot, RegClass, SeqNum};
use std::sync::Arc;

/// One recorded oracle step: the resolved micro-op plus the post-step
/// control state needed to replay it onto a [`Machine`] via
/// [`Machine::replay_step`] without re-decoding or re-executing.
#[derive(Debug, Clone)]
pub struct TracedStep {
    /// The fully resolved micro-op, exactly as [`Machine::step`] returned it.
    pub uop: DynUop,
    /// The machine's instruction pointer after the step.
    pub next_ip: u32,
    /// Whether the machine was halted after the step.
    pub halted: bool,
}

/// Architectural register state plus control state that a wrong-path fork
/// must capture (everything except memory).
#[derive(Debug, Clone)]
pub struct ForkState {
    /// Register values.
    pub regs: [u64; ArchReg::COUNT],
    /// Return-address stack (static indices).
    pub ret_stack: Vec<u32>,
    /// Next static index to execute.
    pub ip: u32,
}

/// The in-order oracle interpreter.
///
/// # Examples
///
/// ```
/// use regshare_isa::{Machine, Op, Operand, AluOp};
/// use regshare_types::ArchReg;
/// use regshare_isa::program::ProgramBuilder;
/// use std::sync::Arc;
///
/// let mut b = ProgramBuilder::new();
/// b.push(Op::LoadImm { dst: ArchReg::int(1), imm: 3 });
/// b.push(Op::Halt);
/// let mut m = Machine::new(Arc::new(b.build()));
/// assert_eq!(m.step().result, 3);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Arc<Program>,
    regs: [u64; ArchReg::COUNT],
    mem: SparseMemory,
    ret_stack: Vec<u32>,
    ip: u32,
    seq: u64,
    halted: bool,
}

/// Memory access port abstracting oracle memory vs. wrong-path overlays.
trait MemPort {
    fn read(&mut self, addr: u64, size: u8) -> u64;
    fn write(&mut self, addr: u64, size: u8, value: u64);
}

impl MemPort for SparseMemory {
    fn read(&mut self, addr: u64, size: u8) -> u64 {
        SparseMemory::read(self, addr, size)
    }
    fn write(&mut self, addr: u64, size: u8, value: u64) {
        SparseMemory::write(self, addr, size, value)
    }
}

/// Wrong-path port: reads fall through to the frozen oracle memory, writes
/// land in the private overlay.
struct OverlayPort<'a> {
    overlay: &'a mut MemOverlay,
    base: &'a SparseMemory,
}

impl MemPort for OverlayPort<'_> {
    fn read(&mut self, addr: u64, size: u8) -> u64 {
        self.overlay.read(self.base, addr, size)
    }
    fn write(&mut self, addr: u64, size: u8, value: u64) {
        self.overlay.write(addr, size, value)
    }
}

/// Decodes and executes `op`, with reads/writes routed through a [`MemPort`]
/// so the same logic serves the oracle and wrong-path machines.
#[allow(clippy::too_many_arguments)]
fn exec_op(
    op: &Op,
    sidx: u32,
    pc: u64,
    regs: &mut [u64; ArchReg::COUNT],
    ret_stack: &mut Vec<u32>,
    program_len: u32,
    mem: &mut dyn MemPort,
) -> (DynUop, u32, bool) {
    let rd = |regs: &[u64; ArchReg::COUNT], r: ArchReg| regs[r.flat()];
    let operand = |regs: &[u64; ArchReg::COUNT], o: Operand| match o {
        Operand::Reg(r) => rd(regs, r),
        Operand::Imm(v) => v,
    };
    let op_src = |o: Operand| match o {
        Operand::Reg(r) => Some(r),
        Operand::Imm(_) => None,
    };
    let fallthrough = if sidx + 1 < program_len { sidx + 1 } else { 0 };

    let mut uop = DynUop {
        seq: SeqNum(0), // assigned by caller
        sidx,
        pc,
        kind: UopKind::IntAlu,
        srcs: [None, None, None],
        dst: None,
        mem: None,
        result: 0,
        branch: None,
        wrong_path: false,
        history: HistorySnapshot::default(),
    };
    let mut next = fallthrough;
    let mut halt = false;

    match *op {
        Op::IntAlu {
            op: a,
            dst,
            src1,
            src2,
        } => {
            uop.kind = UopKind::IntAlu;
            uop.srcs = [Some(src1), op_src(src2), None];
            uop.dst = Some(dst);
            uop.result = a.apply(rd(regs, src1), operand(regs, src2));
            regs[dst.flat()] = uop.result;
        }
        Op::IntMul { dst, src1, src2 } => {
            uop.kind = UopKind::IntMul;
            uop.srcs = [Some(src1), op_src(src2), None];
            uop.dst = Some(dst);
            uop.result = rd(regs, src1).wrapping_mul(operand(regs, src2));
            regs[dst.flat()] = uop.result;
        }
        Op::IntDiv { dst, src1, src2 } => {
            uop.kind = UopKind::IntDiv;
            uop.srcs = [Some(src1), op_src(src2), None];
            uop.dst = Some(dst);
            let d = operand(regs, src2);
            uop.result = rd(regs, src1).checked_div(d).unwrap_or(u64::MAX);
            regs[dst.flat()] = uop.result;
        }
        Op::FpAdd { dst, src1, src2 } => {
            uop.kind = UopKind::FpAdd;
            uop.srcs = [Some(src1), Some(src2), None];
            uop.dst = Some(dst);
            // Deterministic dataflow token, not IEEE arithmetic (see crate docs).
            uop.result = rd(regs, src1).wrapping_add(rd(regs, src2)).rotate_left(7) ^ 0x9e37;
            regs[dst.flat()] = uop.result;
        }
        Op::FpMul { dst, src1, src2 } => {
            uop.kind = UopKind::FpMul;
            uop.srcs = [Some(src1), Some(src2), None];
            uop.dst = Some(dst);
            uop.result = rd(regs, src1)
                .wrapping_mul(rd(regs, src2) | 1)
                .rotate_left(13)
                ^ 0x51c7;
            regs[dst.flat()] = uop.result;
        }
        Op::FpDiv { dst, src1, src2 } => {
            uop.kind = UopKind::FpDiv;
            uop.srcs = [Some(src1), Some(src2), None];
            uop.dst = Some(dst);
            let d = rd(regs, src2) | 1;
            uop.result = (rd(regs, src1) / d).rotate_left(3) ^ 0x2545;
            regs[dst.flat()] = uop.result;
        }
        Op::MovInt { dst, src, width } => {
            uop.kind = UopKind::Move {
                width,
                class: RegClass::Int,
            };
            uop.dst = Some(dst);
            uop.result = if width.is_merge() {
                uop.srcs = [Some(src), Some(dst), None]; // merge reads old dst
                (rd(regs, dst) & !width.mask()) | (rd(regs, src) & width.mask())
            } else {
                // 32-bit moves are value-identical to 64-bit moves: on x86_64
                // any 32-bit producer already zeroed the upper half, which is
                // the invariant that makes W32 moves eliminable (§2.1).
                uop.srcs = [Some(src), None, None];
                rd(regs, src)
            };
            regs[dst.flat()] = uop.result;
        }
        Op::MovFp { dst, src } => {
            uop.kind = UopKind::Move {
                width: MoveWidth::W64,
                class: RegClass::Fp,
            };
            uop.srcs = [Some(src), None, None];
            uop.dst = Some(dst);
            uop.result = rd(regs, src);
            regs[dst.flat()] = uop.result;
        }
        Op::LoadImm { dst, imm } => {
            uop.kind = UopKind::IntAlu;
            uop.dst = Some(dst);
            uop.result = imm;
            regs[dst.flat()] = imm;
        }
        Op::Load {
            dst,
            base,
            offset,
            size,
        } => {
            uop.kind = UopKind::Load;
            uop.srcs = [Some(base), None, None];
            uop.dst = Some(dst);
            let addr = rd(regs, base).wrapping_add(offset as u64) & !(size as u64 - 1);
            uop.mem = Some(MemRef {
                addr,
                size,
                is_store: false,
            });
            uop.result = mem.read(addr, size);
            regs[dst.flat()] = uop.result;
        }
        Op::Store {
            data,
            base,
            offset,
            size,
        } => {
            uop.kind = UopKind::Store;
            uop.srcs = [Some(base), Some(data), None];
            let addr = rd(regs, base).wrapping_add(offset as u64) & !(size as u64 - 1);
            uop.mem = Some(MemRef {
                addr,
                size,
                is_store: true,
            });
            let v = rd(regs, data);
            uop.result = v & if size == 8 {
                u64::MAX
            } else {
                (1u64 << (size * 8)) - 1
            };
            mem.write(addr, size, v);
        }
        Op::CondBranch {
            cond,
            src1,
            src2,
            target,
        } => {
            uop.kind = UopKind::Branch(BranchKind::Conditional);
            uop.srcs = [Some(src1), op_src(src2), None];
            let taken = cond.eval(rd(regs, src1), operand(regs, src2));
            next = if taken { target } else { fallthrough };
            uop.branch = Some(BranchOutcome {
                kind: BranchKind::Conditional,
                taken,
                next_sidx: next,
                fallthrough_sidx: fallthrough,
            });
        }
        Op::Jump { target } => {
            uop.kind = UopKind::Branch(BranchKind::Direct);
            next = target;
            uop.branch = Some(BranchOutcome {
                kind: BranchKind::Direct,
                taken: true,
                next_sidx: next,
                fallthrough_sidx: fallthrough,
            });
        }
        Op::Call { target } => {
            uop.kind = UopKind::Branch(BranchKind::Call);
            ret_stack.push(fallthrough);
            if ret_stack.len() > 64 {
                ret_stack.remove(0); // bound runaway recursion in synthetic code
            }
            next = target;
            uop.branch = Some(BranchOutcome {
                kind: BranchKind::Call,
                taken: true,
                next_sidx: next,
                fallthrough_sidx: fallthrough,
            });
        }
        Op::Ret => {
            uop.kind = UopKind::Branch(BranchKind::Return);
            next = ret_stack.pop().unwrap_or(0);
            uop.branch = Some(BranchOutcome {
                kind: BranchKind::Return,
                taken: true,
                next_sidx: next,
                fallthrough_sidx: fallthrough,
            });
        }
        Op::Nop => {
            uop.kind = UopKind::IntAlu;
        }
        Op::Halt => {
            uop.kind = UopKind::IntAlu;
            halt = true;
            next = sidx; // spin in place
        }
    }
    (uop, next, halt)
}

impl Machine {
    /// Creates a machine at the program entry (static index 0) with zeroed
    /// registers and pristine memory.
    pub fn new(program: Arc<Program>) -> Machine {
        Machine {
            program,
            regs: [0; ArchReg::COUNT],
            mem: SparseMemory::new(),
            ret_stack: Vec::new(),
            ip: 0,
            seq: 0,
            halted: false,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Read-only view of architectural memory.
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// Current architectural register values.
    pub fn regs(&self) -> &[u64; ArchReg::COUNT] {
        &self.regs
    }

    /// Sequence number the *next* step will produce.
    pub fn next_seq(&self) -> SeqNum {
        SeqNum(self.seq)
    }

    /// Whether a `Halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Executes one instruction in program order and returns its
    /// fully resolved micro-op. After a `Halt`, yields `Nop`-like µ-ops
    /// pinned at the halt instruction.
    pub fn step(&mut self) -> DynUop {
        let sidx = self.ip;
        let pc = self.program.pc_of(sidx);
        let program = &self.program;
        let op = if self.halted {
            &Op::Nop
        } else {
            program.op(sidx)
        };
        let (mut uop, next, halt) = exec_op(
            op,
            sidx,
            pc,
            &mut self.regs,
            &mut self.ret_stack,
            program.len() as u32,
            &mut self.mem,
        );
        uop.seq = SeqNum(self.seq);
        self.seq += 1;
        if !self.halted {
            self.ip = next;
            self.halted = halt;
        }
        uop
    }

    /// Like [`Machine::step`], additionally capturing the post-step control
    /// state so the stream cache can later [`Machine::replay_step`] the
    /// record onto a fresh machine without re-decoding.
    pub fn step_traced(&mut self) -> TracedStep {
        let uop = self.step();
        TracedStep {
            uop,
            next_ip: self.ip,
            halted: self.halted,
        }
    }

    /// Applies a previously recorded step's architectural effects without
    /// re-decoding or re-executing the instruction. Register and memory
    /// writes, return-stack pushes/pops and control flow come straight from
    /// the record, leaving this machine byte-identical to one that executed
    /// the step via [`Machine::step`] — the record is deterministic in
    /// `(program, seq)`, which is what makes cached streams safe to share.
    pub fn replay_step(&mut self, step: &TracedStep) {
        let uop = &step.uop;
        debug_assert_eq!(self.seq, uop.seq.0, "replay out of position");
        debug_assert!(!self.halted, "post-halt steps are never recorded");
        if let Some(dst) = uop.dst {
            self.regs[dst.flat()] = uop.result;
        }
        if let Some(m) = uop.mem {
            if m.is_store {
                // `result` is the size-masked store value and `write` only
                // touches `size` bytes, so the bytes written are identical
                // to the original execution's.
                self.mem.write(m.addr, m.size, uop.result);
            }
        }
        if let Some(b) = uop.branch {
            match b.kind {
                BranchKind::Call => {
                    self.ret_stack.push(b.fallthrough_sidx);
                    if self.ret_stack.len() > 64 {
                        self.ret_stack.remove(0); // mirror exec_op's recursion bound
                    }
                }
                BranchKind::Return => {
                    self.ret_stack.pop();
                }
                BranchKind::Conditional | BranchKind::Direct => {}
            }
        }
        self.seq += 1;
        self.ip = step.next_ip;
        self.halted = step.halted;
    }

    /// Steps `n` µ-ops and folds their `(pc, result)` pairs into the
    /// architectural digest, starting from zero — exactly the fold the
    /// out-of-order simulator applies to its committed trace, so an OoO run
    /// of the same program over the same window must reproduce this value.
    /// This is the oracle half of every differential check (the fixed
    /// oracle tests and the fuzz harness share it).
    pub fn run_digest(&mut self, n: u64) -> u64 {
        let mut digest = 0u64;
        for _ in 0..n {
            let u = self.step();
            digest = mix64(digest ^ u.pc).wrapping_add(mix64(u.result));
        }
        digest
    }

    /// Captures the fork state (registers, return stack) *after* the most
    /// recent step, for wrong-path execution starting at `start_sidx`.
    pub fn fork_state(&self, start_sidx: u32) -> ForkState {
        ForkState {
            regs: self.regs,
            ret_stack: self.ret_stack.clone(),
            ip: start_sidx.min(self.program.len() as u32 - 1),
        }
    }
}

/// A genuine wrong-path execution context, forked from oracle state at a
/// mispredicted branch.
///
/// Wrong-path loads read through to the oracle's memory; wrong-path stores
/// go to a private overlay. Branches on the wrong path follow the forked
/// machine's own computed outcomes.
#[derive(Debug, Clone)]
pub struct WrongPath {
    program: Arc<Program>,
    state: ForkState,
    overlay: MemOverlay,
    next_seq: u64,
    halted: bool,
}

impl WrongPath {
    /// Creates a wrong path from a captured fork state. `next_seq` numbers
    /// the first wrong-path micro-op.
    pub fn new(program: Arc<Program>, state: ForkState, next_seq: SeqNum) -> WrongPath {
        WrongPath {
            program,
            state,
            overlay: MemOverlay::new(),
            next_seq: next_seq.0,
            halted: false,
        }
    }

    /// Executes one wrong-path instruction against `oracle_mem`.
    pub fn step(&mut self, oracle_mem: &SparseMemory) -> DynUop {
        let sidx = self.state.ip;
        let pc = self.program.pc_of(sidx);
        let program = &self.program;
        let op = if self.halted {
            &Op::Nop
        } else {
            program.op(sidx)
        };
        let mut port = OverlayPort {
            overlay: &mut self.overlay,
            base: oracle_mem,
        };
        let (mut uop, next, halt) = exec_op(
            op,
            sidx,
            pc,
            &mut self.state.regs,
            &mut self.state.ret_stack,
            program.len() as u32,
            &mut port,
        );
        uop.seq = SeqNum(self.next_seq);
        uop.wrong_path = true;
        self.next_seq += 1;
        if !self.halted {
            self.state.ip = next;
            self.halted = halt;
        }
        uop
    }

    /// Bytes written by wrong-path stores (isolation diagnostics).
    pub fn overlay_bytes(&self) -> usize {
        self.overlay.len()
    }
}

regshare_types::impl_snap!(ForkState {
    regs,
    ret_stack,
    ip
});

impl regshare_types::snapshot::Snapshot for Machine {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.regs.encode(w);
        self.mem.save_state(w);
        self.ret_stack.encode(w);
        w.put_u32(self.ip);
        w.put_u64(self.seq);
        self.halted.encode(w);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        self.regs = Snap::decode(r)?;
        self.mem.load_state(r)?;
        self.ret_stack = Snap::decode(r)?;
        self.ip = r.get_u32()?;
        self.seq = r.get_u64()?;
        self.halted = Snap::decode(r)?;
        Ok(())
    }
}

impl WrongPath {
    /// Appends the wrong path's complete state (the shared program is
    /// supplied again at decode time, not serialized).
    pub fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::{Snap, Snapshot};
        self.state.encode(w);
        self.overlay.save_state(w);
        w.put_u64(self.next_seq);
        self.halted.encode(w);
    }

    /// Decodes a wrong path saved by [`WrongPath::save_state`], rebinding
    /// it to `program`.
    pub fn decode_with(
        program: Arc<Program>,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<WrongPath, regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::{Snap, Snapshot};
        let state = ForkState::decode(r)?;
        let mut overlay = MemOverlay::new();
        overlay.load_state(r)?;
        let next_seq = r.get_u64()?;
        let halted = Snap::decode(r)?;
        Ok(WrongPath {
            program,
            state,
            overlay,
            next_seq,
            halted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Cond};
    use crate::program::ProgramBuilder;

    fn r(i: usize) -> ArchReg {
        ArchReg::int(i)
    }

    fn build(ops: Vec<Op>) -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        for op in ops {
            b.push(op);
        }
        Arc::new(b.build())
    }

    #[test]
    fn loop_executes_and_terminates() {
        // r0 = 3; loop: r1 += r0; r0 -= 1; if r0 != 0 goto loop; halt
        let p = build(vec![
            Op::LoadImm { dst: r(0), imm: 3 },
            Op::IntAlu {
                op: AluOp::Add,
                dst: r(1),
                src1: r(1),
                src2: Operand::Reg(r(0)),
            },
            Op::IntAlu {
                op: AluOp::Sub,
                dst: r(0),
                src1: r(0),
                src2: Operand::Imm(1),
            },
            Op::CondBranch {
                cond: Cond::Ne,
                src1: r(0),
                src2: Operand::Imm(0),
                target: 1,
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p);
        let mut steps = 0;
        while !m.is_halted() && steps < 100 {
            m.step();
            steps += 1;
        }
        assert!(m.is_halted());
        assert_eq!(m.regs()[1], 3 + 2 + 1);
        // Post-halt steps are inert nops with advancing seq.
        let s0 = m.step();
        let s1 = m.step();
        assert_eq!(s1.seq.0, s0.seq.0 + 1);
        assert!(s1.dst.is_none());
    }

    #[test]
    fn store_load_round_trip_through_uops() {
        let p = build(vec![
            Op::LoadImm {
                dst: r(0),
                imm: 0x8000,
            },
            Op::LoadImm {
                dst: r(1),
                imm: 0xfeed,
            },
            Op::Store {
                data: r(1),
                base: r(0),
                offset: 8,
                size: 8,
            },
            Op::Load {
                dst: r(2),
                base: r(0),
                offset: 8,
                size: 8,
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p);
        for _ in 0..2 {
            m.step();
        }
        let st = m.step();
        assert!(st.is_store());
        assert_eq!(st.mem.unwrap().addr, 0x8008);
        assert_eq!(st.store_data_reg(), Some(r(1)));
        let ld = m.step();
        assert!(ld.is_load());
        assert_eq!(ld.result, 0xfeed);
        assert_eq!(m.regs()[2], 0xfeed);
    }

    #[test]
    fn merge_move_reads_old_destination() {
        let p = build(vec![
            Op::LoadImm {
                dst: r(0),
                imm: 0x1122_3344_5566_7788,
            },
            Op::LoadImm {
                dst: r(1),
                imm: 0xaabb,
            },
            Op::MovInt {
                dst: r(0),
                src: r(1),
                width: MoveWidth::W16,
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p);
        m.step();
        m.step();
        let mv = m.step();
        assert_eq!(mv.srcs[1], Some(r(0)), "merge move must read old dst");
        assert_eq!(mv.result, 0x1122_3344_5566_aabb);
        assert!(!mv.kind.eliminable_move());
    }

    #[test]
    fn full_move_does_not_read_destination() {
        let p = build(vec![
            Op::LoadImm { dst: r(1), imm: 7 },
            Op::MovInt {
                dst: r(0),
                src: r(1),
                width: MoveWidth::W64,
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p);
        m.step();
        let mv = m.step();
        assert_eq!(mv.srcs, [Some(r(1)), None, None]);
        assert!(mv.kind.eliminable_move());
        assert_eq!(mv.result, 7);
    }

    #[test]
    fn call_ret_flow() {
        // 0: call 3 ; 1: loadimm r2, 9 ; 2: halt ; 3: loadimm r1, 5 ; 4: ret
        let p = build(vec![
            Op::Call { target: 3 },
            Op::LoadImm { dst: r(2), imm: 9 },
            Op::Halt,
            Op::LoadImm { dst: r(1), imm: 5 },
            Op::Ret,
        ]);
        let mut m = Machine::new(p);
        let call = m.step();
        assert_eq!(call.branch.unwrap().kind, BranchKind::Call);
        assert_eq!(call.branch.unwrap().next_sidx, 3);
        m.step(); // loadimm r1
        let ret = m.step();
        assert_eq!(ret.branch.unwrap().kind, BranchKind::Return);
        assert_eq!(ret.branch.unwrap().next_sidx, 1);
        m.step(); // loadimm r2
        assert_eq!(m.regs()[1], 5);
        assert_eq!(m.regs()[2], 9);
    }

    #[test]
    fn wrong_path_is_isolated_and_really_executes() {
        // Correct path takes the branch; wrong path falls through and stores.
        let p = build(vec![
            Op::LoadImm { dst: r(0), imm: 1 },
            Op::LoadImm {
                dst: r(5),
                imm: 0x9000,
            },
            Op::CondBranch {
                cond: Cond::BitSet,
                src1: r(0),
                src2: Operand::Imm(0),
                target: 6,
            },
            // wrong path:
            Op::LoadImm {
                dst: r(1),
                imm: 0x42,
            },
            Op::Store {
                data: r(1),
                base: r(5),
                offset: 0,
                size: 8,
            },
            Op::Load {
                dst: r(2),
                base: r(5),
                offset: 0,
                size: 8,
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p.clone());
        m.step();
        m.step();
        let br = m.step();
        assert!(br.branch.unwrap().taken);
        // Fork down the not-taken (wrong) path.
        let fork = m.fork_state(br.branch.unwrap().fallthrough_sidx);
        let mut wp = WrongPath::new(p, fork, br.seq.next());
        let w1 = wp.step(m.memory()); // loadimm
        assert!(w1.wrong_path);
        assert_eq!(w1.seq, br.seq.next());
        let w2 = wp.step(m.memory()); // store
        assert!(w2.is_store());
        let w3 = wp.step(m.memory()); // load sees the overlay value
        assert_eq!(w3.result, 0x42);
        // Architectural memory is untouched.
        assert_ne!(m.memory().read(0x9000, 8), 0x42);
        assert_eq!(wp.overlay_bytes(), 8);
    }

    #[test]
    fn div_by_zero_is_deterministic() {
        let p = build(vec![
            Op::IntDiv {
                dst: r(0),
                src1: r(1),
                src2: Operand::Imm(0),
            },
            Op::Halt,
        ]);
        let mut m = Machine::new(p);
        assert_eq!(m.step().result, u64::MAX);
    }
}

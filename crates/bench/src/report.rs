//! Generic scenario report: one rendering shared by every scenario front
//! door, so a `.scenario` file and the equivalent built-in preset produce
//! byte-identical output.
//!
//! Layout: a header naming the scenario (plus its note and resolved
//! window), then one [`Table`] with the first variant as the baseline
//! column (`<label>_ipc`) and a speedup column per remaining variant, the
//! `csv:` echo, and geomean-speedup footers.

use crate::scenario::{Scenario, ScenarioError};
use crate::sweep::{SweepError, SweepGrid};
use crate::table::Table;
use regshare_types::stats::geomean;

/// Renders the standard report for a completed grid (header, table, CSV,
/// geomean footers). `scenario` supplies the names; `grid` must be the
/// result of running that scenario's sweep — a grid missing that
/// scenario's labels is a typed [`SweepError`], not a panic.
pub fn render_report(scenario: &Scenario, grid: &SweepGrid) -> Result<String, SweepError> {
    let window = scenario.options.window();
    let mut out = String::new();
    out.push_str(&format!("# scenario: {}\n", scenario.name));
    if !scenario.note.is_empty() {
        out.push_str(&format!("# {}\n", scenario.note));
    }
    out.push_str(&format!(
        "window: {} warmup + {} measured µ-ops per run\n\n",
        window.warmup, window.measure
    ));

    let labels = grid.labels();
    let base = &labels[0];
    let mut header = vec!["bench".to_string(), format!("{base}_ipc")];
    header.extend(labels[1..].iter().map(|l| format!("{l}%")));
    let mut t = Table::new(header);
    let mut base_ipcs = Vec::new();
    for row in grid.rows() {
        let mut cells = vec![
            row.workload().name.clone(),
            format!("{:.3}", row.get(base)?.ipc()),
        ];
        base_ipcs.push(row.get(base)?.ipc());
        for label in &labels[1..] {
            cells.push(format!("{:+.2}", row.speedup(base, label)?));
        }
        t.row(cells);
    }
    if labels.len() == 1 {
        t.footer(format!(
            "geomean {base} IPC: {:.3}",
            geomean(&base_ipcs).unwrap_or(0.0)
        ));
    }
    for label in &labels[1..] {
        t.footer(format!(
            "geomean speedup, {label} vs {base}: {:+.2}%",
            grid.geomean_speedup(base, label)?
        ));
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Validates the scenario, runs its sweep, and renders the standard
/// report — the whole `--scenario` front door in one call. Sweep-time
/// failures surface as [`ScenarioError::Sweep`].
pub fn run_scenario(scenario: &Scenario) -> Result<String, ScenarioError> {
    let grid = scenario.to_sweep()?.run()?;
    Ok(render_report(scenario, &grid)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::RunOptions;
    use crate::scenario::VariantSpec;

    fn tiny() -> Scenario {
        Scenario::builder("tiny")
            .note("unit-test scenario")
            .options(RunOptions::default().warmup(500).measure(1_500).jobs(2))
            .workloads(&["crafty"])
            .variant("base", VariantSpec::hpca16())
            .variant("both", VariantSpec::preset("me_smb"))
            .build()
            .unwrap()
    }

    #[test]
    fn report_contains_header_table_and_footers() {
        let s = tiny();
        let out = run_scenario(&s).unwrap();
        assert!(out.starts_with("# scenario: tiny\n# unit-test scenario\n"));
        assert!(out.contains("window: 500 warmup + 1500 measured µ-ops per run"));
        assert!(out.contains("bench"));
        assert!(out.contains("base_ipc"));
        assert!(out.contains("both%"));
        assert!(out.contains("csv:bench,base_ipc,both%"));
        assert!(out.contains("geomean speedup, both vs base:"));
    }

    #[test]
    fn report_is_identical_for_parsed_and_programmatic_scenarios() {
        let s = tiny();
        let reparsed = Scenario::parse(&s.render()).unwrap();
        assert_eq!(run_scenario(&s).unwrap(), run_scenario(&reparsed).unwrap());
    }
}

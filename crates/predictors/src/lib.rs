//! Front-end predictors: TAGE branch direction predictor, BTB, return
//! address stack, and the Store Sets memory dependence predictor.
//!
//! These reproduce the paper's Table 1 front-end: a TAGE predictor with one
//! base and 12 tagged components (~15K entries total), a 2-way 4K-entry BTB,
//! a 32-entry RAS, and a 4K-SSID/LFST Store Sets predictor that is *not*
//! rolled back on squashes.
//!
//! All state that fetch speculates on (global history, folded histories,
//! RAS) supports cheap snapshot/restore so the core can recover it on a
//! branch misprediction in a single cycle, mirroring the checkpoint
//! discipline the paper assumes for the renamer (§4.1).

#![deny(missing_docs)]

pub mod btb;
pub mod history;
pub mod ras;
pub mod storesets;
pub mod tage;

pub use btb::{Btb, BtbEntry};
pub use history::{FoldedHistory, GlobalHistory};
pub use ras::ReturnAddressStack;
pub use storesets::{StoreSets, StoreSetsConfig};
pub use tage::{Tage, TageConfig, TagePrediction};

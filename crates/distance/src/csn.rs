//! Commit Sequence Number tracking through the Commit Rename Map (Figure 1).

use regshare_types::{ArchReg, SeqNum};

/// The CSN side of the Commit Rename Map: for each architectural register,
/// the commit sequence number of the instruction that produced its current
/// architectural value.
///
/// At commit, register-defining instructions write their CSN here; a
/// committing store then reads the CSN of its data register's producer and
/// deposits it in the DDT (§3.1).
///
/// # Examples
///
/// ```
/// use regshare_distance::CsnMap;
/// use regshare_types::{ArchReg, SeqNum};
///
/// let mut m = CsnMap::new();
/// m.define(ArchReg::int(1), SeqNum(10));
/// assert_eq!(m.producer(ArchReg::int(1)), Some(SeqNum(10)));
/// assert_eq!(m.producer(ArchReg::int(2)), None);
/// ```
#[derive(Debug, Clone)]
pub struct CsnMap {
    csn: [Option<SeqNum>; ArchReg::COUNT],
}

impl Default for CsnMap {
    fn default() -> Self {
        CsnMap {
            csn: [None; ArchReg::COUNT],
        }
    }
}

impl CsnMap {
    /// Creates an empty map.
    pub fn new() -> CsnMap {
        CsnMap::default()
    }

    /// Records that the instruction with sequence number `csn` committed a
    /// definition of `reg`.
    #[inline]
    pub fn define(&mut self, reg: ArchReg, csn: SeqNum) {
        self.csn[reg.flat()] = Some(csn);
    }

    /// CSN of the committed producer of `reg`'s current value, if known.
    #[inline]
    pub fn producer(&self, reg: ArchReg) -> Option<SeqNum> {
        self.csn[reg.flat()]
    }
}

regshare_types::impl_snap!(CsnMap { csn });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redefine_overwrites() {
        let mut m = CsnMap::new();
        m.define(ArchReg::int(0), SeqNum(1));
        m.define(ArchReg::int(0), SeqNum(5));
        assert_eq!(m.producer(ArchReg::int(0)), Some(SeqNum(5)));
    }

    #[test]
    fn classes_are_distinct() {
        let mut m = CsnMap::new();
        m.define(ArchReg::int(3), SeqNum(7));
        assert_eq!(m.producer(ArchReg::fp(3)), None);
    }
}

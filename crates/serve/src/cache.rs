//! The persistent content-addressed result cache.
//!
//! One file per simulated cell, named by the cell's content address
//! ([`regshare_bench::cell_digest`], rendered as 16 hex digits +
//! `.cell`). Entries are written atomically — a sibling `.tmp` file
//! renamed over the target, the same discipline checkpoint images use —
//! so a crash mid-write can never leave a torn entry, and concurrent
//! writers of the *same* cell are harmless (both write identical bytes,
//! the deterministic engine guarantees it).
//!
//! Entry layout: the [`regshare_types::cache`] header (magic, format
//! version, cell digest), then the workload name and the measured-window
//! [`SimStats`], then end of stream. [`Cache::load`] rejects truncated,
//! foreign-version or mis-addressed entries with typed [`CacheError`]s —
//! the caller decides whether a bad entry is fatal (tests) or a
//! recompute (the engine).
//!
//! Eviction: with a byte cap set, every store sweeps the directory and
//! deletes least-recently-used entries (hits refresh an entry's mtime)
//! until the total is back under the cap. Eviction only ever unlinks
//! whole files, so surviving entries are untouched — there is no index
//! or journal to corrupt.

use regshare_core::SimStats;
use regshare_types::cache::{read_cache_header, write_cache_header};
use regshare_types::snapshot::{Snap, SnapError, SnapReader, SnapWriter};
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Any way the cache can fail: a malformed entry or filesystem trouble.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The entry file is truncated, foreign-version, mis-addressed or
    /// structurally corrupt.
    Entry(SnapError),
    /// A file or directory could not be read, written or replaced.
    Io {
        /// The path involved.
        path: String,
        /// The OS error text.
        msg: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Entry(e) => write!(f, "bad cache entry: {e}"),
            CacheError::Io { path, msg } => write!(f, "cache file {path:?}: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Entry(e) => Some(e),
            CacheError::Io { .. } => None,
        }
    }
}

impl From<SnapError> for CacheError {
    fn from(e: SnapError) -> CacheError {
        CacheError::Entry(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> CacheError {
    CacheError::Io {
        path: path.display().to_string(),
        msg: e.to_string(),
    }
}

/// The on-disk store: a directory of content-addressed `.cell` files.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    max_bytes: Option<u64>,
}

impl Cache {
    /// Opens (creating if needed) the cache directory. `max_bytes` caps
    /// the total size of all entries; `None` means unbounded.
    pub fn open(dir: impl Into<PathBuf>, max_bytes: Option<u64>) -> Result<Cache, CacheError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Cache { dir, max_bytes })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path holding `key`'s entry.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.cell"))
    }

    fn encode(key: u64, workload: &str, stats: &SimStats) -> Vec<u8> {
        let mut w = SnapWriter::new();
        write_cache_header(&mut w, key);
        workload.to_string().encode(&mut w);
        stats.encode(&mut w);
        w.finish()
    }

    fn decode(bytes: &[u8], key: u64, workload: &str) -> Result<SimStats, CacheError> {
        let mut r = SnapReader::new(bytes);
        read_cache_header(&mut r, key)?;
        let name = String::decode(&mut r)?;
        if name != workload {
            // The digest already covers the name; a mismatch means the
            // file was renamed over another cell's address.
            return Err(r.corrupt("cell workload name").into());
        }
        let stats = SimStats::decode(&mut r)?;
        r.expect_eof()?;
        Ok(stats)
    }

    /// Looks `key` up. `Ok(None)` is a clean miss; a present-but-invalid
    /// entry is a typed [`CacheError`], never a silently-wrong result. A
    /// hit refreshes the entry's mtime (LRU eviction order).
    pub fn load(&self, key: u64, workload: &str) -> Result<Option<SimStats>, CacheError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        let stats = Self::decode(&bytes, key, workload)?;
        // Best-effort LRU touch; a read-only cache still serves hits.
        if let Ok(f) = std::fs::File::options().write(true).open(&path) {
            let _ = f.set_modified(SystemTime::now());
        }
        Ok(Some(stats))
    }

    /// Stores `key`'s result atomically (`.tmp` + rename), then enforces
    /// the byte cap by evicting least-recently-used entries (never the
    /// one just written).
    pub fn store(&self, key: u64, workload: &str, stats: &SimStats) -> Result<(), CacheError> {
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        std::fs::write(&tmp, Self::encode(key, workload, stats)).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        if self.max_bytes.is_some() {
            self.evict_to_cap(&path)?;
        }
        Ok(())
    }

    fn entries(&self) -> Result<Vec<(PathBuf, u64, SystemTime)>, CacheError> {
        let mut out = Vec::new();
        let iter = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in iter {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cell") {
                continue;
            }
            // An entry racing deletion is simply no longer part of the
            // listing.
            if let Ok(meta) = entry.metadata() {
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                out.push((path, meta.len(), mtime));
            }
        }
        Ok(out)
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> Result<usize, CacheError> {
        Ok(self.entries()?.len())
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> Result<bool, CacheError> {
        Ok(self.len()? == 0)
    }

    /// Total bytes currently stored.
    pub fn total_bytes(&self) -> Result<u64, CacheError> {
        Ok(self.entries()?.iter().map(|(_, len, _)| len).sum())
    }

    /// Deletes least-recently-used entries (stable-ordered by mtime, then
    /// file name) until the total is under the cap, keeping `just_written`
    /// even if the cap is smaller than that single entry.
    fn evict_to_cap(&self, just_written: &Path) -> Result<(), CacheError> {
        let cap = match self.max_bytes {
            Some(cap) => cap,
            None => return Ok(()),
        };
        let mut entries = self.entries()?;
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        entries.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        for (path, len, _) in entries {
            if total <= cap {
                break;
            }
            if path == just_written {
                continue;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => total -= len,
                // Already gone (another writer evicted it): fine.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => total -= len,
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        Ok(())
    }
}

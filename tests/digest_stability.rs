//! Digest stability: every checked-in `scenarios/*.scenario`, run through
//! the simulator, must reproduce the golden `arch_digest` values captured
//! from the pre-refactor core (PR 4) and keep its register accounting
//! clean. This is the contract that lets the hot loop be refactored for
//! speed: any change to the committed architectural trace — however small
//! — shows up as a digest mismatch here.
//!
//! To re-capture the goldens after an *intentional* architectural change:
//!
//! ```text
//! REGSHARE_UPDATE_GOLDENS=1 cargo test --test digest_stability
//! ```
//!
//! and commit the rewritten `tests/golden_digests.txt` with an explanation
//! of why the trace legitimately changed.

use regshare::bench::Scenario;
use regshare::core::Simulator;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Small fixed window: large enough to exercise branches, traps, sharing
/// and recovery on every workload; small enough that the full scenario
/// matrix stays cheap in debug builds.
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 4_000;

/// Per-scenario workload cap. Scenarios that default to the full
/// 36-workload suite are sampled; explicitly named workload lists are
/// sampled the same way, keeping the matrix O(scenarios × variants).
const WORKLOAD_CAP: usize = 3;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn golden_path() -> PathBuf {
    repo_root().join("tests/golden_digests.txt")
}

fn scenario_paths() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .scenario files in {dir:?}");
    paths
}

/// Runs every (scenario × workload × variant) cell and renders one line
/// per cell: `<scenario>/<workload>/<variant> <digest as 16 hex digits>`.
fn capture() -> String {
    let mut out = String::new();
    for path in scenario_paths() {
        let scenario = Scenario::load(path.to_str().expect("utf-8 path"))
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let workloads = scenario
            .resolve_workloads()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        for wl in workloads.iter().take(WORKLOAD_CAP) {
            let program = wl.build();
            for (label, spec) in &scenario.variants {
                let cfg = spec
                    .to_config()
                    .unwrap_or_else(|e| panic!("{path:?} variant {label}: {e}"));
                let mut sim = Simulator::new(&program, cfg);
                sim.run(WARMUP);
                sim.run(MEASURE);
                sim.audit_registers().unwrap_or_else(|e| {
                    panic!(
                        "{}/{}/{label}: register audit failed: {e}",
                        scenario.name, wl.name
                    )
                });
                writeln!(
                    out,
                    "{}/{}/{label} {:016x}",
                    scenario.name,
                    wl.name,
                    sim.arch_digest()
                )
                .expect("write to string");
            }
        }
    }
    out
}

#[test]
fn scenario_digests_match_pre_refactor_goldens() {
    let actual = capture();
    let path = golden_path();
    if std::env::var_os("REGSHARE_UPDATE_GOLDENS").is_some() {
        std::fs::write(&path, &actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("golden digests rewritten: {path:?}");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?}: {e}\n\
             (run with REGSHARE_UPDATE_GOLDENS=1 to capture goldens)"
        )
    });
    if actual != golden {
        // Report the first few diverging lines, not a 100-line dump.
        let mut diffs = actual
            .lines()
            .zip(golden.lines())
            .filter(|(a, g)| a != g)
            .take(5)
            .map(|(a, g)| format!("  got      {a}\n  expected {g}"))
            .collect::<Vec<_>>();
        if actual.lines().count() != golden.lines().count() {
            diffs.push(format!(
                "  line count changed: got {}, expected {}",
                actual.lines().count(),
                golden.lines().count()
            ));
        }
        panic!(
            "committed architectural trace diverged from the pre-refactor \
             goldens ({} cells checked):\n{}",
            golden.lines().count(),
            diffs.join("\n")
        );
    }
}

//! Facade crate re-exporting the whole `regshare` workspace.
pub use regshare_core as core;
pub use regshare_distance as distance;
pub use regshare_isa as isa;
pub use regshare_mem as mem;
pub use regshare_predictors as predictors;
pub use regshare_refcount as refcount;
pub use regshare_types as types;
pub use regshare_workloads as workloads;

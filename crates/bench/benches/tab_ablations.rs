//! Ablations and §4 comparisons that the paper argues qualitatively:
//!
//! 1. **Reference-counting schemes** (§4.2): IPC with each tracker under
//!    ME+SMB, its storage, per-checkpoint storage, recovery stalls, and
//!    commit-time checkpoint writes (the RDA's burden). The MIT cannot track
//!    SMB, so its SMB gains vanish; per-register counters pay a sequential
//!    walk on every squash.
//! 2. **DDT sizing** (§3.1): unlimited vs 16K vs 1K entries.
//! 3. **Load-load bypassing** (§6.2): SMB with and without load-load pairs
//!    ("bypassing only from stores was particularly detrimental" in astar,
//!    wupwise, applu, bzip, hmmer).
//! 4. **ISRB ports** (§4.3.4): rename/reclaim CAM port sweeps and the flag
//!    filter's effectiveness.
//!
//! Every configuration is declared through [`VariantSpec`] — trackers,
//! predictors and DDT geometries addressed by name, exactly as a
//! `.scenario` file would write them. The stress workloads are custom
//! profiles outside the 36-name registry, so sections 2–3 drive the
//! [`SweepSpec`] layer directly instead of going through a named scenario.

use regshare_bench::{RunOptions, Scenario, SweepGrid, SweepSpec, Table, VariantSpec};
use regshare_types::stats::geomean;
use regshare_workloads::by_names;

const SUBSET: [&str; 10] = [
    "crafty", "vortex", "hmmer", "astar", "bzip", "gobmk", "wupwise", "applu", "namd", "gamess",
];

/// Long redundant chains whose original producer drifts beyond the 8-bit
/// instruction distance: only load-load bypassing can keep propagating the
/// register (§6.2), and the many distinct spill slots overflow a 1K DDT.
fn stress_workloads() -> Vec<regshare_workloads::Workload> {
    use regshare_workloads::{custom, WorkloadClass, WorkloadProfile};
    let ll = custom(
        "ll-stress",
        WorkloadClass::Int,
        WorkloadProfile {
            redundant_blocks: 2,
            redundant_chain: 5,
            redundant_gap: 70,
            redundant_value_chained: true,
            spill_blocks: 0,
            alias_blocks: 0,
            move_blocks: 0,
            branchy_blocks: 0,
            call_blocks: 0,
            trips: 6,
            ..WorkloadProfile::default()
        },
    );
    let ddt = custom(
        "ddt-stress",
        WorkloadClass::Int,
        WorkloadProfile {
            spill_blocks: 4,
            spill_slots: 2048,
            spill_work: 6,
            redundant_blocks: 0,
            alias_blocks: 0,
            move_blocks: 0,
            branchy_blocks: 0,
            call_blocks: 0,
            trips: 16,
            ..WorkloadProfile::default()
        },
    );
    vec![ll, ddt]
}

/// §4.2 tracker comparison over one pre-computed grid.
fn tracker_table(grid: &SweepGrid, trackers: &[(&str, VariantSpec)]) -> Table {
    let mut t = Table::new(vec![
        "scheme",
        "gmean_speedup%",
        "storage_bits",
        "bits_per_ckpt",
        "recovery_stalls",
        "ckpt_writes_at_commit",
    ]);
    for (name, spec) in trackers {
        let mut speedups = Vec::new();
        let mut stalls = 0u64;
        let mut ckpt_writes = 0u64;
        for row in grid.rows() {
            let m = row.get(name).expect("declared label");
            speedups.push(1.0 + row.speedup("base", name).expect("declared label") / 100.0);
            stalls += m.stats.tracker_recovery_stalls;
            ckpt_writes += m.stats.tracker.commit_checkpoint_writes;
        }
        let cfg = spec.to_config().expect("ablation specs are valid");
        let storage = cfg
            .tracker
            .build(cfg.pregs_per_class, cfg.rob_entries)
            .storage();
        let g = (geomean(&speedups).unwrap_or(1.0) - 1.0) * 100.0;
        t.row(vec![
            name.to_string(),
            format!("{g:+.2}"),
            format!("{}", storage.main_bits),
            format!("{}", storage.per_checkpoint_bits),
            format!("{stalls}"),
            format!("{ckpt_writes}"),
        ]);
    }
    t
}

fn main() {
    let options = RunOptions::default();
    let window = options.window();

    // --- 1. Trackers ---
    println!("# §4.2 ablation: reference-counting schemes (ME+SMB)\n");
    let trackers: Vec<(&str, VariantSpec)> = vec![
        ("isrb-32", VariantSpec::preset("me_smb")),
        (
            "unlimited",
            VariantSpec::preset("me_smb").tracker("unlimited"),
        ),
        (
            "counters-walk8",
            VariantSpec::preset("me_smb")
                .tracker("counters")
                .walk_width(8),
        ),
        ("roth-matrix", VariantSpec::preset("me_smb").tracker("roth")),
        (
            "mit-8",
            VariantSpec::preset("me_smb")
                .tracker("mit")
                .tracker_entries(8),
        ),
        (
            "rda-32",
            VariantSpec::preset("me_smb")
                .tracker("rda")
                .tracker_entries(32)
                .counter_bits(3),
        ),
    ];
    let mut b = Scenario::builder("tab_trackers")
        .options(options)
        .workloads(&SUBSET)
        .variant("base", VariantSpec::hpca16());
    for (name, spec) in &trackers {
        b = b.variant(*name, spec.clone());
    }
    let grid = b
        .build()
        .expect("tracker scenario validates")
        .to_sweep()
        .expect("validated")
        .run()
        .expect("sweep completes");
    tracker_table(&grid, &trackers).print();

    // --- 2 + 3. DDT sizing and load-load bypassing share one sweep over
    // subset + stress workloads (and one baseline column). The stress
    // workloads are unregistered custom profiles, so this drives SweepSpec
    // directly; the configs still come from VariantSpec.
    let ddts: [(&str, &str); 3] = [
        ("unlimited", "ddt-unl"),
        ("base16k", "ddt-16k"),
        ("opt1k", "ddt-1k"),
    ];
    let smb_unl = VariantSpec::preset("smb").isrb_entries(0);
    let mut spec = SweepSpec::new(
        by_names(&SUBSET)
            .into_iter()
            .chain(stress_workloads())
            .collect(),
        window,
    )
    .variant("base", VariantSpec::hpca16().to_config().expect("valid"));
    for (ddt, label) in ddts {
        spec = spec.variant(label, smb_unl.clone().ddt(ddt).to_config().expect("valid"));
    }
    let grid = spec
        .variant(
            "store-load-only",
            smb_unl
                .clone()
                .smb_load_load(false)
                .to_config()
                .expect("valid"),
        )
        .variant("with-load-load", smb_unl.to_config().expect("valid"))
        .run()
        .expect("sweep completes");

    println!("\n# §3.1: DDT sizing (SMB, unlimited ISRB)\n");
    let mut t = Table::new(vec!["bench", "ddt_unlimited%", "ddt_16k%", "ddt_1k%"]);
    for row in grid.rows() {
        let mut cells = vec![row.workload().name.clone()];
        for (_, label) in ddts {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        t.row(cells);
    }
    t.print();

    println!("\n# §6.2: store-load only vs + load-load\n");
    let mut t = Table::new(vec!["bench", "store_load_only%", "with_load_load%"]);
    for row in grid.rows() {
        t.row(vec![
            row.workload().name.clone(),
            format!(
                "{:+.2}",
                row.speedup("base", "store-load-only")
                    .expect("declared label")
            ),
            format!(
                "{:+.2}",
                row.speedup("base", "with-load-load")
                    .expect("declared label")
            ),
        ]);
    }
    t.print();

    // --- 4. ISRB ports + flag filter ---
    println!("\n# §4.3.4: ISRB CAM ports and the reclaim flag filter\n");
    let ports: [(usize, usize, &str); 3] = [
        (0, 0, "ports-unl"),
        (2, 6, "ports-2r-6c"),
        (1, 2, "ports-1r-2c"),
    ];
    let mut b = Scenario::builder("tab_ports")
        .options(options)
        .workloads(&SUBSET)
        .variant("base", VariantSpec::hpca16());
    for (rp, cp, label) in ports {
        b = b.variant(label, VariantSpec::preset("me_smb").ports(rp, cp));
    }
    let grid = b
        .build()
        .expect("ports scenario validates")
        .to_sweep()
        .expect("validated")
        .run()
        .expect("sweep completes");
    let mut t = Table::new(vec![
        "bench",
        "ports_unl%",
        "ports_2r_6c%",
        "ports_1r_2c%",
        "flag_filtered",
        "cam_checked",
    ]);
    for row in grid.rows() {
        let mut cells = vec![row.workload().name.clone()];
        for (_, _, label) in ports {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        let unl = row.get("ports-unl").expect("declared label");
        cells.push(format!("{}", unl.stats.reclaims_flag_filtered));
        cells.push(format!("{}", unl.stats.reclaims_cam_checked));
        t.row(cells);
    }
    t.print();
}

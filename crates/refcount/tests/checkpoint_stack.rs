//! Regression net for the O(1) refcount paths introduced in PR 7:
//!
//! - the RDA's free-stack entry allocation must leave every *observable*
//!   behavior unchanged (slot choice is internal — decisions, counts and
//!   stats are not), pinned here as a behavior digest;
//! - checkpoint release/restore must stay correct on deep checkpoint
//!   stacks whose front id is far from zero (the position-from-id fast
//!   path) and when ids are released out of order (the backstop).

use regshare_refcount::{
    Isrb, IsrbConfig, Rda, ReclaimDecision, ReclaimRequest, ShareKind, ShareRequest,
    SharingTracker, UnlimitedTracker,
};
use regshare_types::{ArchReg, PhysReg, RegClass};

fn share(p: usize) -> ShareRequest {
    ShareRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p),
        kind: ShareKind::Bypass {
            arch_dst: ArchReg::int(0),
        },
    }
}

fn reclaim(p: usize) -> ReclaimRequest {
    ReclaimRequest {
        class: RegClass::Int,
        preg: PhysReg::new(p),
        arch: ArchReg::int(0),
        renews: false,
    }
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
}

/// Drives a tracker through a deterministic pseudo-random workload of
/// shares, reclaims, checkpoints, restores and releases, folding every
/// observable outcome into a digest.
fn behavior_digest(t: &mut dyn SharingTracker, steps: u32) -> u64 {
    let mut h = 0xDEAD_BEEF_u64;
    let mut rng = 0x1234_5678_9ABC_DEF0_u64;
    let mut next = move || {
        // xorshift64*
        let mut x = rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut live_ckpts: Vec<u64> = Vec::new();
    let mut freed = Vec::new();
    for _ in 0..steps {
        let r = next();
        let preg = (r >> 8) as usize % 12;
        match r % 10 {
            0..=3 => h = mix(h, u64::from(t.try_share(&share(preg)))),
            4..=6 => {
                let d = t.on_reclaim(&reclaim(preg));
                h = mix(h, u64::from(d == ReclaimDecision::Keep));
            }
            7 => {
                let id = t.checkpoint();
                live_ckpts.push(id);
                h = mix(h, id);
            }
            8 => {
                if !live_ckpts.is_empty() {
                    let idx = (r >> 16) as usize % live_ckpts.len();
                    let id = live_ckpts[idx];
                    live_ckpts.truncate(idx);
                    freed.clear();
                    t.restore(id, &mut freed);
                    for &(c, p) in &freed {
                        h = mix(h, (c.index() as u64) << 32 | p.index() as u64);
                    }
                }
            }
            _ => {
                if !live_ckpts.is_empty() {
                    let id = live_ckpts.remove(0);
                    t.release_checkpoint(id);
                    h = mix(h, id);
                }
            }
        }
        h = mix(h, t.shared_count() as u64);
        h = mix(h, u64::from(t.is_shared(RegClass::Int, PhysReg::new(preg))));
    }
    let s = t.stats();
    for v in [
        s.shares_accepted,
        s.shares_rejected_full,
        s.shares_rejected_saturated,
        s.reclaims,
        s.reclaim_cam_hits,
        s.entries_freed,
        s.checkpoints_taken,
        s.restores,
        s.peak_occupancy as u64,
        s.commit_checkpoint_writes,
    ] {
        h = mix(h, v);
    }
    h
}

/// Satellite 1: the free-stack RDA allocator must be observably identical
/// to the old lowest-invalid-index scan. This digest was captured against
/// the pre-free-stack implementation; any change to it means allocation
/// policy became externally visible.
#[test]
fn rda_allocation_order_digest_pinned() {
    let mut rda = Rda::new(8, 3);
    let d = behavior_digest(&mut rda, 4000);
    assert_eq!(d, 0xb6f6d62e2f33fab7, "RDA observable behavior changed");
}

/// Same pinning for the ISRB (its free stack predates this PR; the digest
/// guards the O(1) release path) and the unlimited oracle.
#[test]
fn isrb_and_unlimited_behavior_digest_pinned() {
    let mut isrb = Isrb::new(IsrbConfig {
        entries: 8,
        counter_bits: 3,
        ..IsrbConfig::default()
    });
    assert_eq!(behavior_digest(&mut isrb, 4000), 0xb038175ba37e89c3);
    let mut unl = UnlimitedTracker::new();
    assert_eq!(behavior_digest(&mut unl, 4000), 0x0deab18a3e2f2761);
}

fn all_trackers() -> Vec<Box<dyn SharingTracker>> {
    vec![
        Box::new(Isrb::new(IsrbConfig::default())),
        Box::new(Isrb::new(IsrbConfig::unlimited())),
        Box::new(Rda::new(16, 4)),
        Box::new(UnlimitedTracker::new()),
    ]
}

/// Satellite 3: a deep stack of live checkpoints whose oldest id is far
/// from zero — the position-from-id fast path must keep release and
/// restore exact.
#[test]
fn deep_checkpoint_stack_release_oldest_first() {
    for mut t in all_trackers() {
        // Burn 300 ids so the deque front is nowhere near id 0.
        for _ in 0..300 {
            let id = t.checkpoint();
            t.release_checkpoint(id);
        }
        assert!(t.try_share(&share(3)));
        let mut ids: Vec<u64> = (0..200)
            .map(|i| {
                if i == 100 {
                    // A mid-stack share so restores distinguish depths.
                    assert!(t.try_share(&share(3)));
                }
                t.checkpoint()
            })
            .collect();
        // Release the oldest half one at a time (the commit pattern).
        for id in ids.drain(..100) {
            t.release_checkpoint(id);
        }
        // Restore into the middle of what is left.
        let mid = ids[50];
        ids.truncate(50);
        let mut freed = Vec::new();
        t.restore(mid, &mut freed);
        // Both shares predate `mid`: still 1 sharer → Keep, Keep, Free.
        assert_eq!(
            t.on_reclaim(&reclaim(3)),
            ReclaimDecision::Keep,
            "{}",
            t.name()
        );
        assert_eq!(
            t.on_reclaim(&reclaim(3)),
            ReclaimDecision::Keep,
            "{}",
            t.name()
        );
        assert_eq!(
            t.on_reclaim(&reclaim(3)),
            ReclaimDecision::Free,
            "{}",
            t.name()
        );
        // The surviving older checkpoints still release cleanly.
        for id in ids {
            t.release_checkpoint(id);
        }
    }
}

/// Releasing an id that is older than every live checkpoint (already
/// released) must be a no-op, not a panic or a mis-indexed removal.
#[test]
fn release_unknown_checkpoint_is_noop() {
    for mut t in all_trackers() {
        let old = t.checkpoint();
        t.release_checkpoint(old);
        let live = t.checkpoint();
        t.release_checkpoint(old); // stale id: no-op
        t.release_checkpoint(live + 1); // future id: no-op
        let mut freed = Vec::new();
        t.restore(live, &mut freed); // still present
    }
}

/// The unlimited tracker tolerates out-of-order release (no oldest-first
/// assert); once contiguity is broken the binary-search backstop must
/// still find ids exactly.
#[test]
fn unlimited_release_out_of_order_keeps_lookups_correct() {
    let mut t = UnlimitedTracker::new();
    let ids: Vec<u64> = (0..50).map(|_| t.checkpoint()).collect();
    // Punch holes: release every third id from the middle out.
    for id in ids.iter().skip(10).step_by(3) {
        t.release_checkpoint(*id);
    }
    // Ids after the holes are found by the backstop and removed exactly once.
    t.release_checkpoint(ids[11]);
    t.release_checkpoint(ids[11]); // no-op now
    assert!(t.try_share(&share(7)));
    let mut freed = Vec::new();
    t.restore(ids[20], &mut freed); // survives the holes around it
    assert!(!t.is_shared(RegClass::Int, PhysReg::new(7)));
}

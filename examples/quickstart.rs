//! Quickstart: simulate a workload on the Table 1 machine, with and without
//! physical register sharing, and print what the ISRB did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regshare::core::{CoreConfig, Simulator};
use regshare::types::stats::speedup_pct;
use regshare::workloads;

fn main() {
    // Pick a workload from the 36-entry suite by name.
    let workload = workloads::find("crafty").expect("known workload");
    let program = workload.build();

    // Baseline: Table 1 machine, no sharing optimizations.
    let mut base = Simulator::new(&program, CoreConfig::hpca16());
    base.run(50_000); // warm caches and predictors
    let b0 = *base.stats();
    base.run(200_000);
    let base_stats = base.stats().delta_since(&b0);

    // Move elimination + speculative memory bypassing over a 32-entry ISRB.
    let mut opt = Simulator::new(&program, CoreConfig::hpca16().with_me().with_smb());
    let o0 = opt.run(50_000);
    // `run` returns a snapshot including tracker-internal statistics.
    let opt_stats = opt.run(200_000).delta_since(&o0);

    println!("workload: {}", workload.name);
    println!("baseline IPC:  {:.3}", base_stats.ipc());
    println!(
        "ME+SMB IPC:    {:.3}  ({:+.2}%)",
        opt_stats.ipc(),
        speedup_pct(base_stats.ipc(), opt_stats.ipc())
    );
    println!(
        "moves eliminated:   {} ({:.1}% of renamed µ-ops)",
        opt_stats.moves_eliminated,
        opt_stats.pct_renamed_eliminated()
    );
    println!(
        "loads bypassed:     {} ({:.1}% of loads)",
        opt_stats.loads_bypassed,
        opt_stats.pct_loads_bypassed()
    );
    println!(
        "bypass validations failed: {}",
        opt_stats.bypass_mispredictions
    );
    println!(
        "ISRB peak occupancy:       {}",
        opt_stats.tracker.peak_occupancy
    );
    println!(
        "ISRB shares accepted:      {}",
        opt_stats.tracker.shares_accepted
    );

    // The optimizations must not change architectural state.
    assert_eq!(
        base.arch_digest(),
        opt.arch_digest(),
        "architectural state diverged!"
    );
    println!("architectural digests match ✓");
}

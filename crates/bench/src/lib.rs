//! Experiment harness: workload × configuration sweeps reproducing every
//! table and figure of the paper's evaluation.
//!
//! The front door is the **scenario layer** ([`scenario`]): a [`Scenario`]
//! names an experiment — workloads × labelled configuration variants plus
//! [`RunOptions`] — and can come from a built-in preset
//! ([`scenario::preset`]), the validating [`ScenarioBuilder`], or a
//! checked-in `.scenario` file ([`Scenario::load`], a dependency-free TOML
//! subset). [`Scenario::to_sweep`] validates everything (typed
//! [`ScenarioError`]s, no silent misconfigurations) and expands the matrix
//! into a [`SweepSpec`] for the deterministic parallel engine in [`sweep`]:
//! jobs run on a `std::thread` worker pool and merge back in spec order, so
//! output is byte-identical at any parallelism level. [`report`] renders
//! the shared report format, and [`cli`] gives every binary the same
//! `--scenario` / `--preset` / `--warmup` / `--measure` / `--jobs` flags.
//! The `REGSHARE_WARMUP` / `REGSHARE_MEASURE` / `REGSHARE_JOBS` environment
//! variables survive as deprecated fallbacks behind [`RunOptions`].

#![deny(missing_docs)]

pub mod checkpoint;
pub mod cli;
pub mod digest;
pub mod fuzz;
pub mod harness;
pub mod options;
pub mod report;
pub mod scenario;
pub mod sweep;
pub mod table;
pub mod throughput;

pub use checkpoint::CheckpointError;
pub use digest::{cell_digest, scenario_digest};
pub use fuzz::FuzzOptions;
pub use harness::{measure, measure_program, measure_with, Measurement, RunWindow};
pub use options::{
    env_fallbacks, env_parse, RunOptions, ZeroJobsError, DEFAULT_MEASURE, DEFAULT_WARMUP,
};
pub use report::{render_report, run_scenario};
pub use scenario::{
    preset, valid_name, AsmSource, FuzzSource, Scenario, ScenarioBuilder, ScenarioError,
    VariantSpec, CONFIG_PRESETS, SCENARIO_PRESETS,
};
pub use sweep::{jobs_from_env, panic_detail, SweepError, SweepGrid, SweepRow, SweepSpec, Variant};
pub use table::Table;
pub use throughput::{measure_preset, measure_scenario, PresetThroughput, ThroughputReport};

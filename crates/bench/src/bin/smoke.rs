//! Quick shape check: ME / SMB / combined speedups on a few workloads.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::CoreConfig;
use regshare_types::stats::speedup_pct;
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    let mut t = Table::new(vec![
        "bench", "base_ipc", "me%", "smb%", "both%", "elim", "bypassed", "traps_b", "traps_s",
        "fdep_b", "fdep_s",
    ]);
    for wl in suite() {
        if ![
            "crafty", "vortex", "hmmer", "astar", "bzip", "namd", "wupwise", "applu", "mcf",
        ]
        .contains(&wl.name)
        {
            continue;
        }
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let me = measure(&wl, CoreConfig::hpca16().with_me(), window);
        let smb = measure(&wl, CoreConfig::hpca16().with_smb(), window);
        let both = measure(&wl, CoreConfig::hpca16().with_me().with_smb(), window);
        t.row(vec![
            wl.name.to_string(),
            format!("{:.3}", base.ipc()),
            format!("{:+.2}", speedup_pct(base.ipc(), me.ipc())),
            format!("{:+.2}", speedup_pct(base.ipc(), smb.ipc())),
            format!("{:+.2}", speedup_pct(base.ipc(), both.ipc())),
            format!("{:.2}%", me.stats.pct_renamed_eliminated()),
            format!("{:.1}%", smb.stats.pct_loads_bypassed()),
            format!("{}", base.stats.memory_traps),
            format!("{}", smb.stats.memory_traps),
            format!("{}", base.stats.false_dependencies),
            format!("{}", smb.stats.false_dependencies),
        ]);
    }
    t.print();
}

//! Drive the sweep engine from a `.scenario` file — no recompiling, no
//! environment variables: the experiment definition is data.
//!
//! ```sh
//! cargo run --release --example custom_scenario
//! ```
//!
//! Loads `scenarios/isrb_sizing.scenario` (the worked example from the
//! README's "Defining scenarios" section), validates it, prints the
//! standard report, then shows the programmatic route: the same experiment
//! built with `ScenarioBuilder`, extended with one more variant, and
//! re-rendered as scenario text you could check in.

use regshare::bench::{render_report, Scenario, VariantSpec};

fn main() {
    // --- 1. The file front door. ---
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/isrb_sizing.scenario"
    );
    let scenario = Scenario::load(path).expect("scenario file parses");
    // Validation is hard: unknown workloads, trackers or impossible
    // configurations would have failed `load`-then-`to_sweep` with a typed
    // ScenarioError instead of silently running nonsense.
    let grid = scenario
        .to_sweep()
        .expect("scenario validates")
        .run()
        .expect("sweep completes");
    print!("{}", render_report(&scenario, &grid).expect("own labels"));

    // --- 2. The programmatic route: extend the experiment in code. ---
    let mut extended = scenario.clone();
    extended.name = "isrb_sizing_plus_rda".to_string();
    extended.variants.push((
        "rda32".to_string(),
        VariantSpec::preset("me_smb")
            .tracker("rda")
            .tracker_entries(32)
            .counter_bits(3),
    ));
    let grid = extended
        .to_sweep()
        .expect("still valid")
        .run()
        .expect("sweep completes");
    println!();
    print!("{}", render_report(&extended, &grid).expect("own labels"));

    // --- 3. Round trip: the extended experiment as checked-in text. ---
    println!("\n# extended scenario as .scenario text:\n");
    print!("{}", extended.render());
    let reparsed = Scenario::parse(&extended.render()).expect("canonical text parses");
    assert_eq!(reparsed, extended, "render/parse round trip is identity");
}

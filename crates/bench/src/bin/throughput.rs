//! Simulator throughput harness: kuops/sec per preset, the `BENCH_*.json`
//! writer, and the CI regression gate.
//!
//! ```text
//! throughput [--preset <name>]... [--warmup <uops>] [--measure <uops>]
//!            [--workload-cap <n>] [--json <path>] [--bench-id <id>]
//!            [--baseline-kuops <x>] [--check <BENCH.json>] [--tolerance <pct>]
//! ```
//!
//! Default: measure every built-in preset with a 2000 + 8000 µ-op window,
//! capped at 6 workloads per preset, and print the table. `--json` also
//! writes the `BENCH_*.json` document, stamped with `--bench-id` (default
//! `pr4_throughput`, matching the first recorded baseline). `--baseline-kuops`
//! pins the pre-refactor headline number into that document. `--check`
//! re-reads a previously written document and exits non-zero if the fresh
//! `headline` throughput fell more than `--tolerance` percent (default 20)
//! below it — the CI `perf-smoke` gate.

use regshare_bench::scenario::SCENARIO_PRESETS;
use regshare_bench::throughput::{
    kuops_from_json, measure_preset, window_from_json, ThroughputReport,
};

struct Args {
    presets: Vec<String>,
    warmup: u64,
    measure: u64,
    workload_cap: usize,
    json: Option<String>,
    bench_id: String,
    baseline_kuops: Option<f64>,
    check: Option<String>,
    tolerance_pct: f64,
}

fn usage() -> &'static str {
    "usage: throughput [--preset <name>]... [--warmup <uops>] [--measure <uops>]\n\
     \x20                 [--workload-cap <n>] [--json <path>] [--bench-id <id>]\n\
     \x20                 [--baseline-kuops <x>] [--check <BENCH.json>] [--tolerance <pct>]\n\
     default: all presets, --warmup 2000 --measure 8000 --workload-cap 6 --tolerance 20\n\
     \x20        --bench-id pr4_throughput"
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        presets: Vec::new(),
        warmup: 2_000,
        measure: 8_000,
        workload_cap: 6,
        json: None,
        bench_id: "pr4_throughput".to_string(),
        baseline_kuops: None,
        check: None,
        tolerance_pct: 20.0,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--preset" => args.presets.push(value(&mut i)?),
            "--warmup" => {
                let v = value(&mut i)?;
                args.warmup = v.parse().map_err(|_| format!("bad --warmup {v:?}"))?;
            }
            "--measure" => {
                let v = value(&mut i)?;
                args.measure = v.parse().map_err(|_| format!("bad --measure {v:?}"))?;
            }
            "--workload-cap" => {
                let v = value(&mut i)?;
                args.workload_cap = v.parse().map_err(|_| format!("bad --workload-cap {v:?}"))?;
            }
            "--json" => args.json = Some(value(&mut i)?),
            "--bench-id" => args.bench_id = value(&mut i)?,
            "--baseline-kuops" => {
                let v = value(&mut i)?;
                args.baseline_kuops = Some(
                    v.parse()
                        .map_err(|_| format!("bad --baseline-kuops {v:?}"))?,
                );
            }
            "--check" => args.check = Some(value(&mut i)?),
            "--tolerance" => {
                let v = value(&mut i)?;
                args.tolerance_pct = v.parse().map_err(|_| format!("bad --tolerance {v:?}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    if args.presets.is_empty() {
        args.presets = SCENARIO_PRESETS
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("throughput: {msg}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };

    let mut report = ThroughputReport {
        bench: args.bench_id.clone(),
        warmup: args.warmup,
        measure: args.measure,
        workload_cap: args.workload_cap,
        presets: Vec::new(),
        baseline_headline_kuops: args.baseline_kuops,
    };
    for name in &args.presets {
        match measure_preset(name, args.warmup, args.measure, args.workload_cap) {
            Some(p) => {
                eprintln!(
                    "[throughput: {name}: {} runs, {} uops, {:.3}s, {:.1} kuops/s]",
                    p.runs,
                    p.uops,
                    p.wall_secs,
                    p.kuops_per_sec()
                );
                report.presets.push(p);
            }
            None => {
                eprintln!("throughput: unknown preset {name:?} (see --list in smoke/paper_report)");
                std::process::exit(1);
            }
        }
    }

    print!("{}", report.render_table());

    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("throughput: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
        eprintln!("[throughput: wrote {path}]");
    }

    if let Some(path) = &args.check {
        let recorded = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("throughput: cannot read {path:?}: {e}");
                std::process::exit(1);
            }
        };
        let Some(recorded_kuops) = kuops_from_json(&recorded, "headline") else {
            eprintln!("throughput: {path:?} has no headline kuops_per_sec");
            std::process::exit(1);
        };
        // kuops/sec depends on the window (per-run setup amortizes
        // differently), so comparing across windows is meaningless: a short
        // fresh window reads as a spurious regression, a long one masks a
        // real one.
        let fresh_window = (args.warmup, args.measure, args.workload_cap);
        match window_from_json(&recorded) {
            Ok(w) if w == fresh_window => {}
            Ok(w) => {
                eprintln!(
                    "throughput: window mismatch: this run measured \
                     (warmup, measure, cap) = {fresh_window:?} but {path} \
                     records {w:?}; re-run with the recorded window"
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("throughput: {path:?} has no valid window: {e}");
                std::process::exit(1);
            }
        }
        let Some(fresh) = report.headline() else {
            eprintln!("throughput: --check needs the headline preset in this run");
            std::process::exit(1);
        };
        let fresh_kuops = fresh.kuops_per_sec();
        let floor = recorded_kuops * (1.0 - args.tolerance_pct / 100.0);
        if fresh_kuops < floor {
            eprintln!(
                "throughput: REGRESSION: headline {fresh_kuops:.1} kuops/s is below \
                 {floor:.1} ({recorded_kuops:.1} recorded in {path}, -{}% tolerance)",
                args.tolerance_pct
            );
            std::process::exit(1);
        }
        eprintln!(
            "[throughput: check ok: headline {fresh_kuops:.1} kuops/s vs {recorded_kuops:.1} \
             recorded (floor {floor:.1})]"
        );
    }
}

//! Cache correctness: cold/warm byte-identity, persistence across engine
//! restarts, eviction that never corrupts survivors, and typed rejection
//! of damaged entries (mirroring the snapshot layer's `snapshot_errors`
//! suite).

use regshare_bench::digest::cell_digest;
use regshare_bench::{render_report, RunOptions, Scenario, VariantSpec};
use regshare_core::{CoreConfig, SimStats};
use regshare_serve::cache::{Cache, CacheError};
use regshare_serve::engine::{Engine, EngineConfig, Format};
use regshare_types::snapshot::SnapError;
use std::path::{Path, PathBuf};

fn tiny(name: &str) -> Scenario {
    Scenario::builder(name)
        .options(RunOptions::default().warmup(500).measure(1_500))
        .workloads(&["crafty", "hmmer"])
        .variant("base", VariantSpec::hpca16())
        .variant("both", VariantSpec::preset("me_smb"))
        .build()
        .unwrap()
}

/// A fresh per-test cache directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("regshare-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn as_str(&self) -> String {
        self.0.to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine(dir: &TempDir) -> Engine {
    Engine::new(EngineConfig {
        cache_dir: dir.as_str(),
        workers: 2,
        ..EngineConfig::default()
    })
    .unwrap()
}

#[test]
fn cold_then_warm_is_byte_identical_and_fully_cached() {
    let dir = TempDir::new("cold-warm");
    let scenario = tiny("serve_cold_warm");
    let eng = engine(&dir);

    let cold = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(cold.cells, 4);
    assert_eq!(cold.cached, 0);
    assert_eq!(cold.computed, 4);
    assert_eq!(eng.computed_cells(), 4);

    // The served body is exactly what the batch path renders.
    let grid = scenario.to_sweep().unwrap().run().unwrap();
    assert_eq!(cold.body, render_report(&scenario, &grid).unwrap());

    let warm = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(warm.cached, 4);
    assert_eq!(warm.computed, 0);
    assert_eq!(warm.body, cold.body, "cache hits must be invisible");
    assert_eq!(eng.computed_cells(), 4, "warm request simulated nothing");
}

#[test]
fn cache_survives_engine_restart() {
    let dir = TempDir::new("restart");
    let scenario = tiny("serve_restart");
    let cold_body = {
        let eng = engine(&dir);
        eng.submit(&scenario, Format::Table).unwrap().body
        // Engine dropped here: worker pool drained, cache files on disk.
    };

    let eng2 = engine(&dir);
    let warm = eng2.submit(&scenario, Format::Table).unwrap();
    assert_eq!(warm.computed, 0, "a fresh engine must hit the disk cache");
    assert_eq!(warm.cached, 4);
    assert_eq!(eng2.computed_cells(), 0);
    assert_eq!(warm.body, cold_body);
}

#[test]
fn json_body_carries_provenance_and_flips_on_warm() {
    let dir = TempDir::new("json");
    let scenario = tiny("serve_json");
    let eng = engine(&dir);

    let cold = eng.submit(&scenario, Format::Json).unwrap();
    assert_eq!(cold.body.matches("\"cached\": false").count(), 4);
    let warm = eng.submit(&scenario, Format::Json).unwrap();
    assert_eq!(warm.body.matches("\"cached\": true").count(), 4);
    // Everything except provenance is identical.
    assert_eq!(
        cold.body.replace("\"cached\": false", "\"cached\": true"),
        warm.body
    );
}

fn fake_stats(seed: u64) -> SimStats {
    SimStats {
        cycles: 1_000 + seed,
        committed: 2_000 + seed,
        ..SimStats::default()
    }
}

#[test]
fn eviction_under_size_cap_never_corrupts_survivors() {
    let dir = TempDir::new("evict");
    // Each entry is a few dozen bytes; cap to roughly three entries.
    let one_entry = {
        let probe = Cache::open(dir.path(), None).unwrap();
        probe.store(0, "w0", &fake_stats(0)).unwrap();
        probe.total_bytes().unwrap()
    };
    let _ = std::fs::remove_dir_all(dir.path());
    let cap = one_entry * 3;
    let cache = Cache::open(dir.path(), Some(cap)).unwrap();

    for key in 0..16u64 {
        let name = format!("w{key}");
        cache.store(key, &name, &fake_stats(key)).unwrap();
        assert!(
            cache.total_bytes().unwrap() <= cap,
            "cap enforced after store {key}"
        );
        // Every surviving entry still decodes to exactly what was stored.
        let mut survivors = 0;
        for k in 0..=key {
            let name = format!("w{k}");
            match cache.load(k, &name) {
                Ok(Some(stats)) => {
                    assert_eq!(stats, fake_stats(k), "entry {k} intact");
                    survivors += 1;
                }
                Ok(None) => {} // evicted: fine
                Err(e) => panic!("entry {k} corrupted by eviction: {e}"),
            }
        }
        assert!(survivors >= 1, "the just-written entry always survives");
        assert!(
            cache.load(key, &format!("w{key}")).unwrap().is_some(),
            "the just-written entry itself is never the victim"
        );
    }
}

#[test]
fn lru_hits_protect_entries_from_eviction() {
    let dir = TempDir::new("lru");
    let one_entry = {
        let probe = Cache::open(dir.path(), None).unwrap();
        probe.store(0, "w0", &fake_stats(0)).unwrap();
        probe.total_bytes().unwrap()
    };
    let _ = std::fs::remove_dir_all(dir.path());
    let cache = Cache::open(dir.path(), Some(one_entry * 2)).unwrap();

    cache.store(1, "w1", &fake_stats(1)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    cache.store(2, "w2", &fake_stats(2)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Touch entry 1: it becomes the most recently used.
    assert!(cache.load(1, "w1").unwrap().is_some());
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Storing a third entry must evict 2 (LRU), not the freshly-hit 1.
    cache.store(3, "w3", &fake_stats(3)).unwrap();
    assert!(cache.load(1, "w1").unwrap().is_some(), "hit entry kept");
    assert!(cache.load(2, "w2").unwrap().is_none(), "LRU entry evicted");
    assert!(cache.load(3, "w3").unwrap().is_some());
}

#[test]
fn truncated_and_foreign_entries_are_rejected_with_typed_errors() {
    let dir = TempDir::new("reject");
    let cache = Cache::open(dir.path(), None).unwrap();
    cache.store(7, "w7", &fake_stats(7)).unwrap();
    let path = cache.entry_path(7);
    let good = std::fs::read(&path).unwrap();

    // Truncated mid-payload: ShortRead.
    std::fs::write(&path, &good[..good.len() - 3]).unwrap();
    match cache.load(7, "w7") {
        Err(CacheError::Entry(SnapError::ShortRead { .. })) => {}
        other => panic!("truncated entry: got {other:?}"),
    }

    // A machine snapshot is not a cache entry: BadMagic.
    let mut snap = good.clone();
    snap[..4].copy_from_slice(b"RGSH");
    std::fs::write(&path, &snap).unwrap();
    match cache.load(7, "w7") {
        Err(CacheError::Entry(SnapError::BadMagic { found })) => {
            assert_eq!(&found, b"RGSH");
        }
        other => panic!("foreign magic: got {other:?}"),
    }

    // A future format version: BadVersion, never reinterpretation.
    let mut vers = good.clone();
    vers[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &vers).unwrap();
    match cache.load(7, "w7") {
        Err(CacheError::Entry(SnapError::BadVersion { found, supported })) => {
            assert_eq!(found, 99);
            assert_eq!(supported, regshare_types::cache::CACHE_FORMAT_VERSION);
        }
        other => panic!("foreign version: got {other:?}"),
    }

    // An entry renamed over another cell's address: digest mismatch.
    std::fs::write(&path, &good).unwrap();
    std::fs::rename(&path, cache.entry_path(8)).unwrap();
    match cache.load(8, "w8") {
        Err(CacheError::Entry(SnapError::ConfigDigestMismatch { found, expected })) => {
            assert_eq!(found, 7);
            assert_eq!(expected, 8);
        }
        other => panic!("mis-addressed entry: got {other:?}"),
    }

    // Trailing garbage after a valid payload: Corrupt, not silent accept.
    let mut long = good.clone();
    long.extend_from_slice(&[0u8; 4]);
    std::fs::write(cache.entry_path(7), &long).unwrap();
    match cache.load(7, "w7") {
        Err(CacheError::Entry(SnapError::Corrupt { .. })) => {}
        other => panic!("oversize entry: got {other:?}"),
    }
}

#[test]
fn engine_recomputes_over_a_damaged_entry() {
    let dir = TempDir::new("heal");
    let scenario = tiny("serve_heal");
    let eng = engine(&dir);
    let cold = eng.submit(&scenario, Format::Table).unwrap();

    // Damage exactly one cell's entry on disk.
    let window = scenario.options.window();
    let cfg: CoreConfig = VariantSpec::hpca16().to_config().unwrap();
    let key = cell_digest("crafty", &cfg, window);
    let path = eng.cache().entry_path(key);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..10]).unwrap();

    let healed = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(healed.computed, 1, "only the damaged cell is recomputed");
    assert_eq!(healed.cached, 3);
    assert_eq!(healed.body, cold.body, "healed result is byte-identical");
    // And the heal is persistent: the next request is fully cached.
    let warm = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(warm.computed, 0);
}

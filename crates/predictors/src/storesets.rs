//! Store Sets memory dependence predictor (Chrysos & Emer, ISCA 1998).
//!
//! Table 1 of the paper: 4K-entry SSIT / LFST, **not rolled back on
//! squashes**. Loads and stores are assigned store-set IDs (SSIDs) through
//! the Store Set ID Table (SSIT), indexed by PC. The Last Fetched Store
//! Table (LFST) maps an SSID to the most recently renamed store in that set;
//! a load (or store) belonging to the set must wait for that store, which is
//! how the predictor enforces speculative memory ordering.

use regshare_types::hasher::mix64;
use regshare_types::{Addr, SeqNum};

/// Configuration for [`StoreSets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSetsConfig {
    /// log2(SSIT entries).
    pub log_ssit: u32,
    /// Number of LFST entries (== max live SSIDs).
    pub lfst_entries: usize,
    /// Cyclic clearing period in accesses (0 = never): real Store Sets
    /// implementations (and gem5's) periodically wipe the SSIT so stale
    /// dependencies do not accumulate forever; this is also what keeps a
    /// steady trickle of violations and false dependencies in long runs.
    pub clear_period: u64,
}

impl StoreSetsConfig {
    /// The paper's configuration: 4K-entry SSIT / LFST.
    pub fn hpca16() -> StoreSetsConfig {
        StoreSetsConfig {
            log_ssit: 12,
            lfst_entries: 4096,
            clear_period: 30_000,
        }
    }
}

/// Store set identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ssid(pub u32);

/// The Store Sets predictor.
///
/// # Examples
///
/// ```
/// use regshare_predictors::{StoreSets, StoreSetsConfig};
/// use regshare_types::SeqNum;
///
/// let mut ss = StoreSets::new(StoreSetsConfig::hpca16());
/// // Initially no dependence is predicted.
/// assert_eq!(ss.load_dependence(0x400010), None);
/// // After a violation between the load and a store, they share a set...
/// ss.train_violation(0x400010, 0x400000);
/// // ...and once the store is renamed, the load must wait for it.
/// ss.store_renamed(0x400000, SeqNum(7));
/// assert_eq!(ss.load_dependence(0x400010), Some(SeqNum(7)));
/// ```
#[derive(Debug, Clone)]
pub struct StoreSets {
    /// SSIT: PC hash → SSID (`u32::MAX` = invalid).
    ssit: Vec<u32>,
    /// LFST: SSID → last fetched store (None once that store executed).
    lfst: Vec<Option<SeqNum>>,
    log_ssit: u32,
    /// Monotonic SSID allocator (wraps within lfst_entries).
    next_ssid: u32,
    violations_trained: u64,
    clear_period: u64,
    accesses: u64,
}

impl StoreSets {
    /// Creates a predictor with the given geometry.
    pub fn new(cfg: StoreSetsConfig) -> StoreSets {
        StoreSets {
            ssit: vec![u32::MAX; 1 << cfg.log_ssit],
            lfst: vec![None; cfg.lfst_entries],
            log_ssit: cfg.log_ssit,
            next_ssid: 0,
            violations_trained: 0,
            clear_period: cfg.clear_period,
            accesses: 0,
        }
    }

    /// Cyclic clearing: counts an access and wipes the tables when the
    /// period elapses.
    fn tick(&mut self) {
        if self.clear_period == 0 {
            return;
        }
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.clear_period) {
            self.ssit.iter_mut().for_each(|e| *e = u32::MAX);
            self.lfst.iter_mut().for_each(|e| *e = None);
        }
    }

    #[inline]
    fn ssit_index(&self, pc: Addr) -> usize {
        (mix64(pc) as usize) & ((1 << self.log_ssit) - 1)
    }

    /// The SSID currently assigned to `pc`, if any.
    pub fn ssid_of(&self, pc: Addr) -> Option<Ssid> {
        let v = self.ssit[self.ssit_index(pc)];
        if v == u32::MAX {
            None
        } else {
            Some(Ssid(v))
        }
    }

    /// Called when a load at `pc` is renamed: returns the store it must wait
    /// for, if its store set has a live last-fetched store.
    pub fn load_dependence(&mut self, pc: Addr) -> Option<SeqNum> {
        self.tick();
        let ssid = self.ssid_of(pc)?;
        self.lfst[ssid.0 as usize % self.lfst.len()]
    }

    /// Called when a store at `pc` is renamed: returns the previous store in
    /// the set this store must order behind (store-store ordering), and
    /// records this store as the set's last fetched store.
    pub fn store_renamed(&mut self, pc: Addr, seq: SeqNum) -> Option<SeqNum> {
        self.tick();
        let ssid = self.ssid_of(pc)?;
        let slot = ssid.0 as usize % self.lfst.len();
        let prev = self.lfst[slot];
        self.lfst[slot] = Some(seq);
        prev
    }

    /// Called when a store executes (its address is known): it no longer
    /// constrains issue, so clear it from the LFST if still current.
    pub fn store_executed(&mut self, pc: Addr, seq: SeqNum) {
        if let Some(ssid) = self.ssid_of(pc) {
            let slot = ssid.0 as usize % self.lfst.len();
            if self.lfst[slot] == Some(seq) {
                self.lfst[slot] = None;
            }
        }
    }

    /// Trains on a memory-order violation between a load and an older store:
    /// both PCs are merged into one store set (Chrysos-Emer merge rule:
    /// both adopt the smaller existing SSID, or a fresh one).
    pub fn train_violation(&mut self, load_pc: Addr, store_pc: Addr) {
        self.violations_trained += 1;
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        let l = self.ssit[li];
        let s = self.ssit[si];
        let merged = match (l, s) {
            (u32::MAX, u32::MAX) => {
                let id = self.next_ssid;
                self.next_ssid = (self.next_ssid + 1) % self.lfst.len() as u32;
                id
            }
            (u32::MAX, s) => s,
            (l, u32::MAX) => l,
            (l, s) => l.min(s),
        };
        self.ssit[li] = merged;
        self.ssit[si] = merged;
    }

    /// Number of violations trained (for Figure 4 style reporting).
    pub fn violations_trained(&self) -> u64 {
        self.violations_trained
    }
}

impl regshare_types::snapshot::Snapshot for StoreSets {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.ssit.encode(w);
        self.lfst.encode(w);
        w.put_u32(self.next_ssid);
        w.put_u64(self.violations_trained);
        w.put_u64(self.accesses);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let ssit: Vec<u32> = Snap::decode(r)?;
        if ssit.len() != self.ssit.len() {
            return Err(r.corrupt("StoreSets SSIT size"));
        }
        let lfst: Vec<Option<SeqNum>> = Snap::decode(r)?;
        if lfst.len() != self.lfst.len() {
            return Err(r.corrupt("StoreSets LFST size"));
        }
        self.ssit = ssit;
        self.lfst = lfst;
        self.next_ssid = r.get_u32()?;
        self.violations_trained = r.get_u64()?;
        self.accesses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ss() -> StoreSets {
        StoreSets::new(StoreSetsConfig {
            log_ssit: 8,
            lfst_entries: 64,
            clear_period: 0,
        })
    }

    #[test]
    fn cyclic_clearing_forgets() {
        let mut s = StoreSets::new(StoreSetsConfig {
            log_ssit: 8,
            lfst_entries: 64,
            clear_period: 4,
        });
        s.train_violation(0x100, 0x200);
        s.store_renamed(0x200, SeqNum(1));
        assert!(s.load_dependence(0x100).is_some());
        // Exceed the clear period.
        for i in 0..6 {
            let _ = s.store_renamed(0x900 + i, SeqNum(10 + i));
        }
        assert_eq!(s.load_dependence(0x100), None, "tables should have cleared");
    }

    #[test]
    fn untrained_predicts_nothing() {
        let mut s = ss();
        assert_eq!(s.load_dependence(0x100), None);
        assert_eq!(s.store_renamed(0x200, SeqNum(1)), None);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut s = ss();
        s.train_violation(0x100, 0x200);
        assert_eq!(s.ssid_of(0x100), s.ssid_of(0x200));
        s.store_renamed(0x200, SeqNum(10));
        assert_eq!(s.load_dependence(0x100), Some(SeqNum(10)));
    }

    #[test]
    fn store_execution_clears_lfst() {
        let mut s = ss();
        s.train_violation(0x100, 0x200);
        s.store_renamed(0x200, SeqNum(10));
        s.store_executed(0x200, SeqNum(10));
        assert_eq!(s.load_dependence(0x100), None);
    }

    #[test]
    fn stale_store_execution_does_not_clear_newer() {
        let mut s = ss();
        s.train_violation(0x100, 0x200);
        s.store_renamed(0x200, SeqNum(10));
        s.store_renamed(0x200, SeqNum(20));
        s.store_executed(0x200, SeqNum(10)); // stale
        assert_eq!(s.load_dependence(0x100), Some(SeqNum(20)));
    }

    #[test]
    fn merge_rule_takes_minimum() {
        let mut s = ss();
        s.train_violation(0x100, 0x200); // set A
        s.train_violation(0x300, 0x400); // set B
        let a = s.ssid_of(0x100).unwrap();
        let b = s.ssid_of(0x300).unwrap();
        assert_ne!(a, b);
        // Merge across sets.
        s.train_violation(0x100, 0x400);
        assert_eq!(s.ssid_of(0x100).unwrap(), a.min(b));
        assert_eq!(s.ssid_of(0x400).unwrap(), a.min(b));
        assert_eq!(s.violations_trained(), 3);
    }

    #[test]
    fn store_store_ordering_chains() {
        let mut s = ss();
        s.train_violation(0x100, 0x200);
        assert_eq!(s.store_renamed(0x200, SeqNum(5)), None);
        assert_eq!(s.store_renamed(0x200, SeqNum(8)), Some(SeqNum(5)));
    }
}

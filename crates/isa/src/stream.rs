//! The fetch stream: what the out-of-order front-end actually consumes.
//!
//! A [`FetchStream`] serves micro-ops in fetch order. On the correct path it
//! steps the oracle [`Machine`] and buffers everything not yet retired so
//! that pipeline flushes (branch mispredictions resolved at execute, memory
//! traps and bypass-validation failures resolved at commit) can *replay*
//! already-fetched micro-ops without rewinding the interpreter. Branch
//! micro-ops additionally capture a [`ForkState`] so that a later
//! misprediction of a replayed branch can still enter a genuine wrong path.

use crate::interp::{ForkState, Machine, TracedStep, WrongPath};
use crate::op::DynUop;
use crate::program::Program;
use regshare_types::hasher::FastMap;
use regshare_types::SeqNum;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

struct BufEntry {
    uop: DynUop,
    /// Post-branch fork state, captured only for branches.
    fork: Option<Box<ForkState>>,
}

/// Longest correct-path prefix recorded per stream. Streams that run past
/// the cap replay the cached prefix and continue live from the exact
/// replayed machine state, so the cap only bounds memory, never changes
/// behavior.
const RECORD_CAP: usize = 1 << 16;

/// Maximum cached streams. When full the whole cache is cleared before the
/// next publish (generational eviction): fuzz soaks and sweeps are
/// program-major, so by the time the cache fills, older entries are dead.
const CACHE_CAP: usize = 32;

/// Content-addressed cache of cracked micro-op streams, keyed by
/// `(program digest, fetch-path key)`. The correct-path stream is a pure
/// function of the program, so every simulator over the same key replays the
/// recorded prefix instead of re-decoding through the interpreter.
type StreamCache = FastMap<(u64, u64), Arc<Vec<TracedStep>>>;

static STREAM_CACHE: OnceLock<Mutex<StreamCache>> = OnceLock::new();

static ORACLE_DECODES: AtomicU64 = AtomicU64::new(0);
static REPLAYED_UOPS: AtomicU64 = AtomicU64::new(0);
static STREAM_HITS: AtomicU64 = AtomicU64::new(0);
static STREAM_MISSES: AtomicU64 = AtomicU64::new(0);
static STREAMS_PUBLISHED: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<StreamCache> {
    STREAM_CACHE.get_or_init(|| Mutex::new(FastMap::default()))
}

/// Process-wide stream-cache counters (monotonic since process start).
///
/// Deliberately *not* part of [`crate::Machine`] or any snapshot payload:
/// whether a run was served from the cache is invisible to the simulated
/// architecture, and folding these into serialized state would make resumed
/// runs byte-differ from uninterrupted ones whenever the cache is warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCacheStats {
    /// Correct-path µ-ops decoded live by the interpreter. Flushed from each
    /// stream when it is dropped.
    pub oracle_decodes: u64,
    /// Correct-path µ-ops served by replaying a cached stream.
    pub replayed_uops: u64,
    /// Stream constructions that found a cached stream for their key.
    pub stream_hits: u64,
    /// Stream constructions that found nothing and started recording.
    pub stream_misses: u64,
    /// Recorded streams published into the cache.
    pub streams_published: u64,
}

/// Reads the process-wide [`StreamCacheStats`].
///
/// Per-stream decode/replay tallies are flushed when the stream (or the
/// simulator owning it) is dropped, so compare snapshots taken *between*
/// runs, not mid-run.
pub fn stream_cache_stats() -> StreamCacheStats {
    StreamCacheStats {
        oracle_decodes: ORACLE_DECODES.load(Ordering::Relaxed),
        replayed_uops: REPLAYED_UOPS.load(Ordering::Relaxed),
        stream_hits: STREAM_HITS.load(Ordering::Relaxed),
        stream_misses: STREAM_MISSES.load(Ordering::Relaxed),
        streams_published: STREAMS_PUBLISHED.load(Ordering::Relaxed),
    }
}

/// Fetch-order micro-op source with wrong-path execution and replay.
///
/// # Examples
///
/// ```
/// use regshare_isa::program::ProgramBuilder;
/// use regshare_isa::op::Op;
/// use regshare_isa::FetchStream;
/// use regshare_types::ArchReg;
/// use std::sync::Arc;
///
/// let mut b = ProgramBuilder::new();
/// b.push(Op::LoadImm { dst: ArchReg::int(0), imm: 1 });
/// b.push(Op::Jump { target: 0 });
/// let mut fs = FetchStream::new(Arc::new(b.build()));
/// let u0 = fs.next_uop();
/// let _u1 = fs.next_uop();
/// // A commit-time flush replays from an earlier sequence number:
/// fs.recover_to(u0.seq);
/// assert_eq!(fs.next_uop().seq, u0.seq);
/// ```
pub struct FetchStream {
    machine: Machine,
    buf: VecDeque<BufEntry>,
    /// Sequence number of `buf.front()`.
    base_seq: u64,
    /// Next correct-path sequence number to deliver.
    cursor: u64,
    wrong: Option<WrongPath>,
    /// Cache key: `(program digest, fetch-path key)`.
    key: (u64, u64),
    /// Cached stream for `key`, indexed by absolute sequence number.
    cached: Option<Arc<Vec<TracedStep>>>,
    /// Recording buffer on a cache miss; `None` once published, once the
    /// machine state stops being a cold-start prefix (snapshot restore), or
    /// while a cache-hit stream is still inside the cached prefix. A warm
    /// stream that runs past the prefix re-arms this with a copy of the
    /// prefix so the extended stream can be republished (longest wins).
    rec: Option<Vec<TracedStep>>,
    /// Correct-path µ-ops decoded live by this stream.
    decodes: u64,
    /// Correct-path µ-ops replayed from the cache by this stream.
    replays: u64,
}

impl std::fmt::Debug for FetchStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchStream")
            .field("base_seq", &self.base_seq)
            .field("cursor", &self.cursor)
            .field("buffered", &self.buf.len())
            .field("on_wrong_path", &self.wrong.is_some())
            .finish()
    }
}

impl FetchStream {
    /// Creates a stream over `program`, positioned at its entry, using the
    /// default fetch-path key (see [`FetchStream::with_fetch_key`]).
    pub fn new(program: Arc<Program>) -> FetchStream {
        FetchStream::with_fetch_key(program, 0)
    }

    /// Creates a stream over `program` under an explicit fetch-path key.
    ///
    /// The key partitions the stream cache: streams recorded under one
    /// fetch-path configuration are never replayed under another, even for
    /// the same program. Callers whose front-end configuration shapes the
    /// fetched stream pass a digest of those knobs here.
    pub fn with_fetch_key(program: Arc<Program>, fetch_key: u64) -> FetchStream {
        let key = (program.digest(), fetch_key);
        let cached = cache()
            .lock()
            .expect("stream cache poisoned")
            .get(&key)
            .cloned();
        let rec = if cached.is_some() {
            STREAM_HITS.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            STREAM_MISSES.fetch_add(1, Ordering::Relaxed);
            Some(Vec::new())
        };
        FetchStream {
            machine: Machine::new(program),
            buf: VecDeque::new(),
            base_seq: 0,
            cursor: 0,
            wrong: None,
            key,
            cached,
            rec,
            decodes: 0,
            replays: 0,
        }
    }

    /// Correct-path µ-ops this stream decoded live (not served by the
    /// stream cache). Zero for a fully warm run.
    pub fn oracle_decodes(&self) -> u64 {
        self.decodes
    }

    /// Correct-path µ-ops this stream replayed from the stream cache.
    pub fn replayed_uops(&self) -> u64 {
        self.replays
    }

    /// Publishes the recorded prefix into the process-wide cache. The
    /// longest recording for a key wins: concurrent recorders produce
    /// identical content over their common prefix (the stream is a pure
    /// function of the program), so keeping the longer one only widens
    /// warm coverage — it can never change replayed content.
    fn publish_recording(&mut self) {
        let Some(rec) = self.rec.take() else { return };
        if rec.is_empty() {
            return;
        }
        let mut map = cache().lock().expect("stream cache poisoned");
        if let Some(existing) = map.get(&self.key) {
            if existing.len() >= rec.len() {
                return;
            }
        } else if map.len() >= CACHE_CAP {
            map.clear();
        }
        map.insert(self.key, Arc::new(rec));
        STREAMS_PUBLISHED.fetch_add(1, Ordering::Relaxed);
    }

    /// The program being fetched.
    pub fn program(&self) -> &Arc<Program> {
        self.machine.program()
    }

    /// Whether fetch is currently on a mispredicted path.
    pub fn on_wrong_path(&self) -> bool {
        self.wrong.is_some()
    }

    /// Whether the oracle has executed a `Halt`.
    pub fn is_halted(&self) -> bool {
        self.machine.is_halted()
    }

    /// Delivers the next micro-op in fetch order (wrong path if active).
    pub fn next_uop(&mut self) -> DynUop {
        if let Some(wp) = &mut self.wrong {
            return wp.step(self.machine.memory());
        }
        debug_assert!(self.cursor >= self.base_seq);
        let idx = (self.cursor - self.base_seq) as usize;
        if idx < self.buf.len() {
            // Replay after a flush.
            let uop = self.buf[idx].uop.clone();
            self.cursor += 1;
            return uop;
        }
        debug_assert_eq!(self.cursor, self.machine.next_seq().0);
        let pos = self.cursor as usize;
        let replayable = matches!(&self.cached, Some(steps) if pos < steps.len());
        let uop = if replayable {
            // Cache hit: apply the recorded step's effects to the oracle
            // machine (keeping its state byte-identical to a live decode)
            // and hand out the recorded µ-op.
            let steps = self.cached.as_ref().expect("checked above");
            let step = &steps[pos];
            self.machine.replay_step(step);
            self.replays += 1;
            step.uop.clone()
        } else {
            let was_halted = self.machine.is_halted();
            if !was_halted && self.rec.is_none() {
                if let Some(steps) = &self.cached {
                    if pos == steps.len() {
                        // Ran off the end of the cached prefix (this run
                        // speculates deeper than the one that recorded it).
                        // Resume recording on top of the prefix so the
                        // longer stream replaces the cached one on publish
                        // and the next warm run never decodes this tail.
                        self.rec = Some(steps.as_ref().clone());
                    }
                }
            }
            let step = self.machine.step_traced();
            if was_halted {
                // Post-halt Nop spins decode nothing and are never recorded:
                // the cached stream ends at the halting step and a warm
                // replay regenerates the spins from the halted machine.
                self.rec = None;
            } else {
                self.decodes += 1;
                if let Some(rec) = self.rec.as_mut() {
                    debug_assert_eq!(rec.len() as u64, step.uop.seq.0);
                    rec.push(step.clone());
                    if step.halted || rec.len() >= RECORD_CAP {
                        self.publish_recording();
                    }
                }
            }
            step.uop
        };
        let fork = uop.branch.map(|b| {
            // Capture post-branch state so this branch can later fork either
            // direction (actual target for replay bookkeeping; the core
            // overrides the start index with the predicted one).
            Box::new(self.machine.fork_state(b.next_sidx))
        });
        self.buf.push_back(BufEntry {
            uop: uop.clone(),
            fork,
        });
        self.cursor += 1;
        uop
    }

    /// Enters the wrong path after the (correct-path) branch `branch_seq`,
    /// starting at static index `predicted_sidx`. Subsequent [`Self::next_uop`]
    /// calls yield genuinely executed wrong-path micro-ops numbered from
    /// `branch_seq + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `branch_seq` is not a buffered branch.
    pub fn mispredict_fork(&mut self, branch_seq: SeqNum, predicted_sidx: u32) {
        let idx = branch_seq
            .0
            .checked_sub(self.base_seq)
            .expect("branch older than retire point") as usize;
        let entry = self
            .buf
            .get(idx)
            .unwrap_or_else(|| panic!("branch {branch_seq} not buffered"));
        let mut state = entry
            .fork
            .as_deref()
            .cloned()
            .unwrap_or_else(|| panic!("{branch_seq} is not a branch"));
        let max = self.program().len() as u32 - 1;
        state.ip = predicted_sidx.min(max);
        self.wrong = Some(WrongPath::new(
            Arc::clone(self.machine.program()),
            state,
            branch_seq.next(),
        ));
    }

    /// Recovers fetch to the correct path at `next_seq` after a squash
    /// (branch misprediction: `branch_seq + 1`; commit-time trap: the
    /// faulting micro-op's own sequence number, which is then re-fetched).
    ///
    /// # Panics
    ///
    /// Panics if `next_seq` predates the retire point.
    pub fn recover_to(&mut self, next_seq: SeqNum) {
        assert!(
            next_seq.0 >= self.base_seq,
            "cannot recover to retired seq {next_seq} (base {})",
            self.base_seq
        );
        self.wrong = None;
        self.cursor = next_seq.0;
    }

    /// Releases replay state for micro-ops with `seq < upto` (they have
    /// committed and can never be re-fetched).
    pub fn retire_upto(&mut self, upto: SeqNum) {
        while self.base_seq < upto.0 && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base_seq += 1;
        }
    }

    /// Number of buffered (un-retired) correct-path micro-ops.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

impl Drop for FetchStream {
    fn drop(&mut self) {
        // A stream dropped mid-program still publishes its prefix: later
        // streams replay it and continue live from the exact machine state.
        self.publish_recording();
        ORACLE_DECODES.fetch_add(self.decodes, Ordering::Relaxed);
        REPLAYED_UOPS.fetch_add(self.replays, Ordering::Relaxed);
    }
}

impl regshare_types::snapshot::Snapshot for FetchStream {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.machine.save_state(w);
        w.put_len(self.buf.len());
        for entry in &self.buf {
            entry.uop.encode(w);
            entry.fork.encode(w);
        }
        w.put_u64(self.base_seq);
        w.put_u64(self.cursor);
        match &self.wrong {
            None => w.put_u8(0),
            Some(wp) => {
                w.put_u8(1);
                wp.save_state(w);
            }
        }
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        self.machine.load_state(r)?;
        let len = r.get_len()?;
        self.buf.clear();
        for _ in 0..len {
            let uop = DynUop::decode(r)?;
            let fork = Snap::decode(r)?;
            self.buf.push_back(BufEntry { uop, fork });
        }
        self.base_seq = r.get_u64()?;
        self.cursor = r.get_u64()?;
        self.wrong = match r.get_u8()? {
            0 => None,
            1 => Some(WrongPath::decode_with(
                Arc::clone(self.machine.program()),
                r,
            )?),
            _ => return Err(r.corrupt("FetchStream wrong-path tag")),
        };
        // The machine just jumped to an arbitrary point, so anything recorded
        // so far is no longer a cold-start prefix. Replay from `cached` stays
        // valid — it is indexed by absolute sequence number and oracle state
        // at a given seq is unique.
        self.rec = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Cond, Op, Operand};
    use crate::program::ProgramBuilder;
    use regshare_types::ArchReg;

    fn r(i: usize) -> ArchReg {
        ArchReg::int(i)
    }

    /// Alternating-taken loop: r0 toggles between 0 and 1.
    fn toggle_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        // 0: r0 ^= 1
        b.push(Op::IntAlu {
            op: AluOp::Xor,
            dst: r(0),
            src1: r(0),
            src2: Operand::Imm(1),
        });
        // 1: if r0 bit set goto 3
        b.push(Op::CondBranch {
            cond: Cond::BitSet,
            src1: r(0),
            src2: Operand::Imm(0),
            target: 3,
        });
        // 2: r1 += 2
        b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(1),
            src1: r(1),
            src2: Operand::Imm(2),
        });
        // 3: r2 += 1 ; 4: jump 0
        b.push(Op::IntAlu {
            op: AluOp::Add,
            dst: r(2),
            src1: r(2),
            src2: Operand::Imm(1),
        });
        b.push(Op::Jump { target: 0 });
        Arc::new(b.build())
    }

    #[test]
    fn sequential_delivery_is_program_order() {
        let mut fs = FetchStream::new(toggle_program());
        let seqs: Vec<u64> = (0..20).map(|_| fs.next_uop().seq.0).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn replay_after_recover_yields_identical_uops() {
        let mut fs = FetchStream::new(toggle_program());
        let first: Vec<DynUop> = (0..10).map(|_| fs.next_uop()).collect();
        fs.recover_to(first[4].seq);
        for want in &first[4..] {
            let got = fs.next_uop();
            assert_eq!(got.seq, want.seq);
            assert_eq!(got.sidx, want.sidx);
            assert_eq!(got.result, want.result);
        }
        // Continues seamlessly past the previously fetched region.
        assert_eq!(fs.next_uop().seq.0, 10);
    }

    #[test]
    fn wrong_path_fork_and_recovery() {
        let mut fs = FetchStream::new(toggle_program());
        // Find the first conditional branch.
        let br = loop {
            let u = fs.next_uop();
            if let Some(b) = u.branch {
                if b.kind == crate::op::BranchKind::Conditional {
                    break u;
                }
            }
        };
        let b = br.branch.unwrap();
        let wrong_sidx = if b.taken { b.fallthrough_sidx } else { 3 };
        fs.mispredict_fork(br.seq, wrong_sidx);
        assert!(fs.on_wrong_path());
        let w1 = fs.next_uop();
        assert!(w1.wrong_path);
        assert_eq!(w1.seq, br.seq.next());
        assert_eq!(w1.sidx, wrong_sidx);
        let _w2 = fs.next_uop();
        // Resolve: recover to the correct path.
        fs.recover_to(br.seq.next());
        assert!(!fs.on_wrong_path());
        let c = fs.next_uop();
        assert!(!c.wrong_path);
        assert_eq!(c.seq, br.seq.next());
        assert_eq!(c.sidx, b.next_sidx);
    }

    #[test]
    fn retire_prunes_buffer() {
        let mut fs = FetchStream::new(toggle_program());
        for _ in 0..50 {
            fs.next_uop();
        }
        assert_eq!(fs.buffered(), 50);
        fs.retire_upto(SeqNum(30));
        assert_eq!(fs.buffered(), 20);
        // Can still recover to un-retired seqs.
        fs.recover_to(SeqNum(30));
        assert_eq!(fs.next_uop().seq.0, 30);
    }

    #[test]
    #[should_panic]
    fn recover_before_retire_point_panics() {
        let mut fs = FetchStream::new(toggle_program());
        for _ in 0..10 {
            fs.next_uop();
        }
        fs.retire_upto(SeqNum(5));
        fs.recover_to(SeqNum(3));
    }

    #[test]
    fn debug_format_mentions_state() {
        let fs = FetchStream::new(toggle_program());
        let s = format!("{fs:?}");
        assert!(s.contains("FetchStream"));
    }
}

//! The listener: accepts connections, speaks the protocol, drives the
//! engine. One thread per connection (connections are long-lived and
//! few; the *cells* are what fan out, and those go through the engine's
//! bounded worker pool, not through connection threads).

use crate::engine::{Engine, Format, ServeError};
use crate::protocol::{error_kind, read_request, write_err, write_ok, write_response, Request};
use regshare_bench::Scenario;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn split(self) -> std::io::Result<(Conn, Conn)> {
        match self {
            Conn::Tcp(s) => {
                let r = s.try_clone()?;
                Ok((Conn::Tcp(r), Conn::Tcp(s)))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let r = s.try_clone()?;
                Ok((Conn::Unix(r), Conn::Unix(s)))
            }
        }
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl std::io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound daemon. [`Server::run`] blocks until a client sends
/// `shutdown`.
pub struct Server {
    listener: Listener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    /// The address [`Server::wake`] reconnects to — for TCP this is the
    /// *resolved* address, so binding port 0 still works.
    addr: String,
    /// A Unix socket path to unlink when the server stops.
    #[cfg_attr(not(unix), allow(dead_code))]
    cleanup: Option<String>,
}

/// Whether `addr` names a Unix socket path (contains `/`) rather than a
/// TCP `host:port`.
pub fn is_unix_addr(addr: &str) -> bool {
    addr.contains('/')
}

impl Server {
    /// Binds `addr`: a `host:port` TCP address, or (on Unix) a
    /// filesystem path — anything containing `/` — for a Unix-domain
    /// socket. A stale socket file from a crashed daemon is replaced.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        if is_unix_addr(addr) {
            #[cfg(unix)]
            {
                // Only unlink if nothing is listening: a live daemon on
                // the same path is an error, not a takeover.
                if std::path::Path::new(addr).exists() {
                    if UnixStream::connect(addr).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("a daemon is already listening on {addr}"),
                        ));
                    }
                    std::fs::remove_file(addr)?;
                }
                let listener = UnixListener::bind(addr)?;
                return Ok(Server {
                    listener: Listener::Unix(listener),
                    engine,
                    stop: Arc::new(AtomicBool::new(false)),
                    addr: addr.to_string(),
                    cleanup: Some(addr.to_string()),
                });
            }
            #[cfg(not(unix))]
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "unix socket paths are not supported on this platform",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let resolved = listener.local_addr()?.to_string();
        Ok(Server {
            listener: Listener::Tcp(listener),
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            addr: resolved,
            cleanup: None,
        })
    }

    /// The bound address — the resolved `host:port` for TCP (useful
    /// after binding port 0), the socket path for Unix.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// A handle that stops the server from another thread (used by the
    /// in-process tests; clients use the `shutdown` command).
    pub fn stop_handle(&self) -> ServerStop {
        ServerStop {
            stop: Arc::clone(&self.stop),
            addr: self.addr.clone(),
        }
    }

    /// Accept loop. Returns when `shutdown` is received (or the stop
    /// handle fires). Connection threads are detached: the daemon does
    /// not wait for idle clients to hang up before stopping — the
    /// client that asked for shutdown has its reply by then, and
    /// dropping the engine afterwards drains the simulation pool.
    pub fn run(self) -> std::io::Result<()> {
        loop {
            let conn = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let conn = match conn {
                Ok(conn) => conn,
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    continue;
                }
            };
            let engine = Arc::clone(&self.engine);
            let stop = ServerStop {
                stop: Arc::clone(&self.stop),
                addr: self.addr.clone(),
            };
            std::thread::spawn(move || {
                if let Err(e) = serve_connection(conn, &engine, &stop) {
                    // A peer vanishing mid-request is routine, not fatal.
                    eprintln!("serve: connection ended: {e}");
                }
            });
        }
        #[cfg(unix)]
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Stops a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerStop {
    stop: Arc<AtomicBool>,
    addr: String,
}

impl ServerStop {
    /// Flags the server to stop and wakes its accept loop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        #[cfg(unix)]
        if is_unix_addr(&self.addr) {
            let _ = UnixStream::connect(&self.addr);
            return;
        }
        let _ = TcpStream::connect(&self.addr);
    }
}

fn serve_connection(conn: Conn, engine: &Engine, stop: &ServerStop) -> std::io::Result<()> {
    let (read_half, mut w) = conn.split()?;
    let mut r = BufReader::new(read_half);
    loop {
        let req = match read_request(&mut r) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                write_err(&mut w, "protocol", &e.to_string())?;
                continue;
            }
            Err(e) => return Err(e),
        };
        match req {
            Request::Quit => return Ok(()),
            Request::Ping => write_ok(&mut w, "pong", "")?,
            Request::Stats => {
                let body = format!(
                    "requests {}\ncomputed_cells {}\ncache_hits {}\ncache_entries {}\n",
                    engine.requests(),
                    engine.computed_cells(),
                    engine.cache_hits(),
                    engine.cache().len().unwrap_or(0),
                );
                write_ok(&mut w, "stats", &body)?;
            }
            Request::Shutdown => {
                write_ok(&mut w, "bye", "")?;
                stop.stop();
                return Ok(());
            }
            Request::Run {
                format,
                scenario_text,
            } => match run_request(engine, &scenario_text, format) {
                Ok(resp) => write_response(&mut w, &resp)?,
                Err(e) => write_err(&mut w, error_kind(&e), &e.to_string())?,
            },
        }
    }
}

fn run_request(
    engine: &Engine,
    scenario_text: &str,
    format: Format,
) -> Result<crate::engine::ServeResponse, ServeError> {
    let scenario = Scenario::parse(scenario_text)?;
    engine.submit(&scenario, format)
}

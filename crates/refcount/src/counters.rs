//! The conventional per-register reference counter scheme (§1, §4.2) —
//! the baseline the paper argues against.
//!
//! One up/down counter per physical register: incremented on allocation and
//! on every additional mapping, decremented on reclaim. Counters **cannot be
//! checkpointed** (a counter may have been decremented by an instruction
//! older than the checkpoint), so misprediction recovery must *walk the
//! squashed instructions sequentially* and undo their increments — the
//! recovery-latency cost modelled by [`PerRegCounters::recovery_stall_cycles`].

use crate::tracker::{
    CheckpointId, ReclaimDecision, ReclaimRequest, ShareRequest, SharingTracker, StorageReport,
    TrackerStats,
};
use regshare_types::{PhysReg, RegClass};

/// Per-register counter tracker with walk-based recovery.
///
/// # Examples
///
/// ```
/// use regshare_refcount::{PerRegCounters, SharingTracker};
/// use regshare_types::{PhysReg, RegClass};
///
/// let mut t = PerRegCounters::new(256, 8);
/// t.on_alloc(RegClass::Int, PhysReg::new(3));
/// // Squashing 40 µ-ops at 8/cycle costs 5 stall cycles:
/// assert_eq!(t.recovery_stall_cycles(40), 5);
/// ```
#[derive(Debug)]
pub struct PerRegCounters {
    counts: [Vec<u32>; 2],
    walk_width: usize,
    stats: TrackerStats,
    #[cfg(debug_assertions)]
    trace: std::collections::HashMap<(usize, usize), Vec<&'static str>>,
}

impl PerRegCounters {
    /// Creates counters for `pregs_per_class` registers per class, with a
    /// squash walk that can undo `walk_width` µ-ops per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `walk_width == 0`.
    pub fn new(pregs_per_class: usize, walk_width: usize) -> PerRegCounters {
        assert!(walk_width > 0, "walk width must be positive");
        PerRegCounters {
            counts: [vec![0; pregs_per_class], vec![0; pregs_per_class]],
            walk_width,
            stats: TrackerStats::default(),
            #[cfg(debug_assertions)]
            trace: std::collections::HashMap::new(),
        }
    }

    #[inline]
    fn count_mut(&mut self, class: RegClass, preg: PhysReg) -> &mut u32 {
        &mut self.counts[class.index()][preg.index()]
    }

    #[cfg(debug_assertions)]
    fn note(&mut self, class: RegClass, preg: PhysReg, what: &'static str) {
        let v = self.trace.entry((class.index(), preg.index())).or_default();
        v.push(what);
        if v.len() > 16 {
            v.remove(0);
        }
    }
    #[cfg(not(debug_assertions))]
    fn note(&mut self, _c: RegClass, _p: PhysReg, _w: &'static str) {}
}

impl SharingTracker for PerRegCounters {
    fn name(&self) -> &'static str {
        "per-reg-counters"
    }

    fn on_alloc(&mut self, class: RegClass, preg: PhysReg) {
        self.note(class, preg, "alloc");
        let cv = self.counts[class.index()][preg.index()];
        #[cfg(debug_assertions)]
        if cv != 0 {
            panic!(
                "allocating still-referenced {class} {preg} (count {cv}): {:?}",
                self.trace.get(&(class.index(), preg.index()))
            );
        }
        let _ = cv;
        *self.count_mut(class, preg) = 1;
    }

    fn try_share(&mut self, req: &ShareRequest) -> bool {
        self.note(req.class, req.preg, "share");
        *self.count_mut(req.class, req.preg) += 1;
        self.stats.shares_accepted += 1;
        let live = self.shared_count();
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(live);
        true
    }

    fn on_reclaim(&mut self, req: &ReclaimRequest) -> ReclaimDecision {
        self.note(req.class, req.preg, "reclaim");
        self.stats.reclaims += 1;
        #[cfg(debug_assertions)]
        if self.counts[req.class.index()][req.preg.index()] == 0 {
            panic!(
                "over-reclaim of {} {}: {:?}",
                req.class,
                req.preg,
                self.trace.get(&(req.class.index(), req.preg.index()))
            );
        }
        let c = self.count_mut(req.class, req.preg);
        debug_assert!(*c > 0, "reclaiming a free register");
        *c = c.saturating_sub(1);
        if *c == 0 {
            ReclaimDecision::Free
        } else {
            self.stats.reclaim_cam_hits += 1;
            ReclaimDecision::Keep
        }
    }

    fn checkpoint(&mut self) -> CheckpointId {
        // Counters cannot be checkpointed; recovery is walk-based.
        self.stats.checkpoints_taken += 1;
        0
    }

    fn restore(&mut self, _id: CheckpointId, _freed: &mut Vec<(RegClass, PhysReg)>) {
        // State repair happens through on_squash_uop during the walk.
        self.stats.restores += 1;
    }

    fn release_checkpoint(&mut self, _id: CheckpointId) {}

    fn restore_to_committed(&mut self, _freed: &mut Vec<(RegClass, PhysReg)>) {
        self.stats.restores += 1;
    }

    fn on_squash_share(&mut self, class: RegClass, preg: PhysReg) -> Option<(RegClass, PhysReg)> {
        self.note(class, preg, "squash-share");
        let v = self.count_mut(class, preg);
        debug_assert!(*v > 0, "squashing a share of a free register");
        *v = v.saturating_sub(1);
        if *v == 0 {
            // The original mapping was already reclaimed by a committed
            // instruction: the register would otherwise leak.
            Some((class, preg))
        } else {
            None
        }
    }

    fn on_squash_alloc(&mut self, class: RegClass, preg: PhysReg) {
        self.note(class, preg, "squash-alloc");
        let v = self.count_mut(class, preg);
        *v = v.saturating_sub(1);
    }

    fn recovery_stall_cycles(&self, squashed_uops: usize) -> u64 {
        squashed_uops.div_ceil(self.walk_width) as u64
    }

    fn storage(&self) -> StorageReport {
        // 4-bit counter per register (must count allocation + sharers).
        let regs = self.counts[0].len() + self.counts[1].len();
        StorageReport {
            main_bits: regs * 4,
            per_checkpoint_bits: 0,
        }
    }

    fn is_shared(&self, class: RegClass, preg: PhysReg) -> bool {
        self.counts[class.index()][preg.index()] >= 2
    }

    fn shared_count(&self) -> usize {
        self.counts.iter().flatten().filter(|&&c| c >= 2).count()
    }

    fn stats(&self) -> TrackerStats {
        self.stats
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.counts[0].encode(w);
        self.counts[1].encode(w);
        self.stats.encode(w);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let int: Vec<u32> = Snap::decode(r)?;
        let fp: Vec<u32> = Snap::decode(r)?;
        if int.len() != self.counts[0].len() || fp.len() != self.counts[1].len() {
            return Err(r.corrupt("PerRegCounters table size"));
        }
        self.counts = [int, fp];
        self.stats = Snap::decode(r)?;
        // The debug trace only explains counts accumulated in this process;
        // restored counts have no in-process history.
        #[cfg(debug_assertions)]
        self.trace.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::ShareKind;
    use regshare_types::ArchReg;

    fn share(p: usize) -> ShareRequest {
        ShareRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            kind: ShareKind::Bypass {
                arch_dst: ArchReg::int(0),
            },
        }
    }

    fn reclaim(p: usize) -> ReclaimRequest {
        ReclaimRequest {
            class: RegClass::Int,
            preg: PhysReg::new(p),
            arch: ArchReg::int(0),
            renews: false,
        }
    }

    #[test]
    fn alloc_share_reclaim_lifecycle() {
        let mut t = PerRegCounters::new(16, 8);
        t.on_alloc(RegClass::Int, PhysReg::new(1));
        assert!(!t.is_shared(RegClass::Int, PhysReg::new(1)));
        assert!(t.try_share(&share(1)));
        assert!(t.is_shared(RegClass::Int, PhysReg::new(1)));
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Keep);
        assert_eq!(t.on_reclaim(&reclaim(1)), ReclaimDecision::Free);
    }

    #[test]
    fn squash_walk_undoes_wrong_path_work() {
        let mut t = PerRegCounters::new(16, 8);
        t.on_alloc(RegClass::Int, PhysReg::new(2));
        t.try_share(&share(2)); // wrong-path share
        assert_eq!(t.on_squash_share(RegClass::Int, PhysReg::new(2)), None);
        // Back to a single reference: one reclaim frees.
        assert_eq!(t.on_reclaim(&reclaim(2)), ReclaimDecision::Free);
    }

    #[test]
    fn share_squash_after_reclaim_frees_the_register() {
        // The paper's Figure 3 situation, counter-style: the overwrite of
        // the original mapping commits while a wrong-path share is live.
        let mut t = PerRegCounters::new(16, 8);
        t.on_alloc(RegClass::Int, PhysReg::new(3));
        t.try_share(&share(3)); // wrong-path share (count 2)
        assert_eq!(t.on_reclaim(&reclaim(3)), ReclaimDecision::Keep); // count 1

        // Squash walk must report the register as freeable.
        assert_eq!(
            t.on_squash_share(RegClass::Int, PhysReg::new(3)),
            Some((RegClass::Int, PhysReg::new(3)))
        );
    }

    #[test]
    fn walk_cost_scales_with_squash_size() {
        let t = PerRegCounters::new(16, 8);
        assert_eq!(t.recovery_stall_cycles(0), 0);
        assert_eq!(t.recovery_stall_cycles(1), 1);
        assert_eq!(t.recovery_stall_cycles(8), 1);
        assert_eq!(t.recovery_stall_cycles(9), 2);
        assert_eq!(t.recovery_stall_cycles(192), 24);
    }

    #[test]
    fn storage_has_no_checkpoint_component() {
        let t = PerRegCounters::new(256, 8);
        let s = t.storage();
        assert_eq!(s.per_checkpoint_bits, 0);
        assert_eq!(s.main_bits, 512 * 4);
    }
}

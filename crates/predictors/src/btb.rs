//! Branch target buffer: set-associative target cache.

use regshare_types::hasher::mix64;
use regshare_types::Addr;

/// One BTB entry: a (partial-tagged) branch PC and its last target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    tag: u32,
    /// Predicted target (static instruction index).
    pub target_sidx: u32,
    /// LRU timestamp.
    lru: u64,
    valid: bool,
}

/// A set-associative branch target buffer (Table 1: 2-way, 4K entries).
///
/// # Examples
///
/// ```
/// use regshare_predictors::Btb;
/// let mut btb = Btb::new(1024, 2);
/// assert_eq!(btb.lookup(0x400100), None);
/// btb.update(0x400100, 7);
/// assert_eq!(btb.lookup(0x400100), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<BtbEntry>,
    ways: usize,
    set_count: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways`, or either is zero.
    pub fn new(entries: usize, ways: usize) -> Btb {
        assert!(entries > 0 && ways > 0 && entries.is_multiple_of(ways));
        let set_count = entries / ways;
        Btb {
            sets: vec![
                BtbEntry {
                    tag: 0,
                    target_sidx: 0,
                    lru: 0,
                    valid: false
                };
                entries
            ],
            ways,
            set_count,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, pc: Addr) -> (usize, u32) {
        let h = mix64(pc);
        ((h as usize) % self.set_count, (h >> 32) as u32)
    }

    /// Looks up the predicted target for `pc`, updating LRU and hit stats.
    pub fn lookup(&mut self, pc: Addr) -> Option<u32> {
        let (set, tag) = self.set_and_tag(pc);
        self.tick += 1;
        let base = set * self.ways;
        for e in &mut self.sets[base..base + self.ways] {
            if e.valid && e.tag == tag {
                e.lru = self.tick;
                self.hits += 1;
                return Some(e.target_sidx);
            }
        }
        self.misses += 1;
        None
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: Addr, target_sidx: u32) {
        let (set, tag) = self.set_and_tag(pc);
        self.tick += 1;
        let base = set * self.ways;
        // Hit: update in place.
        if let Some(e) = self.sets[base..base + self.ways]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
        {
            e.target_sidx = target_sidx;
            e.lru = self.tick;
            return;
        }
        // Miss: fill invalid or LRU way.
        let tick = self.tick;
        let victim = self.sets[base..base + self.ways]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("non-zero ways");
        *victim = BtbEntry {
            tag,
            target_sidx,
            lru: tick,
            valid: true,
        };
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

regshare_types::impl_snap!(BtbEntry {
    tag,
    target_sidx,
    lru,
    valid
});

impl regshare_types::snapshot::Snapshot for Btb {
    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        self.sets.encode(w);
        w.put_u64(self.tick);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }
    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let sets: Vec<BtbEntry> = Snap::decode(r)?;
        if sets.len() != self.sets.len() {
            return Err(r.corrupt("Btb table size"));
        }
        self.sets = sets;
        self.tick = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup() {
        let mut btb = Btb::new(64, 2);
        btb.update(0x1000, 42);
        assert_eq!(btb.lookup(0x1000), Some(42));
        btb.update(0x1000, 43);
        assert_eq!(btb.lookup(0x1000), Some(43));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Single-set BTB to force conflicts.
        let mut btb = Btb::new(2, 2);
        btb.update(0x10, 1);
        btb.update(0x20, 2);
        let _ = btb.lookup(0x10); // make 0x10 MRU
        btb.update(0x30, 3); // evicts 0x20
        assert_eq!(btb.lookup(0x10), Some(1));
        assert_eq!(btb.lookup(0x30), Some(3));
        assert_eq!(btb.lookup(0x20), None);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut btb = Btb::new(16, 2);
        let _ = btb.lookup(0x99);
        btb.update(0x99, 5);
        let _ = btb.lookup(0x99);
        let (h, m) = btb.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Btb::new(3, 2);
    }
}

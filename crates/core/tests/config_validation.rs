//! Every structurally impossible configuration the builder must reject,
//! and the exact typed error it must reject it with. Before validation
//! existed these configs silently deadlocked the simulator or modelled
//! machines that cannot exist.

use regshare_core::{ConfigError, CoreConfig, TrackerKind};
use regshare_refcount::IsrbConfig;

#[test]
fn table1_machine_is_valid() {
    assert_eq!(CoreConfig::hpca16().validate(), Ok(()));
    assert_eq!(CoreConfig::hpca16().with_me().with_smb().validate(), Ok(()));
}

#[test]
fn builder_accepts_every_paper_design_point() {
    for entries in [0, 8, 16, 24, 32] {
        let cfg = CoreConfig::builder()
            .move_elimination(true)
            .smb(true)
            .isrb_entries(entries)
            .build()
            .expect("paper design point");
        cfg.validate().expect("built configs are valid");
    }
}

#[test]
fn zero_widths_are_rejected_with_the_field_name() {
    for (field, f) in [
        (
            "frontend_width",
            Box::new(|c: &mut CoreConfig| c.frontend_width = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "issue_width",
            Box::new(|c: &mut CoreConfig| c.issue_width = 0),
        ),
        (
            "commit_width",
            Box::new(|c: &mut CoreConfig| c.commit_width = 0),
        ),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroWidth(field));
        assert!(err.to_string().contains(field), "message names the field");
    }
}

#[test]
fn empty_windows_are_rejected_with_the_field_name() {
    for (field, f) in [
        (
            "rob_entries",
            Box::new(|c: &mut CoreConfig| c.rob_entries = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "iq_entries",
            Box::new(|c: &mut CoreConfig| c.iq_entries = 0),
        ),
        (
            "lq_entries",
            Box::new(|c: &mut CoreConfig| c.lq_entries = 0),
        ),
        (
            "sq_entries",
            Box::new(|c: &mut CoreConfig| c.sq_entries = 0),
        ),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroCapacity(field));
    }
}

#[test]
fn zero_functional_units_are_rejected() {
    for (field, f) in [
        (
            "alu_units",
            Box::new(|c: &mut CoreConfig| c.alu_units = 0) as Box<dyn Fn(&mut CoreConfig)>,
        ),
        (
            "muldiv_units",
            Box::new(|c: &mut CoreConfig| c.muldiv_units = 0),
        ),
        ("fp_units", Box::new(|c: &mut CoreConfig| c.fp_units = 0)),
        (
            "fpmuldiv_units",
            Box::new(|c: &mut CoreConfig| c.fpmuldiv_units = 0),
        ),
        ("mem_ports", Box::new(|c: &mut CoreConfig| c.mem_ports = 0)),
    ] {
        let err = CoreConfig::builder().tweak(&*f).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroUnits(field));
    }
}

#[test]
fn prf_must_cover_the_architectural_registers() {
    // 16 architectural registers per class: 16 pregs leaves rename no
    // destination to allocate, 17 is the floor.
    let err = CoreConfig::builder()
        .pregs_per_class(16)
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::PrfTooSmall { pregs: 16, min: 17 });
    // (unlimited ISRB: a 32-entry ISRB over a 17-register PRF would trip
    // the IsrbExceedsPrf check first)
    assert!(CoreConfig::builder()
        .pregs_per_class(17)
        .isrb_entries(0)
        .build()
        .is_ok());
}

#[test]
fn isrb_larger_than_prf_is_rejected() {
    let err = CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(65)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::IsrbExceedsPrf {
            entries: 65,
            pregs: 64
        }
    );
    // entries == pregs is the degenerate-but-legal maximum, and 0 means
    // unlimited rather than "zero entries".
    assert!(CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(64)
        .build()
        .is_ok());
    assert!(CoreConfig::builder()
        .pregs_per_class(64)
        .isrb_entries(0)
        .build()
        .is_ok());
}

#[test]
fn isrb_counter_width_must_fit_a_checkpointable_counter() {
    for bits in [0u32, 32, 64] {
        let err = CoreConfig::builder()
            .tracker(TrackerKind::Isrb(IsrbConfig {
                counter_bits: bits,
                ..IsrbConfig::hpca16()
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::CounterBitsOutOfRange {
                tracker: "isrb",
                bits
            }
        );
    }
    for bits in [1u32, 3, 31] {
        assert!(CoreConfig::builder()
            .tracker(TrackerKind::Isrb(IsrbConfig {
                counter_bits: bits,
                ..IsrbConfig::hpca16()
            }))
            .build()
            .is_ok());
    }
}

#[test]
fn zero_walk_width_is_rejected() {
    let err = CoreConfig::builder()
        .tracker(TrackerKind::PerRegCounters { walk_width: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroWalkWidth);
}

#[test]
fn empty_associative_trackers_are_rejected() {
    let err = CoreConfig::builder()
        .tracker(TrackerKind::Mit { entries: 0 })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroTrackerEntries("mit"));

    let err = CoreConfig::builder()
        .tracker(TrackerKind::Rda {
            entries: 0,
            counter_bits: 3,
        })
        .build()
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroTrackerEntries("rda"));

    let err = CoreConfig::builder()
        .tracker(TrackerKind::Rda {
            entries: 32,
            counter_bits: 0,
        })
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::CounterBitsOutOfRange {
            tracker: "rda",
            bits: 0
        }
    );
}

#[test]
fn config_error_implements_std_error() {
    let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroWalkWidth);
    assert!(!err.to_string().is_empty());
}

//! Build a custom program against the public micro-op ISA and run it
//! through the full machine.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use regshare::core::{CoreConfig, Simulator};
use regshare::isa::op::{AluOp, Cond, MoveWidth, Op, Operand};
use regshare::isa::program::ProgramBuilder;
use regshare::types::ArchReg;

fn main() {
    // A spill/reload loop with a register move — the two patterns the
    // paper's optimizations target, hand-written.
    let mut b = ProgramBuilder::new();
    let (ptr, val, tmp, acc) = (
        ArchReg::int(4),
        ArchReg::int(8),
        ArchReg::int(9),
        ArchReg::int(15),
    );
    b.push(Op::LoadImm {
        dst: ptr,
        imm: 0x2000_0000,
    });
    b.push(Op::LoadImm { dst: val, imm: 1 });
    let top = b.here();
    // Produce, spill, reload, consume.
    b.push(Op::IntAlu {
        op: AluOp::Add,
        dst: val,
        src1: val,
        src2: Operand::Imm(3),
    });
    b.push(Op::Store {
        data: val,
        base: ptr,
        offset: 0,
        size: 8,
    });
    b.push(Op::IntAlu {
        op: AluOp::Xor,
        dst: tmp,
        src1: acc,
        src2: Operand::Imm(5),
    });
    b.push(Op::Load {
        dst: tmp,
        base: ptr,
        offset: 0,
        size: 8,
    });
    // An eliminable 64-bit move (and a merge move ME must skip).
    b.push(Op::MovInt {
        dst: acc,
        src: tmp,
        width: MoveWidth::W64,
    });
    b.push(Op::MovInt {
        dst: tmp,
        src: acc,
        width: MoveWidth::W16,
    });
    b.push(Op::CondBranch {
        cond: Cond::Ne,
        src1: val,
        src2: Operand::Imm(0),
        target: top,
    });
    b.push(Op::Halt);
    let program = b.build();

    let mut sim = Simulator::new(&program, CoreConfig::hpca16().with_me().with_smb());
    let stats = sim.run(50_000);
    println!("IPC {:.3} over {} µ-ops", stats.ipc(), stats.committed);
    println!("moves eliminated: {}", stats.moves_eliminated);
    println!(
        "loads bypassed:   {} ({:.1}%)",
        stats.loads_bypassed,
        stats.pct_loads_bypassed()
    );
    println!("stlf forwards:    {}", stats.stlf_forwards);
    sim.audit_registers().expect("register accounting is sound");
    println!("register audit passed ✓");
}

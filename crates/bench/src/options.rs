//! Run options: the one documented, programmatic knob set for warmup /
//! measurement window sizes and sweep parallelism.
//!
//! Historically these three knobs were side-channel environment variables
//! (`REGSHARE_WARMUP`, `REGSHARE_MEASURE`, `REGSHARE_JOBS`) parsed
//! independently by the harness and the sweep engine. [`RunOptions`] absorbs
//! them into one type that scenario files and CLIs set explicitly; the
//! environment variables remain as **deprecated fallbacks** — an unset
//! option still honours them — and will be removed once nothing depends on
//! them. The fallbacks are read from the environment **once per process**
//! and frozen ([`env_fallbacks`]), so long-lived processes (the serve
//! daemon) can never observe a mid-run environment mutation. Resolution
//! order for each knob:
//!
//! 1. the explicit [`RunOptions`] value (scenario file or CLI flag),
//! 2. the deprecated environment variable,
//! 3. the built-in default (60 000 warmup / 240 000 measured µ-ops,
//!    all available cores).

use crate::harness::RunWindow;
use std::str::FromStr;

/// Parses an environment variable — the one `var → parse → default` helper
/// behind every deprecated `REGSHARE_*` fallback (the harness window and
/// the sweep engine's job count used to hand-roll this dance separately).
///
/// A *set but malformed* value (e.g. `REGSHARE_JOBS=lots`) falls back like
/// an unset one, but warns on stderr — once per variable, not once per
/// lookup — instead of silently ignoring what the user asked for. Unset
/// and empty values stay silent.
pub fn env_parse<T: FromStr>(key: &str) -> Option<T> {
    let raw = std::env::var(key).ok();
    let (value, malformed) = parse_flagged(raw.as_deref());
    if malformed {
        warn_once(key, raw.as_deref().unwrap_or(""));
    }
    value
}

/// The pure half of [`env_parse`]: trim and parse, reporting `(value,
/// malformed)` — `malformed` is true only for a non-empty value that fails
/// to parse. Kept separate so tests never have to mutate the process
/// environment, which is unsound under the parallel test harness.
fn parse_flagged<T: FromStr>(v: Option<&str>) -> (Option<T>, bool) {
    match v.map(str::trim) {
        None | Some("") => (None, false),
        Some(s) => match s.parse() {
            Ok(t) => (Some(t), false),
            Err(_) => (None, true),
        },
    }
}

/// Warns about a malformed environment value exactly once per variable.
fn warn_once(key: &str, raw: &str) {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if warned.insert(key.to_string()) {
        eprintln!(
            "regshare: ignoring malformed {key}={raw:?} (expected a number); \
             falling back to the default"
        );
    }
}

/// The deprecated `REGSHARE_WARMUP` / `REGSHARE_MEASURE` / `REGSHARE_JOBS`
/// fallbacks as a [`RunOptions`] overlay, resolved from the environment
/// **exactly once per process** (the first time any resolution needs them)
/// and frozen.
///
/// Every resolution path ([`RunOptions::window`], [`RunOptions::job_count`])
/// reads the environment through this snapshot, so a long-lived process —
/// the serve daemon in particular — can never observe a mid-run environment
/// mutation: whatever the variables said at startup is what every request
/// sees, forever. Short-lived binaries are unaffected (first use *is*
/// startup). A malformed value still warns once on stderr, at resolution
/// time.
pub fn env_fallbacks() -> RunOptions {
    use std::sync::OnceLock;
    static SNAPSHOT: OnceLock<RunOptions> = OnceLock::new();
    *SNAPSHOT.get_or_init(|| RunOptions {
        warmup: env_parse("REGSHARE_WARMUP"),
        measure: env_parse("REGSHARE_MEASURE"),
        jobs: env_parse::<usize>("REGSHARE_JOBS").filter(|&n| n > 0),
    })
}

/// Default warmup window (µ-ops) when neither options nor environment say
/// otherwise.
pub const DEFAULT_WARMUP: u64 = 60_000;
/// Default measured window (µ-ops).
pub const DEFAULT_MEASURE: u64 = 240_000;

/// Warmup / measurement window sizes and worker count for one experiment.
///
/// `None` fields defer to the deprecated environment variables and then to
/// the defaults, so a scenario file only pins what it cares about.
///
/// # Examples
///
/// ```
/// use regshare_bench::RunOptions;
///
/// let opts = RunOptions::default().warmup(1_000).measure(4_000).jobs(2);
/// let window = opts.window();
/// assert_eq!((window.warmup, window.measure), (1_000, 4_000));
/// assert_eq!(opts.job_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// µ-ops run before measurement starts (caches/predictors warm up).
    pub warmup: Option<u64>,
    /// µ-ops measured.
    pub measure: Option<u64>,
    /// Sweep worker threads.
    pub jobs: Option<usize>,
}

/// Typed rejection of a zero worker count — the shared error every front
/// door (`--jobs 0`, `jobs = 0` in a scenario file, [`RunOptions::try_jobs`])
/// reports instead of silently clamping or degenerating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroJobsError;

impl std::fmt::Display for ZeroJobsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jobs must be at least 1 (leave it unset for available parallelism)"
        )
    }
}

impl std::error::Error for ZeroJobsError {}

impl RunOptions {
    /// Sets the warmup window (µ-ops).
    pub fn warmup(mut self, uops: u64) -> Self {
        self.warmup = Some(uops);
        self
    }

    /// Sets the measured window (µ-ops).
    pub fn measure(mut self, uops: u64) -> Self {
        self.measure = Some(uops);
        self
    }

    /// Sets the sweep worker count (clamped to at least one). Prefer
    /// [`RunOptions::try_jobs`] where a zero can come from user input —
    /// it reports the zero instead of papering over it.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Sets the sweep worker count, rejecting zero with a typed error —
    /// the validating twin of [`RunOptions::jobs`] used by the CLI and the
    /// scenario parser.
    pub fn try_jobs(mut self, jobs: usize) -> Result<Self, ZeroJobsError> {
        if jobs == 0 {
            return Err(ZeroJobsError);
        }
        self.jobs = Some(jobs);
        Ok(self)
    }

    /// Overlays `self` on top of `base`: explicit fields win, unset fields
    /// fall through (CLI flags over scenario-file options, say).
    pub fn over(self, base: RunOptions) -> RunOptions {
        RunOptions {
            warmup: self.warmup.or(base.warmup),
            measure: self.measure.or(base.measure),
            jobs: self.jobs.or(base.jobs),
        }
    }

    /// Overlays `self` on top of the once-per-process [`env_fallbacks`]
    /// snapshot, yielding options whose deprecated-environment resolution
    /// has already happened. A long-lived daemon pins this at startup and
    /// threads the result through every request, so later environment
    /// mutation is invisible by construction.
    pub fn pin_env(self) -> RunOptions {
        self.over(env_fallbacks())
    }

    /// Resolves the measurement window, applying the deprecated
    /// `REGSHARE_WARMUP` / `REGSHARE_MEASURE` fallbacks (snapshotted once
    /// per process, see [`env_fallbacks`]) and then the defaults.
    pub fn window(&self) -> RunWindow {
        let env = env_fallbacks();
        RunWindow {
            warmup: self.warmup.or(env.warmup).unwrap_or(DEFAULT_WARMUP),
            measure: self.measure.or(env.measure).unwrap_or(DEFAULT_MEASURE),
        }
    }

    /// Resolves the worker count, applying the deprecated `REGSHARE_JOBS`
    /// fallback (snapshotted once per process, see [`env_fallbacks`]) and
    /// then defaulting to available parallelism. Always at least one,
    /// whatever a hand-constructed `jobs` field says.
    pub fn job_count(&self) -> usize {
        self.jobs
            .filter(|&n| n > 0)
            .or(env_fallbacks().jobs)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_options_win_and_defaults_backstop() {
        let opts = RunOptions::default().warmup(123).measure(456);
        let w = opts.window();
        assert_eq!((w.warmup, w.measure), (123, 456));
        // jobs unset: whatever the fallback chain says, it is at least 1.
        assert!(opts.job_count() >= 1);
    }

    #[test]
    fn over_prefers_the_overlay() {
        let file = RunOptions::default().warmup(10).jobs(3);
        let cli = RunOptions::default().warmup(99);
        let merged = cli.over(file);
        assert_eq!(merged.warmup, Some(99));
        assert_eq!(merged.jobs, Some(3));
        assert_eq!(merged.measure, None);
    }

    #[test]
    fn jobs_clamps_to_one() {
        assert_eq!(RunOptions::default().jobs(0).jobs, Some(1));
    }

    #[test]
    fn try_jobs_rejects_zero_with_a_typed_error() {
        assert_eq!(RunOptions::default().try_jobs(0), Err(ZeroJobsError));
        assert!(ZeroJobsError.to_string().contains("at least 1"));
        let ok = RunOptions::default().try_jobs(3).unwrap();
        assert_eq!(ok.jobs, Some(3));
        // The error is a std error so front doors can `?` it.
        let _: Box<dyn std::error::Error> = Box::new(ZeroJobsError);
    }

    #[test]
    fn unset_variable_folds_to_none() {
        assert_eq!(env_parse::<u64>("REGSHARE_TEST_UNSET_VARIABLE_NAME"), None);
    }

    #[test]
    fn malformed_values_are_flagged_but_fall_back() {
        // The pure half of env_parse is tested directly: mutating the real
        // environment (set_var) races with getenv on other test threads.
        // Malformed (set, non-empty, unparseable): falls back AND flags —
        // this is what drives the once-per-variable stderr warning.
        assert_eq!(parse_flagged::<u64>(Some("lots")), (None, true));
        assert_eq!(parse_flagged::<u64>(Some("-1")), (None, true));
        assert_eq!(parse_flagged::<usize>(Some("3.5")), (None, true));
        // Unset / empty / whitespace: silent fallback, no warning.
        assert_eq!(parse_flagged::<u64>(None), (None, false));
        assert_eq!(parse_flagged::<u64>(Some("")), (None, false));
        assert_eq!(parse_flagged::<u64>(Some("   ")), (None, false));
        // Well-formed: parsed, no warning.
        assert_eq!(parse_flagged::<u64>(Some(" 42 ")), (Some(42), false));
        // And warn_once itself is idempotent per key (second call is a
        // no-op; this also exercises the locked-set path directly).
        warn_once("REGSHARE_TEST_WARN_ONCE", "lots");
        warn_once("REGSHARE_TEST_WARN_ONCE", "lots");
    }

    #[test]
    fn env_fallbacks_are_snapshotted_once_and_pinned() {
        // Whatever the environment said at first resolution is frozen for
        // the life of the process: two reads agree, always.
        let a = env_fallbacks();
        let b = env_fallbacks();
        assert_eq!(a, b);
        // pin_env fills unset fields from the snapshot; explicit fields
        // win — the overlay a long-lived daemon applies per request.
        let pinned = RunOptions::default().warmup(9).pin_env();
        assert_eq!(pinned.warmup, Some(9));
        assert_eq!(pinned.measure, a.measure);
        assert_eq!(pinned.jobs, a.jobs);
        // Resolution through the snapshot matches direct resolution.
        assert_eq!(pinned.window().warmup, 9);
        assert_eq!(
            RunOptions::default().window(),
            RunOptions::default().pin_env().window()
        );
    }

    #[test]
    fn job_count_never_returns_zero() {
        let zero = RunOptions {
            jobs: Some(0),
            ..RunOptions::default()
        };
        assert!(zero.job_count() >= 1, "hand-constructed 0 is ignored");
    }
}

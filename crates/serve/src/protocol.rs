//! The line-delimited wire protocol.
//!
//! Requests are a single command line:
//!
//! ```text
//! run table          # scenario text follows, terminated by a line "end"
//! run json           # ditto, JSON body
//! ping               # liveness probe
//! stats              # engine counters
//! shutdown           # stop the daemon (drains in-flight work)
//! quit               # close this connection
//! ```
//!
//! `run` is followed by the scenario **in the `.scenario` text format** —
//! the checked-in file format *is* the wire format — terminated by a line
//! consisting of `end`. The sentinel is safe: `end` is not a scenario
//! keyword and the renderer never emits it as a line of its own.
//!
//! Replies are one meta line plus an exact-length body:
//!
//! ```text
//! ok cells=6 cached=6 computed=0 len=412\n<412 body bytes>
//! ok pong len=0\n
//! err busy: server is at capacity (8/8 cells in flight); retry later\n
//! ```
//!
//! The body is byte-identical however the cells were obtained (cold,
//! warm, coalesced) — provenance lives only in the meta line — so a
//! client can diff bodies against the batch binaries' output directly.

use crate::engine::{Format, ServeError, ServeResponse};
use std::io::{self, BufRead, Write};

/// Terminates the scenario text of a `run` request.
pub const END_SENTINEL: &str = "end";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a scenario and return the rendered body.
    Run {
        /// Requested body format.
        format: Format,
        /// The scenario in `.scenario` text form (sentinel stripped).
        scenario_text: String,
    },
    /// Liveness probe.
    Ping,
    /// Engine counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
    /// Close this connection.
    Quit,
}

/// Reads one request. `Ok(None)` means the peer closed the connection
/// cleanly; a malformed command or a missing sentinel is an
/// `InvalidData` error whose text is sent back as `err protocol: ...`.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let cmd = line.trim_end_matches(['\r', '\n']);
    match cmd {
        "ping" => return Ok(Some(Request::Ping)),
        "stats" => return Ok(Some(Request::Stats)),
        "shutdown" => return Ok(Some(Request::Shutdown)),
        "quit" | "" => return Ok(Some(Request::Quit)),
        _ => {}
    }
    let format = match cmd {
        "run table" | "run" => Format::Table,
        "run json" => Format::Json,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown command {other:?}"),
            ))
        }
    };
    let mut scenario_text = String::new();
    loop {
        let mut l = String::new();
        if reader.read_line(&mut l)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("connection closed before the {END_SENTINEL:?} sentinel"),
            ));
        }
        if l.trim_end_matches(['\r', '\n']) == END_SENTINEL {
            break;
        }
        scenario_text.push_str(&l);
    }
    Ok(Some(Request::Run {
        format,
        scenario_text,
    }))
}

/// Serializes a `run` request (command line, scenario text, sentinel).
pub fn write_run(w: &mut impl Write, format: Format, scenario_text: &str) -> io::Result<()> {
    let fmt = match format {
        Format::Table => "table",
        Format::Json => "json",
    };
    write!(w, "run {fmt}\n{scenario_text}")?;
    if !scenario_text.ends_with('\n') {
        w.write_all(b"\n")?;
    }
    writeln!(w, "{END_SENTINEL}")?;
    w.flush()
}

/// Writes a successful `run` reply: provenance meta line plus body.
pub fn write_response(w: &mut impl Write, resp: &ServeResponse) -> io::Result<()> {
    writeln!(
        w,
        "ok cells={} cached={} computed={} len={}",
        resp.cells,
        resp.cached,
        resp.computed,
        resp.body.len()
    )?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()
}

/// Writes an `ok <tag> len=N` reply with an arbitrary body.
pub fn write_ok(w: &mut impl Write, tag: &str, body: &str) -> io::Result<()> {
    writeln!(w, "ok {tag} len={}", body.len())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// The wire kind for a [`ServeError`] — clients dispatch on it
/// (`busy`/`timeout` are retriable, the rest are not).
pub fn error_kind(e: &ServeError) -> &'static str {
    match e {
        ServeError::Scenario(_) => "scenario",
        ServeError::Cache(_) => "cache",
        ServeError::Busy { .. } => "busy",
        ServeError::Timeout { .. } => "timeout",
        ServeError::Cell { .. } => "cell",
        ServeError::Grid(_) => "grid",
    }
}

/// Writes an `err <kind>: <message>` reply. Newlines in the message are
/// flattened — error replies are always exactly one line.
pub fn write_err(w: &mut impl Write, kind: &str, msg: &str) -> io::Result<()> {
    writeln!(w, "err {kind}: {}", msg.replace('\n', " "))?;
    w.flush()
}

/// A successful reply as seen by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The meta line, without the `ok ` prefix or trailing newline
    /// (e.g. `cells=6 cached=6 computed=0 len=412`, or `pong len=0`).
    pub meta: String,
    /// The exact-length body.
    pub body: String,
}

impl Reply {
    /// Parses `key=value` integers out of the meta line (`cells`,
    /// `cached`, `computed`, ...). `None` if the key is absent.
    pub fn meta_field(&self, key: &str) -> Option<u64> {
        self.meta.split_whitespace().find_map(|tok| {
            tok.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix('='))
                .and_then(|v| v.parse().ok())
        })
    }
}

/// Reads one reply. The outer `Err` is transport failure; the inner
/// `Err(line)` is a server-reported `err ...` line.
#[allow(clippy::type_complexity)]
pub fn read_reply(reader: &mut impl BufRead) -> io::Result<Result<Reply, String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a reply",
        ));
    }
    let line = line.trim_end_matches(['\r', '\n']);
    if let Some(msg) = line.strip_prefix("err ") {
        return Ok(Err(msg.to_string()));
    }
    let meta = line.strip_prefix("ok ").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed reply line {line:?}"),
        )
    })?;
    let len: usize = meta
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("len=").and_then(|v| v.parse().ok()))
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply meta line without len=: {meta:?}"),
            )
        })?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Ok(Reply {
        meta: meta.to_string(),
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn run_request_round_trips() {
        let mut wire = Vec::new();
        write_run(&mut wire, Format::Json, "scenario demo\nworkload gcc\n").unwrap();
        let mut r = BufReader::new(&wire[..]);
        let req = read_request(&mut r).unwrap().unwrap();
        assert_eq!(
            req,
            Request::Run {
                format: Format::Json,
                scenario_text: "scenario demo\nworkload gcc\n".to_string(),
            }
        );
        // Nothing left over: the next read is a clean EOF.
        assert_eq!(read_request(&mut r).unwrap(), None);
    }

    #[test]
    fn run_request_without_trailing_newline_gets_one() {
        let mut wire = Vec::new();
        write_run(&mut wire, Format::Table, "scenario demo").unwrap();
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(
            req,
            Request::Run {
                format: Format::Table,
                scenario_text: "scenario demo\n".to_string(),
            }
        );
    }

    #[test]
    fn control_commands_parse() {
        for (line, want) in [
            ("ping\n", Request::Ping),
            ("stats\n", Request::Stats),
            ("shutdown\n", Request::Shutdown),
            ("quit\n", Request::Quit),
        ] {
            let req = read_request(&mut BufReader::new(line.as_bytes()))
                .unwrap()
                .unwrap();
            assert_eq!(req, want, "command {line:?}");
        }
    }

    #[test]
    fn unknown_command_is_invalid_data() {
        let err = read_request(&mut BufReader::new(&b"frobnicate\n"[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_sentinel_is_invalid_data() {
        let err =
            read_request(&mut BufReader::new(&b"run table\nscenario demo\n"[..])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn reply_round_trips_and_meta_fields_parse() {
        let resp = ServeResponse {
            body: "hello table\n".to_string(),
            cells: 6,
            cached: 4,
            computed: 2,
        };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let reply = read_reply(&mut BufReader::new(&wire[..])).unwrap().unwrap();
        assert_eq!(reply.body, resp.body);
        assert_eq!(reply.meta_field("cells"), Some(6));
        assert_eq!(reply.meta_field("cached"), Some(4));
        assert_eq!(reply.meta_field("computed"), Some(2));
        assert_eq!(reply.meta_field("len"), Some(12));
        assert_eq!(reply.meta_field("absent"), None);
    }

    #[test]
    fn error_reply_surfaces_as_inner_err() {
        let mut wire = Vec::new();
        write_err(&mut wire, "busy", "server is at capacity\nretry later").unwrap();
        let got = read_reply(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(
            got,
            Err("busy: server is at capacity retry later".to_string())
        );
    }
}

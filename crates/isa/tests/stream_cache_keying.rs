//! Stream-cache keying: streams recorded under one fetch-path key must
//! never be replayed under another, and a warm stream must be served
//! entirely from the cache. Uses the per-stream counters (not the
//! process-wide ones) so parallel tests cannot interfere.

use regshare_isa::op::{AluOp, Cond, Op, Operand};
use regshare_isa::program::ProgramBuilder;
use regshare_isa::FetchStream;
use regshare_types::ArchReg;
use std::sync::Arc;

fn r(i: usize) -> ArchReg {
    ArchReg::int(i)
}

/// An infinite counting loop with a data-dependent branch. `salt` lands in
/// an immediate so each test gets a distinct program digest and therefore a
/// private corner of the process-wide stream cache.
fn loop_program(salt: u64) -> Arc<regshare_isa::program::Program> {
    let mut b = ProgramBuilder::new();
    // 0: r0 += salt
    b.push(Op::IntAlu {
        op: AluOp::Add,
        dst: r(0),
        src1: r(0),
        src2: Operand::Imm(salt),
    });
    // 1: if r0 bit 0 set goto 3
    b.push(Op::CondBranch {
        cond: Cond::BitSet,
        src1: r(0),
        src2: Operand::Imm(0),
        target: 3,
    });
    // 2: r1 ^= r0
    b.push(Op::IntAlu {
        op: AluOp::Xor,
        dst: r(1),
        src1: r(1),
        src2: Operand::Reg(r(0)),
    });
    // 3: r2 += 1 ; 4: jump 0
    b.push(Op::IntAlu {
        op: AluOp::Add,
        dst: r(2),
        src1: r(2),
        src2: Operand::Imm(1),
    });
    b.push(Op::Jump { target: 0 });
    Arc::new(b.build())
}

#[test]
fn warm_stream_replays_instead_of_decoding() {
    let program = loop_program(0x5eed_0001);
    const N: usize = 200;

    let mut cold = FetchStream::with_fetch_key(Arc::clone(&program), 7);
    let cold_uops: Vec<_> = (0..N).map(|_| cold.next_uop()).collect();
    assert_eq!(cold.oracle_decodes(), N as u64, "cold stream decodes live");
    assert_eq!(cold.replayed_uops(), 0);
    drop(cold); // publishes the recorded prefix

    let mut warm = FetchStream::with_fetch_key(Arc::clone(&program), 7);
    let warm_uops: Vec<_> = (0..N).map(|_| warm.next_uop()).collect();
    assert_eq!(
        warm.oracle_decodes(),
        0,
        "warm stream must not touch the interpreter"
    );
    assert_eq!(warm.replayed_uops(), N as u64);

    // Replay is content-identical, not merely cheap.
    for (c, w) in cold_uops.iter().zip(&warm_uops) {
        assert_eq!(c.seq, w.seq);
        assert_eq!(c.sidx, w.sidx);
        assert_eq!(c.result, w.result);
    }
}

#[test]
fn different_fetch_keys_do_not_share_a_stream() {
    let program = loop_program(0x5eed_0002);
    const N: usize = 150;

    let mut a = FetchStream::with_fetch_key(Arc::clone(&program), 0xAAAA);
    for _ in 0..N {
        a.next_uop();
    }
    drop(a); // publishes under key 0xAAAA

    // Same program, different fetch-path key: a keyed miss. The stream
    // must decode live rather than replay a stream recorded under a
    // different front-end configuration.
    let mut b = FetchStream::with_fetch_key(Arc::clone(&program), 0xBBBB);
    for _ in 0..N {
        b.next_uop();
    }
    assert_eq!(
        b.oracle_decodes(),
        N as u64,
        "keyed miss must not replay another key's stream"
    );
    assert_eq!(b.replayed_uops(), 0);
    drop(b);

    // And the original key is still served warm.
    let mut a2 = FetchStream::with_fetch_key(Arc::clone(&program), 0xAAAA);
    for _ in 0..N {
        a2.next_uop();
    }
    assert_eq!(a2.oracle_decodes(), 0);
    assert_eq!(a2.replayed_uops(), N as u64);
}

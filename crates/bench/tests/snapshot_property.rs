//! Property test: checkpoint/resume equivalence holds for *arbitrary*
//! fuzz-generated programs, snapshot points, and tracker presets — not
//! just the checked-in scenarios.
//!
//! For any (profile, seed, preset, snapshot cycle) — all decoded from one
//! raw draw vector, the vendored-proptest idiom this repo's property
//! tests share:
//! - resuming from a mid-run snapshot and finishing must reproduce the
//!   uninterrupted run's architectural digest and statistics exactly;
//! - re-saving a just-restored machine must reproduce the snapshot
//!   byte-for-byte (`encode(decode(bytes)) == bytes`);
//! - the resumed machine's register accounting must audit clean.

use proptest::prelude::*;
use regshare_bench::fuzz::tracker_presets;
use regshare_core::Simulator;
use regshare_workloads::fuzz::{profile_names, FuzzSpec};

/// Committed µ-ops for the full run. Small enough for debug builds,
/// large enough that the snapshot point sits genuinely mid-flight.
const TOTAL: u64 = 1_500;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_equals_uninterrupted_on_fuzz_programs(
        raw in proptest::collection::vec(any::<u64>(), 4..16)
    ) {
        let profiles = profile_names();
        let profile = profiles[(raw[0] % profiles.len() as u64) as usize];
        let seed = raw[1] % 1_000_000;
        let presets = tracker_presets();
        let (preset_name, cfg) = &presets[(raw[2] % presets.len() as u64) as usize];
        // Mid-flight: late enough for live checkpoints and wheel events,
        // early enough that even a fast config is short of the budget.
        let snap_cycle = 20 + raw[3] % 280;

        let spec = FuzzSpec::new(profile, seed).expect("known profile");
        let program = spec.build();
        let ctx = format!("{}/{preset_name} @ {snap_cycle}", spec.name());

        let mut reference = Simulator::new(&program, cfg.clone());
        let ref_stats = reference.run(TOTAL);

        let mut a = Simulator::new(&program, cfg.clone());
        a.run_cycles(snap_cycle);
        let bytes = a.save_snapshot();

        let mut b = Simulator::resume_from(&program, cfg.clone(), &bytes)
            .unwrap_or_else(|e| panic!("{ctx}: resume failed: {e}"));
        // encode(decode(bytes)) == bytes.
        prop_assert_eq!(b.save_snapshot(), bytes);

        let committed = b.stats().committed;
        prop_assert!(committed < TOTAL); // else: lower the snap_cycle cap
        let resumed_stats = b.run(TOTAL - committed);

        prop_assert_eq!(b.arch_digest(), reference.arch_digest());
        prop_assert_eq!(resumed_stats, ref_stats);
        if let Err(e) = b.audit_registers() {
            panic!("{ctx}: register audit failed: {e}");
        }
    }
}

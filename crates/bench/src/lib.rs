//! Experiment harness: workload × configuration sweeps reproducing every
//! table and figure of the paper's evaluation.
//!
//! Each bench target (`cargo bench --bench fig…`) declares its sweep as a
//! [`SweepSpec`] — the workload list crossed with labelled configuration
//! variants — and the engine in [`sweep`] expands it into independent jobs,
//! runs them on a `std::thread` worker pool (`REGSHARE_JOBS` workers,
//! default: available parallelism), and merges the results back in spec
//! order, so output is byte-identical at any parallelism level. Each bench
//! then prints the same rows/series the paper reports, plus a CSV block for
//! plotting. Window sizes default to quick-but-stable values and can be
//! scaled with the `REGSHARE_WARMUP` / `REGSHARE_MEASURE` environment
//! variables (µ-ops per run).

#![deny(missing_docs)]

pub mod harness;
pub mod sweep;
pub mod table;

pub use harness::{measure, measure_program, measure_with, Measurement, RunWindow};
pub use sweep::{jobs_from_env, SweepGrid, SweepRow, SweepSpec, Variant};
pub use table::Table;

//! A dependency-free two-pass text assembler for the µ-op ISA.
//!
//! The assembler turns human-readable kernel sources (the checked-in
//! `programs/*.asm` corpus) into validated [`Program`]s. Pass one walks the
//! source collecting label definitions while emitting instructions; pass two
//! resolves forward label references and validates the result.
//!
//! # Syntax
//!
//! - One instruction per line; `#` and `;` start comments.
//! - Registers are `r0`–`r15` (integer) and `f0`–`f15` (floating-point).
//! - Immediates are decimal (optionally negative) or `0x…` hexadecimal, and
//!   may name a constant declared earlier with `.equ`.
//! - `label:` defines a branch/call target; labels may share a line with an
//!   instruction. Branch targets are labels (or raw static indices).
//! - `.equ NAME value` defines a named constant usable wherever an
//!   immediate is accepted (must be declared before use).
//! - `.data addr v0 v1 …` emits an initialization sequence storing the
//!   64-bit words `v0, v1, …` at `addr, addr+8, …`. Because the simulated
//!   memory is *not* zero-filled, every byte a kernel reads must first be
//!   written — either with `.data` or with an explicit init loop. The
//!   expansion clobbers `r0` and `r1`.
//!
//! Mnemonics (operands comma- or space-separated):
//!
//! | Mnemonic | Operation |
//! |---|---|
//! | `add/sub/and/or/xor/shl/shr d, s1, s2` | integer ALU (`s2` reg or imm) |
//! | `mul d, s1, s2` / `div d, s1, s2` | integer multiply / divide |
//! | `fadd/fmul/fdiv fd, fs1, fs2` | FP arithmetic (dataflow tokens) |
//! | `mov d, s` (also `mov32/mov16/mov8`) | integer move of that width |
//! | `fmov fd, fs` | FP move |
//! | `li d, imm` | load immediate |
//! | `ld/ldw/ldh/ldb d, base, off` | load 8/4/2/1 bytes |
//! | `st/stw/sth/stb data, base, off` | store 8/4/2/1 bytes |
//! | `beq/bne/blt/bge s1, s2, target` | conditional branch (unsigned compare) |
//! | `bbs s1, target` | branch if bit 0 of `s1` is set |
//! | `jmp target` / `call target` / `ret` | control flow |
//! | `nop` / `halt` | no-op / stop the machine |
//!
//! # Examples
//!
//! ```
//! use regshare_isa::asm::assemble;
//! use regshare_isa::interp::Machine;
//!
//! let program = assemble(
//!     "    li r1, 10      # counter
//!      loop:
//!          add r2, r2, r1
//!          sub r1, r1, 1
//!          bne r1, 0, loop
//!          halt",
//! )
//! .unwrap();
//! let mut m = Machine::new(std::sync::Arc::new(program));
//! while !m.is_halted() {
//!     m.step();
//! }
//! assert_eq!(m.regs()[2], 55); // 10 + 9 + … + 1
//! ```

use crate::op::{AluOp, Cond, MoveWidth, Op, Operand};
use crate::program::{Program, ValidateProgramError};
use regshare_types::{ArchReg, RegClass, ARCH_REGS_PER_CLASS};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Error produced while assembling a text program.
///
/// Line numbers are 1-based indices into the source text, and the `Display`
/// form follows the `.scenario` parser's `line {line}: …` convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// The first token of an instruction is not a known mnemonic.
    UnknownMnemonic {
        /// 1-based source line.
        line: usize,
        /// The unrecognized mnemonic.
        mnemonic: String,
    },
    /// A label (or `.equ` constant) was defined twice.
    DuplicateLabel {
        /// 1-based source line of the second definition.
        line: usize,
        /// The label name.
        label: String,
    },
    /// A branch/jump/call names a label that is never defined.
    UndefinedLabel {
        /// 1-based source line of the reference.
        line: usize,
        /// The missing label name.
        label: String,
    },
    /// A numeric literal does not fit its operand (u64 immediate, i64
    /// displacement, or u32 branch target).
    ImmediateOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A token in a register position is not `r0`–`r15` / `f0`–`f15`, or
    /// has the wrong class for the instruction.
    BadRegister {
        /// 1-based source line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Extra tokens remain after a complete instruction.
    TrailingGarbage {
        /// 1-based source line.
        line: usize,
        /// The first extra token.
        token: String,
    },
    /// Any other malformed line (missing operands, bad directive, …).
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The assembled instruction sequence failed [`Program`] validation.
    Invalid(ValidateProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, mnemonic } => {
                write!(f, "line {line}: unknown mnemonic `{mnemonic}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            AsmError::ImmediateOutOfRange { line, token } => {
                write!(f, "line {line}: immediate `{token}` out of range")
            }
            AsmError::BadRegister { line, token } => {
                write!(f, "line {line}: bad register `{token}`")
            }
            AsmError::TrailingGarbage { line, token } => {
                write!(f, "line {line}: trailing garbage `{token}`")
            }
            AsmError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::Invalid(e) => write!(f, "assembled program invalid: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A pending label reference recorded in pass one, patched in pass two.
struct Fixup {
    /// Index into the emitted instruction vector.
    at: usize,
    /// Referenced label.
    label: String,
    /// 1-based source line of the reference.
    line: usize,
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, carrying the 1-based source
/// line number.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut out: Vec<Op> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut consts: HashMap<String, u64> = HashMap::new();
    let mut fixups: Vec<Fixup> = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw;
        if let Some(cut) = text.find(['#', ';']) {
            text = &text[..cut];
        }
        let mut text = text.trim();

        // Leading `label:` definitions (an instruction may follow on the
        // same line).
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let name = head.trim();
            if !is_ident(name) {
                break;
            }
            if labels.contains_key(name) || consts.contains_key(name) {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: name.to_string(),
                });
            }
            labels.insert(name.to_string(), out.len() as u32);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let cleaned = text.replace(',', " ");
        let toks: Vec<&str> = cleaned.split_whitespace().collect();
        if let Some(directive) = toks[0].strip_prefix('.') {
            parse_directive(directive, &toks, line, &mut out, &mut labels, &mut consts)?;
        } else {
            parse_inst(&toks, line, &mut out, &mut fixups, &consts)?;
        }
    }

    for fx in fixups {
        match labels.get(&fx.label) {
            Some(&target) => match &mut out[fx.at] {
                Op::CondBranch { target: t, .. }
                | Op::Jump { target: t }
                | Op::Call { target: t } => {
                    *t = target;
                }
                _ => unreachable!("fixup recorded on a non-control-flow op"),
            },
            None => {
                return Err(AsmError::UndefinedLabel {
                    line: fx.line,
                    label: fx.label,
                })
            }
        }
    }

    Program::validated(out).map_err(AsmError::Invalid)
}

/// Whether `s` is a valid label/constant identifier.
fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Whether `s` is shaped like a register name (`r…`/`f…` + digits), even if
/// the index is out of range — used to pick the right error.
fn looks_like_reg(s: &str) -> bool {
    matches!(s.as_bytes().first(), Some(b'r' | b'f'))
        && s.len() > 1
        && s.bytes().skip(1).all(|b| b.is_ascii_digit())
}

/// Parses a register token of either class.
fn parse_reg(tok: &str, line: usize) -> Result<ArchReg, AsmError> {
    let bad = || AsmError::BadRegister {
        line,
        token: tok.to_string(),
    };
    if !looks_like_reg(tok) {
        return Err(bad());
    }
    let n: usize = tok[1..].parse().map_err(|_| bad())?;
    if n >= ARCH_REGS_PER_CLASS {
        return Err(bad());
    }
    Ok(match tok.as_bytes()[0] {
        b'r' => ArchReg::int(n),
        _ => ArchReg::fp(n),
    })
}

/// Parses a register token, additionally requiring `class`.
fn parse_reg_class(tok: &str, class: RegClass, line: usize) -> Result<ArchReg, AsmError> {
    let r = parse_reg(tok, line)?;
    if r.class() != class {
        return Err(AsmError::BadRegister {
            line,
            token: tok.to_string(),
        });
    }
    Ok(r)
}

/// Raw numeric parse into an i128 (sign-extended); `None` means the token is
/// not number-shaped at all, `Some(Err)` means it overflowed.
fn parse_i128(tok: &str, consts: &HashMap<String, u64>) -> Option<Result<i128, ()>> {
    if let Some(&v) = consts.get(tok) {
        return Some(Ok(v as i128));
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let parsed = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        i128::from_str_radix(hex, 16)
    } else {
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        body.parse::<i128>()
    };
    Some(match parsed {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => Err(()),
    })
}

/// Parses a u64 immediate (negative literals wrap to two's complement).
fn parse_imm(tok: &str, line: usize, consts: &HashMap<String, u64>) -> Result<u64, AsmError> {
    let out_of_range = || AsmError::ImmediateOutOfRange {
        line,
        token: tok.to_string(),
    };
    match parse_i128(tok, consts) {
        Some(Ok(v)) if (-(1i128 << 63)..(1i128 << 64)).contains(&v) => Ok(v as u64),
        Some(_) => Err(out_of_range()),
        None => Err(AsmError::Syntax {
            line,
            msg: format!("expected immediate or constant, got `{tok}`"),
        }),
    }
}

/// Parses an i64 displacement.
fn parse_offset(tok: &str, line: usize, consts: &HashMap<String, u64>) -> Result<i64, AsmError> {
    let out_of_range = || AsmError::ImmediateOutOfRange {
        line,
        token: tok.to_string(),
    };
    match parse_i128(tok, consts) {
        Some(Ok(v)) if i64::try_from(v).is_ok() => Ok(v as i64),
        Some(_) => Err(out_of_range()),
        None => Err(AsmError::Syntax {
            line,
            msg: format!("expected displacement, got `{tok}`"),
        }),
    }
}

/// Parses a register-or-immediate second operand.
fn parse_operand(
    tok: &str,
    line: usize,
    consts: &HashMap<String, u64>,
) -> Result<Operand, AsmError> {
    if looks_like_reg(tok) {
        return parse_reg_class(tok, RegClass::Int, line).map(Operand::Reg);
    }
    parse_imm(tok, line, consts).map(Operand::Imm)
}

/// Fetches operand `i`, or reports a missing-operand syntax error.
fn need<'t>(toks: &[&'t str], i: usize, line: usize) -> Result<&'t str, AsmError> {
    toks.get(i).copied().ok_or_else(|| AsmError::Syntax {
        line,
        msg: format!("`{}` is missing operand {}", toks[0], i),
    })
}

/// Rejects extra tokens past the expected operand count.
fn done(toks: &[&str], n: usize, line: usize) -> Result<(), AsmError> {
    match toks.get(n) {
        None => Ok(()),
        Some(extra) => Err(AsmError::TrailingGarbage {
            line,
            token: extra.to_string(),
        }),
    }
}

/// Handles `.equ` and `.data` directives.
fn parse_directive(
    directive: &str,
    toks: &[&str],
    line: usize,
    out: &mut Vec<Op>,
    labels: &mut HashMap<String, u32>,
    consts: &mut HashMap<String, u64>,
) -> Result<(), AsmError> {
    match directive {
        "equ" => {
            let name = need(toks, 1, line)?;
            if !is_ident(name) {
                return Err(AsmError::Syntax {
                    line,
                    msg: format!("`.equ` name `{name}` is not an identifier"),
                });
            }
            if consts.contains_key(name) || labels.contains_key(name) {
                return Err(AsmError::DuplicateLabel {
                    line,
                    label: name.to_string(),
                });
            }
            let value = parse_imm(need(toks, 2, line)?, line, consts)?;
            done(toks, 3, line)?;
            consts.insert(name.to_string(), value);
            Ok(())
        }
        "data" => {
            let addr = parse_imm(need(toks, 1, line)?, line, consts)?;
            if toks.len() < 3 {
                return Err(AsmError::Syntax {
                    line,
                    msg: "`.data` needs at least one value".to_string(),
                });
            }
            // The simulated memory has no zero-fill guarantee, so `.data`
            // lowers to explicit stores; r0 holds the base, r1 each word.
            out.push(Op::LoadImm {
                dst: ArchReg::int(0),
                imm: addr,
            });
            for (k, tok) in toks[2..].iter().enumerate() {
                let value = parse_imm(tok, line, consts)?;
                out.push(Op::LoadImm {
                    dst: ArchReg::int(1),
                    imm: value,
                });
                out.push(Op::Store {
                    data: ArchReg::int(1),
                    base: ArchReg::int(0),
                    offset: (k * 8) as i64,
                    size: 8,
                });
            }
            Ok(())
        }
        other => Err(AsmError::Syntax {
            line,
            msg: format!("unknown directive `.{other}`"),
        }),
    }
}

/// Parses one instruction line (tokens already split) and appends its op.
fn parse_inst(
    toks: &[&str],
    line: usize,
    out: &mut Vec<Op>,
    fixups: &mut Vec<Fixup>,
    consts: &HashMap<String, u64>,
) -> Result<(), AsmError> {
    let m = toks[0];
    // Records a control-flow target: raw index now, or a label fixup.
    let target = |tok: &str, at: usize, fixups: &mut Vec<Fixup>| -> Result<u32, AsmError> {
        if is_ident(tok) && !consts.contains_key(tok) {
            fixups.push(Fixup {
                at,
                label: tok.to_string(),
                line,
            });
            return Ok(0);
        }
        match parse_imm(tok, line, consts) {
            Ok(v) if u32::try_from(v).is_ok() => Ok(v as u32),
            Ok(_) => Err(AsmError::ImmediateOutOfRange {
                line,
                token: tok.to_string(),
            }),
            Err(e) => Err(e),
        }
    };
    let int = RegClass::Int;
    let fp = RegClass::Fp;
    let op = match m {
        "add" | "sub" | "and" | "or" | "xor" | "shl" | "shr" => {
            let alu = match m {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "shl" => AluOp::Shl,
                _ => AluOp::Shr,
            };
            let op = Op::IntAlu {
                op: alu,
                dst: parse_reg_class(need(toks, 1, line)?, int, line)?,
                src1: parse_reg_class(need(toks, 2, line)?, int, line)?,
                src2: parse_operand(need(toks, 3, line)?, line, consts)?,
            };
            done(toks, 4, line)?;
            op
        }
        "mul" | "div" => {
            let dst = parse_reg_class(need(toks, 1, line)?, int, line)?;
            let src1 = parse_reg_class(need(toks, 2, line)?, int, line)?;
            let src2 = parse_operand(need(toks, 3, line)?, line, consts)?;
            done(toks, 4, line)?;
            if m == "mul" {
                Op::IntMul { dst, src1, src2 }
            } else {
                Op::IntDiv { dst, src1, src2 }
            }
        }
        "fadd" | "fmul" | "fdiv" => {
            let dst = parse_reg_class(need(toks, 1, line)?, fp, line)?;
            let src1 = parse_reg_class(need(toks, 2, line)?, fp, line)?;
            let src2 = parse_reg_class(need(toks, 3, line)?, fp, line)?;
            done(toks, 4, line)?;
            match m {
                "fadd" => Op::FpAdd { dst, src1, src2 },
                "fmul" => Op::FpMul { dst, src1, src2 },
                _ => Op::FpDiv { dst, src1, src2 },
            }
        }
        "mov" | "mov32" | "mov16" | "mov8" => {
            let width = match m {
                "mov" => MoveWidth::W64,
                "mov32" => MoveWidth::W32,
                "mov16" => MoveWidth::W16,
                _ => MoveWidth::W8,
            };
            let op = Op::MovInt {
                dst: parse_reg_class(need(toks, 1, line)?, int, line)?,
                src: parse_reg_class(need(toks, 2, line)?, int, line)?,
                width,
            };
            done(toks, 3, line)?;
            op
        }
        "fmov" => {
            let op = Op::MovFp {
                dst: parse_reg_class(need(toks, 1, line)?, fp, line)?,
                src: parse_reg_class(need(toks, 2, line)?, fp, line)?,
            };
            done(toks, 3, line)?;
            op
        }
        "li" => {
            let op = Op::LoadImm {
                dst: parse_reg(need(toks, 1, line)?, line)?,
                imm: parse_imm(need(toks, 2, line)?, line, consts)?,
            };
            done(toks, 3, line)?;
            op
        }
        "ld" | "ldw" | "ldh" | "ldb" => {
            let size = mem_size(m);
            let op = Op::Load {
                dst: parse_reg(need(toks, 1, line)?, line)?,
                base: parse_reg_class(need(toks, 2, line)?, int, line)?,
                offset: parse_offset(need(toks, 3, line)?, line, consts)?,
                size,
            };
            done(toks, 4, line)?;
            op
        }
        "st" | "stw" | "sth" | "stb" => {
            let size = mem_size(m);
            let op = Op::Store {
                data: parse_reg(need(toks, 1, line)?, line)?,
                base: parse_reg_class(need(toks, 2, line)?, int, line)?,
                offset: parse_offset(need(toks, 3, line)?, line, consts)?,
                size,
            };
            done(toks, 4, line)?;
            op
        }
        "beq" | "bne" | "blt" | "bge" => {
            let cond = match m {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                _ => Cond::Ge,
            };
            let src1 = parse_reg_class(need(toks, 1, line)?, int, line)?;
            let src2 = parse_operand(need(toks, 2, line)?, line, consts)?;
            let t = target(need(toks, 3, line)?, out.len(), fixups)?;
            done(toks, 4, line)?;
            Op::CondBranch {
                cond,
                src1,
                src2,
                target: t,
            }
        }
        "bbs" => {
            let src1 = parse_reg_class(need(toks, 1, line)?, int, line)?;
            let t = target(need(toks, 2, line)?, out.len(), fixups)?;
            done(toks, 3, line)?;
            Op::CondBranch {
                cond: Cond::BitSet,
                src1,
                src2: Operand::Imm(0),
                target: t,
            }
        }
        "jmp" | "call" => {
            let t = target(need(toks, 1, line)?, out.len(), fixups)?;
            done(toks, 2, line)?;
            if m == "jmp" {
                Op::Jump { target: t }
            } else {
                Op::Call { target: t }
            }
        }
        "ret" => {
            done(toks, 1, line)?;
            Op::Ret
        }
        "nop" => {
            done(toks, 1, line)?;
            Op::Nop
        }
        "halt" => {
            done(toks, 1, line)?;
            Op::Halt
        }
        other => {
            return Err(AsmError::UnknownMnemonic {
                line,
                mnemonic: other.to_string(),
            })
        }
    };
    out.push(op);
    Ok(())
}

/// Access size for a load/store mnemonic suffix.
fn mem_size(m: &str) -> u8 {
    match m.as_bytes()[m.len() - 1] {
        b'w' => 4,
        b'h' => 2,
        b'b' => 1,
        _ => 8,
    }
}

/// Renders a program back to canonical assembly text.
///
/// Branch targets become `L<index>` labels. The output re-assembles to an
/// instruction-for-instruction identical program, so
/// `assemble(render(&p))` round-trips.
pub fn render(p: &Program) -> String {
    let mut targets: BTreeSet<u32> = BTreeSet::new();
    for op in p.iter() {
        if let Op::CondBranch { target, .. } | Op::Jump { target } | Op::Call { target } = op {
            targets.insert(*target);
        }
    }
    let mut s = String::new();
    for (i, op) in p.iter().enumerate() {
        if targets.contains(&(i as u32)) {
            s.push_str(&format!("L{i}:\n"));
        }
        s.push_str("    ");
        s.push_str(&render_op(op));
        s.push('\n');
    }
    s
}

/// Renders a u64 immediate so it re-parses to the same value.
fn fmt_imm(v: u64) -> String {
    if v <= i64::MAX as u64 {
        format!("{v}")
    } else {
        format!("{}", v as i64)
    }
}

/// Renders an operand.
fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("{r}"),
        Operand::Imm(v) => fmt_imm(*v),
    }
}

/// Renders one instruction in canonical mnemonic form.
fn render_op(op: &Op) -> String {
    match op {
        Op::IntAlu {
            op: alu,
            dst,
            src1,
            src2,
        } => {
            let m = match alu {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Shl => "shl",
                AluOp::Shr => "shr",
            };
            format!("{m} {dst}, {src1}, {}", fmt_operand(src2))
        }
        Op::IntMul { dst, src1, src2 } => format!("mul {dst}, {src1}, {}", fmt_operand(src2)),
        Op::IntDiv { dst, src1, src2 } => format!("div {dst}, {src1}, {}", fmt_operand(src2)),
        Op::FpAdd { dst, src1, src2 } => format!("fadd {dst}, {src1}, {src2}"),
        Op::FpMul { dst, src1, src2 } => format!("fmul {dst}, {src1}, {src2}"),
        Op::FpDiv { dst, src1, src2 } => format!("fdiv {dst}, {src1}, {src2}"),
        Op::MovInt { dst, src, width } => {
            let m = match width {
                MoveWidth::W64 => "mov",
                MoveWidth::W32 => "mov32",
                MoveWidth::W16 => "mov16",
                MoveWidth::W8 => "mov8",
            };
            format!("{m} {dst}, {src}")
        }
        Op::MovFp { dst, src } => format!("fmov {dst}, {src}"),
        Op::LoadImm { dst, imm } => format!("li {dst}, {}", fmt_imm(*imm)),
        Op::Load {
            dst,
            base,
            offset,
            size,
        } => format!("{} {dst}, {base}, {offset}", mem_mnemonic("ld", *size)),
        Op::Store {
            data,
            base,
            offset,
            size,
        } => format!("{} {data}, {base}, {offset}", mem_mnemonic("st", *size)),
        Op::CondBranch {
            cond,
            src1,
            src2,
            target,
        } => match cond {
            Cond::Eq => format!("beq {src1}, {}, L{target}", fmt_operand(src2)),
            Cond::Ne => format!("bne {src1}, {}, L{target}", fmt_operand(src2)),
            Cond::Lt => format!("blt {src1}, {}, L{target}", fmt_operand(src2)),
            Cond::Ge => format!("bge {src1}, {}, L{target}", fmt_operand(src2)),
            Cond::BitSet => format!("bbs {src1}, L{target}"),
        },
        Op::Jump { target } => format!("jmp L{target}"),
        Op::Call { target } => format!("call L{target}"),
        Op::Ret => "ret".to_string(),
        Op::Nop => "nop".to_string(),
        Op::Halt => "halt".to_string(),
    }
}

/// Load/store mnemonic for an access size.
fn mem_mnemonic(stem: &str, size: u8) -> String {
    let suffix = match size {
        4 => "w",
        2 => "h",
        1 => "b",
        _ => "",
    };
    format!("{stem}{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;
    use std::sync::Arc;

    fn run_to_halt(p: Program) -> Machine {
        let mut m = Machine::new(Arc::new(p));
        for _ in 0..1_000_000 {
            if m.is_halted() {
                return m;
            }
            m.step();
        }
        panic!("program did not halt within 1M steps");
    }

    #[test]
    fn loop_with_backward_branch_executes() {
        let p = assemble(
            "    li r1, 10
             top:
                 add r2, r2, r1
                 sub r1, r1, 1
                 bne r1, 0, top
                 halt",
        )
        .unwrap();
        let m = run_to_halt(p);
        assert_eq!(m.regs()[2], 55);
    }

    #[test]
    fn data_directive_initializes_memory() {
        let p = assemble(
            ".equ BASE 0x1000
             .data BASE 7 11 13
                 li r4, BASE
                 ld r5, r4, 16
                 halt",
        )
        .unwrap();
        let m = run_to_halt(p);
        assert_eq!(m.memory().read(0x1000, 8), 7);
        assert_eq!(m.memory().read(0x1008, 8), 11);
        assert_eq!(m.regs()[5], 13);
    }

    #[test]
    fn call_and_ret_work() {
        let p = assemble(
            "    li r1, 5
                 call double
                 halt
             double:
                 add r1, r1, r1
                 ret",
        )
        .unwrap();
        let m = run_to_halt(p);
        assert_eq!(m.regs()[1], 10);
    }

    #[test]
    fn fp_and_moves_assemble() {
        let p = assemble(
            "    li f0, 3
                 li f1, 4
                 fadd f2, f0, f1
                 fmul f3, f2, f2
                 fdiv f4, f3, f1
                 fmov f5, f4
                 mov r1, r0
                 mov32 r2, r1
                 mov16 r3, r1
                 mov8 r4, r1
                 halt",
        )
        .unwrap();
        assert_eq!(p.len(), 11);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("    nop\n    nop\n    frobnicate r1, r2\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::UnknownMnemonic {
                line: 3,
                mnemonic: "frobnicate".to_string()
            }
        );
        assert_eq!(err.to_string(), "line 3: unknown mnemonic `frobnicate`");
    }

    #[test]
    fn duplicate_label_reports_line() {
        let err = assemble("top:\n    nop\ntop:\n    halt\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::DuplicateLabel {
                line: 3,
                label: "top".to_string()
            }
        );
    }

    #[test]
    fn undefined_label_reports_line() {
        let err = assemble("    nop\n    jmp nowhere\n    halt\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::UndefinedLabel {
                line: 2,
                label: "nowhere".to_string()
            }
        );
    }

    #[test]
    fn out_of_range_immediate_reports_line() {
        let err = assemble("    li r0, 99999999999999999999999999\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::ImmediateOutOfRange {
                line: 1,
                token: "99999999999999999999999999".to_string()
            }
        );
    }

    #[test]
    fn bad_register_reports_line() {
        let err = assemble("    nop\n    add r1, r16, 3\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::BadRegister {
                line: 2,
                token: "r16".to_string()
            }
        );
        // Wrong class is also a register error.
        let err = assemble("    fadd f0, f1, r2\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::BadRegister {
                line: 1,
                token: "r2".to_string()
            }
        );
    }

    #[test]
    fn trailing_garbage_reports_line() {
        let err = assemble("    nop\n    mov r1, r2, r3\n").unwrap_err();
        assert_eq!(
            err,
            AsmError::TrailingGarbage {
                line: 2,
                token: "r3".to_string()
            }
        );
    }

    #[test]
    fn negative_and_hex_immediates_round_trip() {
        let p = assemble("    li r0, -1\n    li r1, 0xdeadbeef\n    st r0, r1, -8\n    halt\n")
            .unwrap();
        assert_eq!(
            *p.op(0),
            Op::LoadImm {
                dst: ArchReg::int(0),
                imm: u64::MAX
            }
        );
        assert_eq!(
            *p.op(1),
            Op::LoadImm {
                dst: ArchReg::int(1),
                imm: 0xdead_beef
            }
        );
        let text = render(&p);
        let p2 = assemble(&text).unwrap();
        assert!(p.iter().eq(p2.iter()), "round-trip changed the program");
    }

    #[test]
    fn render_round_trips_all_op_shapes() {
        let src = "start:
                 li r1, 8
                 li r4, 0x2000
             loop:
                 st r1, r4, 0
                 ldb r2, r4, 0
                 sth r2, r4, 8
                 ldw r3, r4, 8
                 mul r5, r3, r1
                 div r6, r5, 3
                 bbs r6, odd
                 xor r7, r7, r6
             odd:
                 shl r8, r6, 2
                 shr r9, r8, r1
                 call helper
                 sub r1, r1, 1
                 bne r1, 0, loop
                 halt
             helper:
                 nop
                 ret";
        let p = assemble(src).unwrap();
        let text = render(&p);
        let p2 = assemble(&text).unwrap();
        assert!(p.iter().eq(p2.iter()), "round-trip changed the program");
        // Rendering is a fixed point after one round.
        assert_eq!(text, render(&p2));
    }

    #[test]
    fn empty_source_is_invalid() {
        assert_eq!(
            assemble("# nothing but comments\n").unwrap_err(),
            AsmError::Invalid(ValidateProgramError::Empty)
        );
    }
}

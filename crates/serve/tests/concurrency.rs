//! Scheduling semantics under concurrency: parallel clients match a
//! serial run, coalescing computes each in-flight cell exactly once,
//! admission control rejects with the typed `Busy`, and a timed-out
//! request's cells still land in the cache.

use regshare_bench::{render_report, RunOptions, Scenario, VariantSpec};
use regshare_serve::engine::{Engine, EngineConfig, Format, ServeError};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny(name: &str, workloads: &[&str]) -> Scenario {
    Scenario::builder(name)
        .options(RunOptions::default().warmup(500).measure(1_500))
        .workloads(workloads)
        .variant("base", VariantSpec::hpca16())
        .variant("both", VariantSpec::preset("me_smb"))
        .build()
        .unwrap()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("regshare-serve-cc-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn as_str(&self) -> String {
        self.0.to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine_with(dir: &TempDir, f: impl FnOnce(&mut EngineConfig)) -> Engine {
    let mut config = EngineConfig {
        cache_dir: dir.as_str(),
        workers: 2,
        ..EngineConfig::default()
    };
    f(&mut config);
    Engine::new(config).unwrap()
}

#[test]
fn parallel_clients_match_serial_runs() {
    let dir = TempDir::new("par-eq");
    let eng = Arc::new(engine_with(&dir, |_| {}));
    // Overlapping matrices: crafty cells are shared across all three.
    let scenarios = [
        tiny("cc_a", &["crafty"]),
        tiny("cc_b", &["crafty", "hmmer"]),
        tiny("cc_c", &["hmmer", "crafty"]),
    ];

    let handles: Vec<_> = scenarios
        .iter()
        .map(|s| {
            let eng = Arc::clone(&eng);
            let s = s.clone();
            std::thread::spawn(move || eng.submit(&s, Format::Table).unwrap().body)
        })
        .collect();
    let bodies: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (s, body) in scenarios.iter().zip(&bodies) {
        let grid = s.to_sweep().unwrap().run().unwrap();
        assert_eq!(
            *body,
            render_report(s, &grid).unwrap(),
            "served {} == batch engine",
            s.name
        );
    }
    // 4 unique cells across all three requests (crafty and hmmer under 2
    // variants each): never more than one computation per unique cell,
    // however the threads interleaved.
    assert_eq!(eng.computed_cells(), 4);
}

#[test]
fn identical_inflight_requests_compute_each_cell_exactly_once() {
    let dir = TempDir::new("coalesce");
    let eng = Arc::new(engine_with(&dir, |c| c.workers = 2));
    let scenario = tiny("cc_dup", &["crafty", "hmmer"]);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let eng = Arc::clone(&eng);
            let s = scenario.clone();
            std::thread::spawn(move || eng.submit(&s, Format::Table).unwrap())
        })
        .collect();
    let mut bodies = Vec::new();
    for h in handles {
        let resp = h.join().unwrap();
        assert_eq!(resp.cells, 4);
        bodies.push(resp.body);
    }
    assert!(bodies.windows(2).all(|w| w[0] == w[1]), "all bodies agree");
    // THE exactly-once witness: 8 concurrent identical requests, 4 unique
    // cells, 4 simulations total — every duplicate either coalesced onto
    // the in-flight slot or hit the cache.
    assert_eq!(eng.computed_cells(), 4);
}

#[test]
fn duplicate_variant_labels_share_one_computation() {
    let dir = TempDir::new("dup-label");
    let eng = engine_with(&dir, |_| {});
    // Two labels, same machine: the matrix has 2 cells per workload but
    // only 1 unique address.
    let scenario = Scenario::builder("cc_twin")
        .options(RunOptions::default().warmup(500).measure(1_500))
        .workloads(&["crafty"])
        .variant("a", VariantSpec::hpca16())
        .variant("b", VariantSpec::hpca16())
        .build()
        .unwrap();
    let resp = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(resp.cells, 2);
    assert_eq!(eng.computed_cells(), 1, "twin cells simulate once");
    // Both labelled columns render identical numbers.
    let grid = scenario.to_sweep().unwrap().run().unwrap();
    assert_eq!(
        grid.get(0, "a").unwrap().stats,
        grid.get(0, "b").unwrap().stats
    );
    assert_eq!(resp.body, render_report(&scenario, &grid).unwrap());
}

#[test]
fn admission_control_rejects_misses_when_full_but_serves_hits() {
    let dir = TempDir::new("busy");
    let scenario = tiny("cc_busy", &["crafty"]);

    // max_pending = 0: every miss is over capacity, deterministically.
    let strict = engine_with(&dir, |c| c.max_pending = 0);
    match strict.submit(&scenario, Format::Table) {
        Err(ServeError::Busy { pending, max }) => {
            assert_eq!(max, 0);
            assert_eq!(pending, 0);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert_eq!(strict.computed_cells(), 0);
    drop(strict);

    // Warm the cache with a permissive engine...
    let warm = engine_with(&dir, |_| {});
    warm.submit(&scenario, Format::Table).unwrap();
    drop(warm);

    // ...and the strict engine now serves the same request fine:
    // admission control gates *computation*, never cache hits.
    let strict = engine_with(&dir, |c| c.max_pending = 0);
    let resp = strict.submit(&scenario, Format::Table).unwrap();
    assert_eq!(resp.computed, 0);
    assert_eq!(resp.cached, 2);
}

#[test]
fn timed_out_cells_still_complete_and_warm_the_cache() {
    let dir = TempDir::new("timeout");
    let scenario = tiny("cc_timeout", &["crafty"]);
    let eng = engine_with(&dir, |c| c.timeout_ms = 0);

    match eng.submit(&scenario, Format::Table) {
        Err(ServeError::Timeout { ms }) => assert_eq!(ms, 0),
        other => panic!("expected Timeout, got {other:?}"),
    }

    // The abandoned cells keep computing; wait for the pool to finish.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while eng.computed_cells() < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned cells never completed"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The retry is served entirely from the cache — instantly, so the
    // zero deadline never fires.
    let resp = eng.submit(&scenario, Format::Table).unwrap();
    assert_eq!(resp.computed, 0);
    assert_eq!(resp.cached, 2);
}

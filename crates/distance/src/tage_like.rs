//! The paper's TAGE-like Instruction Distance predictor (§3.1).
//!
//! One direct-mapped (but tagged) base table plus five partially tagged
//! components indexed with the PC, 2/5/11/27/64 bits of global branch
//! history and 16 bits of path history. Entries hold an 8-bit distance and
//! a 4-bit confidence counter; a prediction is used only when confidence is
//! saturated, and confidence resets on a distance mismatch (mispredicting
//! is costlier than not predicting). Geometry: 4096 (5b tag), 512 (10b),
//! 512 (10b), 256 (11b), 128 (11b), 128 (12b) — 12.2KB.

use crate::DistancePredictor;
use regshare_types::hasher::mix64;
use regshare_types::{Addr, HistorySnapshot};

/// Geometry of the TAGE-like predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageDistanceConfig {
    /// (log2 entries, tag bits, history length) per component; index 0 is
    /// the base component with history length 0.
    pub components: Vec<(u32, u32, u32)>,
    /// Confidence bits.
    pub conf_bits: u32,
}

impl TageDistanceConfig {
    /// The paper's configuration (5.25K entries total, 12.2KB).
    pub fn hpca16() -> TageDistanceConfig {
        TageDistanceConfig {
            components: vec![
                (12, 5, 0),  // 4096-entry base, 5b tag
                (9, 10, 2),  // 512, 10b, h=2
                (9, 10, 5),  // 512, 10b, h=5
                (8, 11, 11), // 256, 11b, h=11
                (7, 11, 27), // 128, 11b, h=27
                (7, 12, 64), // 128, 12b, h=64
            ],
            conf_bits: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u32,
    distance: u8,
    conf: u8,
}

/// The TAGE-like Instruction Distance predictor. See the module docs.
///
/// # Examples
///
/// ```
/// use regshare_distance::{TageDistance, TageDistanceConfig, DistancePredictor};
/// use regshare_types::HistorySnapshot;
///
/// let mut p = TageDistance::new(TageDistanceConfig::hpca16());
/// let h = HistorySnapshot::default();
/// for _ in 0..20 {
///     p.train(0x400100, h, Some(9));
/// }
/// assert_eq!(p.predict(0x400100, h), Some(9));
/// ```
#[derive(Debug)]
pub struct TageDistance {
    cfg: TageDistanceConfig,
    tables: Vec<Vec<Entry>>,
    max_conf: u8,
    lfsr: u32,
    predictions: u64,
    confident: u64,
}

impl TageDistance {
    /// Builds the predictor.
    pub fn new(cfg: TageDistanceConfig) -> TageDistance {
        TageDistance {
            tables: cfg
                .components
                .iter()
                .map(|&(log_n, _, _)| vec![Entry::default(); 1 << log_n])
                .collect(),
            max_conf: ((1u32 << cfg.conf_bits) - 1) as u8,
            cfg,
            lfsr: 0xbeef,
            predictions: 0,
            confident: 0,
        }
    }

    #[inline]
    fn rand(&mut self) -> u32 {
        let bit = (self.lfsr ^ (self.lfsr >> 2) ^ (self.lfsr >> 3) ^ (self.lfsr >> 5)) & 1;
        self.lfsr = (self.lfsr >> 1) | (bit << 15);
        self.lfsr
    }

    /// Index and tag of component `c` for (pc, history).
    #[inline]
    fn key(&self, c: usize, pc: Addr, hist: HistorySnapshot) -> (usize, u32) {
        let (log_n, tag_bits, hlen) = self.cfg.components[c];
        let hbits = if hlen == 0 {
            0
        } else if hlen >= 64 {
            hist.ghist
        } else {
            hist.ghist & ((1u64 << hlen) - 1)
        };
        // Mix history with 16 bits of path history and the PC (§3.1).
        let path = if hlen == 0 { 0 } else { hist.path as u64 };
        let h = mix64(pc ^ hbits.wrapping_mul(0x9e37_79b9) ^ (path << 20) ^ ((c as u64) << 60));
        (
            (h as usize) & ((1 << log_n) - 1),
            ((h >> 34) as u32) & ((1 << tag_bits) - 1),
        )
    }

    /// Longest-history component with a tag hit.
    fn provider(&self, pc: Addr, hist: HistorySnapshot) -> Option<(usize, usize)> {
        for c in (0..self.cfg.components.len()).rev() {
            let (idx, tag) = self.key(c, pc, hist);
            let e = self.tables[c][idx];
            if e.valid && e.tag == tag {
                return Some((c, idx));
            }
        }
        None
    }

    /// (predictions made, confident predictions) so far.
    pub fn usage(&self) -> (u64, u64) {
        (self.predictions, self.confident)
    }
}

impl DistancePredictor for TageDistance {
    fn name(&self) -> &'static str {
        "tage-like"
    }

    fn predict(&mut self, pc: Addr, hist: HistorySnapshot) -> Option<u64> {
        self.predictions += 1;
        let (c, idx) = self.provider(pc, hist)?;
        let e = self.tables[c][idx];
        if e.conf >= self.max_conf {
            self.confident += 1;
            Some(e.distance as u64)
        } else {
            None
        }
    }

    fn train(&mut self, pc: Addr, hist: HistorySnapshot, observed: Option<u64>) {
        let observed8 = observed.filter(|&d| d <= u8::MAX as u64).map(|d| d as u8);
        match self.provider(pc, hist) {
            Some((c, idx)) => {
                let e = &mut self.tables[c][idx];
                match observed8 {
                    Some(d) if e.distance == d => {
                        e.conf = (e.conf + 1).min(self.max_conf);
                    }
                    Some(d) => {
                        // Distance mismatch: reset (or retrain a fresh entry),
                        // and allocate in a longer-history component so the
                        // history-correlated case can be captured.
                        if e.conf == 0 {
                            e.distance = d;
                        } else {
                            e.conf = 0;
                        }
                        self.allocate_above(c, pc, hist, d);
                    }
                    None => {
                        e.conf = 0;
                    }
                }
            }
            None => {
                if let Some(d) = observed8 {
                    // Allocate in the base table, plus one tagged component.
                    let (idx0, tag0) = self.key(0, pc, hist);
                    let e0 = &mut self.tables[0][idx0];
                    if !e0.valid || e0.conf == 0 {
                        *e0 = Entry {
                            valid: true,
                            tag: tag0,
                            distance: d,
                            conf: 0,
                        };
                    }
                    self.allocate_above(0, pc, hist, d);
                }
            }
        }
    }

    fn storage_bits(&self) -> usize {
        self.cfg
            .components
            .iter()
            .map(|&(log_n, tag_bits, _)| {
                (1usize << log_n) * (1 + tag_bits as usize + 8 + self.cfg.conf_bits as usize)
            })
            .sum()
    }

    fn save_state(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        use regshare_types::snapshot::Snap;
        w.put_len(self.tables.len());
        for t in &self.tables {
            t.encode(w);
        }
        w.put_u32(self.lfsr);
        w.put_u64(self.predictions);
        w.put_u64(self.confident);
    }

    fn load_state(
        &mut self,
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<(), regshare_types::snapshot::SnapError> {
        use regshare_types::snapshot::Snap;
        let n = r.get_len()?;
        if n != self.tables.len() {
            return Err(r.corrupt("TageDistance component count"));
        }
        for t in &mut self.tables {
            let decoded: Vec<Entry> = Snap::decode(r)?;
            if decoded.len() != t.len() {
                return Err(r.corrupt("TageDistance table size"));
            }
            *t = decoded;
        }
        self.lfsr = r.get_u32()?;
        self.predictions = r.get_u64()?;
        self.confident = r.get_u64()?;
        Ok(())
    }
}

regshare_types::impl_snap!(Entry {
    valid,
    tag,
    distance,
    conf
});

impl TageDistance {
    /// Allocates a fresh entry in one component with history longer than
    /// `c`, preferring victims with zero confidence (TAGE-style).
    fn allocate_above(&mut self, c: usize, pc: Addr, hist: HistorySnapshot, d: u8) {
        let n = self.cfg.components.len();
        if c + 1 >= n {
            return;
        }
        let start = c + 1 + (self.rand() as usize % 2).min(n - c - 2);
        for cand in start..n {
            let (idx, tag) = self.key(cand, pc, hist);
            let e = &mut self.tables[cand][idx];
            if !e.valid || e.conf == 0 {
                *e = Entry {
                    valid: true,
                    tag,
                    distance: d,
                    conf: 0,
                };
                return;
            }
        }
        // No victim: decay confidences along the allocation path.
        for cand in c + 1..n {
            let (idx, _) = self.key(cand, pc, hist);
            let e = &mut self.tables[cand][idx];
            e.conf = e.conf.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(bits: u64) -> HistorySnapshot {
        HistorySnapshot {
            ghist: bits,
            path: (bits as u16).wrapping_mul(31),
        }
    }

    #[test]
    fn stable_distance_learned_via_base() {
        let mut p = TageDistance::new(TageDistanceConfig::hpca16());
        for _ in 0..20 {
            p.train(0x400100, h(0), Some(14));
        }
        assert_eq!(p.predict(0x400100, h(0)), Some(14));
    }

    #[test]
    fn history_correlated_distance_learned_in_tagged_components() {
        // Distance depends on the last branch outcome — the PC-only base
        // entry thrashes, but history-indexed components separate the cases.
        let mut p = TageDistance::new(TageDistanceConfig::hpca16());
        let pc = 0x400200;
        for _ in 0..200 {
            p.train(pc, h(0b10), Some(6));
            p.train(pc, h(0b11), Some(30));
        }
        assert_eq!(p.predict(pc, h(0b10)), Some(6));
        assert_eq!(p.predict(pc, h(0b11)), Some(30));
    }

    #[test]
    fn no_pair_decays_confidence() {
        let mut p = TageDistance::new(TageDistanceConfig::hpca16());
        for _ in 0..20 {
            p.train(0x400300, h(0), Some(9));
        }
        assert!(p.predict(0x400300, h(0)).is_some());
        p.train(0x400300, h(0), None);
        assert_eq!(p.predict(0x400300, h(0)), None);
    }

    #[test]
    fn distances_beyond_rob_are_untrainable() {
        let mut p = TageDistance::new(TageDistanceConfig::hpca16());
        for _ in 0..40 {
            p.train(0x400400, h(0), Some(300)); // > 255: 8-bit field
        }
        assert_eq!(p.predict(0x400400, h(0)), None);
    }

    #[test]
    fn storage_is_about_12kb() {
        let p = TageDistance::new(TageDistanceConfig::hpca16());
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        assert!((11.5..=13.5).contains(&kb), "TAGE-like storage {kb}KB");
        // Paper: 5.25K entries total.
        let entries: usize = TageDistanceConfig::hpca16()
            .components
            .iter()
            .map(|&(l, _, _)| 1usize << l)
            .sum();
        assert_eq!(entries, 4096 + 512 + 512 + 256 + 128 + 128);
    }

    #[test]
    fn usage_counters_track() {
        let mut p = TageDistance::new(TageDistanceConfig::hpca16());
        let _ = p.predict(0x1, h(0));
        assert_eq!(p.usage().0, 1);
    }
}

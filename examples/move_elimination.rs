//! Move elimination study: how many ISRB entries does ME need?
//!
//! Reproduces the shape of the paper's Figure 5 on one move-heavy workload:
//! a handful of entries captures nearly all of the potential.
//!
//! ```sh
//! cargo run --release --example move_elimination
//! ```

use regshare::core::{CoreConfig, Simulator};
use regshare::types::stats::speedup_pct;
use regshare::workloads::suite;

fn run(program: &regshare::isa::Program, cfg: CoreConfig) -> f64 {
    let mut sim = Simulator::new(program, cfg);
    sim.run(40_000);
    let warm = *sim.stats();
    sim.run(160_000);
    sim.stats().delta_since(&warm).ipc()
}

fn main() {
    let wl = suite()
        .into_iter()
        .find(|w| w.name == "vortex")
        .expect("known workload");
    let program = wl.build();
    let base = run(&program, CoreConfig::hpca16());
    println!("workload {}, baseline IPC {:.3}", wl.name, base);
    println!("{:>10}  {:>9}", "ISRB", "speedup");
    for entries in [1usize, 2, 4, 8, 16, 32, 0] {
        let ipc = run(
            &program,
            CoreConfig::hpca16().with_me().with_isrb_entries(entries),
        );
        let label = if entries == 0 {
            "unlimited".to_string()
        } else {
            entries.to_string()
        };
        println!("{label:>10}  {:+8.2}%", speedup_pct(base, ipc));
    }
}

//! Statistics plumbing: named counters, ratios and summary math shared by the
//! simulator and the experiment harness.

use std::fmt;

/// A running mean over `u64` samples (used e.g. for the paper's §6.3
/// "average distance between ISRB allocations" metric).
///
/// # Examples
///
/// ```
/// use regshare_types::stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.add(10);
/// m.add(20);
/// assert_eq!(m.mean(), Some(15.0));
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: u128,
    count: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> RunningMean {
        RunningMean::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn add(&mut self, sample: u64) {
        self.sum += sample as u128;
        self.count += 1;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Arithmetic mean, or `None` if no samples were added.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }
}

crate::impl_snap!(RunningMean {
    sum,
    count,
    min,
    max
});

impl fmt::Display for RunningMean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "{m:.2} (n={}, min={:?}, max={:?})",
                self.count, self.min, self.max
            ),
            None => write!(f, "n/a (no samples)"),
        }
    }
}

/// Geometric mean of positive values; ignores an empty slice by returning
/// `None` and panics on non-positive entries in debug builds.
///
/// Speedup aggregation in the paper uses geometric means.
///
/// # Examples
///
/// ```
/// use regshare_types::stats::geomean;
/// let g = geomean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            debug_assert!(v > 0.0, "geomean of non-positive value {v}");
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Percentage helper: `part / whole * 100`, `0` when `whole == 0`.
///
/// # Examples
///
/// ```
/// use regshare_types::stats::pct;
/// assert_eq!(pct(1, 4), 25.0);
/// assert_eq!(pct(1, 0), 0.0);
/// ```
#[inline]
pub fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Speedup of `new` IPC over `base` IPC expressed as a percentage
/// (`5.0` means 5% faster). Returns `0` if the baseline is degenerate.
///
/// # Examples
///
/// ```
/// use regshare_types::stats::speedup_pct;
/// assert!((speedup_pct(1.0, 1.05) - 5.0).abs() < 1e-9);
/// ```
#[inline]
pub fn speedup_pct(base_ipc: f64, new_ipc: f64) -> f64 {
    if base_ipc <= 0.0 {
        0.0
    } else {
        (new_ipc / base_ipc - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_tracks_extremes() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), None);
        for v in [5, 1, 9] {
            m.add(v);
        }
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.min(), Some(1));
        assert_eq!(m.max(), Some(9));
        assert!(m.to_string().contains("n=3"));
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        let g = geomean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_pct() {
        assert_eq!(pct(3, 12), 25.0);
        assert!((speedup_pct(2.0, 2.2) - 10.0).abs() < 1e-9);
        assert_eq!(speedup_pct(0.0, 1.0), 0.0);
    }
}

//! Regenerates the checked-in `.scenario` files under `scenarios/` from
//! the built-in presets, so the files and the presets can never drift
//! (`crates/bench/tests/scenario_files.rs` asserts byte equality).
//!
//! ```sh
//! cargo run -p regshare-bench --bin gen_scenarios
//! ```

use regshare_bench::{preset, SCENARIO_PRESETS};
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    std::fs::create_dir_all(&dir).expect("create scenarios/");
    for (name, _) in SCENARIO_PRESETS {
        let path = dir.join(format!("{name}.scenario"));
        let text = preset(name).expect("built-in preset").render();
        std::fs::write(&path, &text).expect("write scenario file");
        println!("wrote {}", path.display());
    }
}

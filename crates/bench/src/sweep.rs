//! Deterministic parallel sweep engine.
//!
//! Every figure in the paper's evaluation is a (workload × configuration)
//! matrix. A [`SweepSpec`] declares that matrix once — a list of workloads
//! and a list of labelled [`Variant`] core configurations — and [`SweepSpec::run`]
//! expands it into independent jobs, shards them across a `std::thread`
//! worker pool, and merges the results back **in spec order** into a
//! [`SweepGrid`].
//!
//! Determinism: each job is a pure function of (program, config, window), so
//! scheduling order cannot affect any individual result, and because the
//! grid is assembled by job index rather than completion order, the rendered
//! tables and `csv:` blocks are byte-identical whether the sweep runs on one
//! thread or sixteen. `REGSHARE_JOBS` selects the worker count (default:
//! available parallelism); [`SweepSpec::jobs`] overrides it in code.
//!
//! Programs are memoized per workload: each of the synthetic programs is
//! built exactly once (lazily, by whichever worker first needs it) and
//! shared read-only across every configuration variant.

use crate::harness::{measure_program, Measurement, RunWindow};
use regshare_core::CoreConfig;
use regshare_isa::Program;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::Workload;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

/// Any way a sweep can fail at run time: a grid accessor asked for a label
/// the spec never declared, a worker job died (a simulator bug surfaced as
/// a panic — caught so long-running callers like the serve daemon degrade
/// to an error reply instead of aborting), or hand-assembled cells with the
/// wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A label no variant of this sweep carries.
    UnknownVariant {
        /// The unresolvable label.
        label: String,
    },
    /// One (workload × variant) job panicked instead of measuring.
    JobFailed {
        /// The workload's name.
        workload: String,
        /// The variant's label.
        label: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// [`SweepGrid::from_parts`] got a cell count that does not match
    /// `workloads × labels`.
    Shape {
        /// `workloads.len() * labels.len()`.
        expected: usize,
        /// The cell count actually supplied.
        got: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::UnknownVariant { label } => {
                write!(f, "unknown sweep variant {label:?}")
            }
            SweepError::JobFailed {
                workload,
                label,
                detail,
            } => write!(f, "sweep job {workload}/{label} failed: {detail}"),
            SweepError::Shape { expected, got } => write!(
                f,
                "grid shape mismatch: expected {expected} cells, got {got}"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Renders a caught panic payload into a human-readable detail string
/// (used for [`SweepError::JobFailed`], and by the serve daemon's
/// per-cell failure reporting).
pub fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// One labelled core configuration of a sweep.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Column label (used by [`SweepGrid::get`] / row accessors).
    pub label: String,
    /// The configuration to measure.
    pub cfg: CoreConfig,
}

/// Worker count from the deprecated `REGSHARE_JOBS` fallback, defaulting
/// to available parallelism — equivalent to
/// [`RunOptions::job_count`](crate::options::RunOptions::job_count) with no
/// explicit jobs value.
pub fn jobs_from_env() -> usize {
    crate::options::RunOptions::default().job_count()
}

/// A declarative (workloads × variants) sweep.
///
/// # Examples
///
/// ```
/// use regshare_bench::{RunWindow, SweepSpec};
/// use regshare_core::CoreConfig;
/// use regshare_workloads::mini;
///
/// let grid = SweepSpec::new(vec![mini()], RunWindow { warmup: 500, measure: 1_500 })
///     .variant("base", CoreConfig::hpca16())
///     .variant("both", CoreConfig::hpca16().with_me().with_smb())
///     .jobs(2)
///     .run()
///     .unwrap();
/// let row = grid.rows().next().unwrap();
/// assert!(row.get("base").unwrap().ipc() > 0.0);
/// assert!(row.get("both").unwrap().ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct SweepSpec {
    workloads: Vec<Workload>,
    variants: Vec<Variant>,
    window: RunWindow,
    jobs: Option<usize>,
}

impl SweepSpec {
    /// Creates a spec over `workloads` with no variants yet.
    pub fn new(workloads: Vec<Workload>, window: RunWindow) -> SweepSpec {
        SweepSpec {
            workloads,
            variants: Vec::new(),
            window,
            jobs: None,
        }
    }

    /// Appends a labelled configuration column.
    ///
    /// # Panics
    ///
    /// Panics if `label` is already taken — a duplicate would silently
    /// shadow the later variant's measurements in every grid accessor.
    pub fn variant(mut self, label: impl Into<String>, cfg: CoreConfig) -> SweepSpec {
        let label = label.into();
        assert!(
            self.variants.iter().all(|v| v.label != label),
            "duplicate sweep variant label {label:?}"
        );
        self.variants.push(Variant { label, cfg });
        self
    }

    /// Overrides the worker count (otherwise `REGSHARE_JOBS` / available
    /// parallelism decides).
    pub fn jobs(mut self, jobs: usize) -> SweepSpec {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// The worker count this spec will run with.
    pub fn job_count(&self) -> usize {
        self.jobs.unwrap_or_else(jobs_from_env)
    }

    /// Expands the matrix into jobs, runs them on the worker pool, and
    /// merges the measurements back in spec order.
    ///
    /// A worker panic (a simulator bug) is caught and reported as
    /// [`SweepError::JobFailed`] naming the cell, so long-running callers
    /// — the serve daemon above all — degrade to an error instead of
    /// aborting the process.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no variants (an API-misuse bug in the
    /// caller; every scenario front door rejects it long before here).
    pub fn run(self) -> Result<SweepGrid, SweepError> {
        assert!(
            !self.variants.is_empty(),
            "sweep spec needs at least one variant"
        );
        let n_jobs_total = self.workloads.len() * self.variants.len();
        let workers = self.job_count().min(n_jobs_total.max(1));
        // Lazy per-workload program memoization: built once by whichever
        // worker gets there first, shared read-only by all variants.
        let programs: Vec<OnceLock<Program>> =
            self.workloads.iter().map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let n_variants = self.variants.len();
        let mut cells: Vec<Option<Result<Measurement, String>>> = Vec::with_capacity(n_jobs_total);
        cells.resize_with(n_jobs_total, || None);

        std::thread::scope(|s| {
            let (tx, rx) = mpsc::channel::<(usize, Result<Measurement, String>)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let programs = &programs;
                let workloads = &self.workloads;
                let variants = &self.variants;
                let window = self.window;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs_total {
                        break;
                    }
                    let (w, v) = (i / n_variants, i % n_variants);
                    // Shared state is a program cache and an atomic job
                    // counter; a panicked job leaves both usable, so
                    // AssertUnwindSafe holds.
                    let m = catch_unwind(AssertUnwindSafe(|| {
                        let program = programs[w].get_or_init(|| workloads[w].build());
                        measure_program(
                            workloads[w].name.as_str(),
                            program,
                            variants[v].cfg.clone(),
                            window,
                        )
                    }))
                    .map_err(panic_detail);
                    // The receiver outlives all senders inside this scope;
                    // a send failure means the main thread died first.
                    let _ = tx.send((i, m));
                });
            }
            drop(tx);
            for (i, m) in rx {
                cells[i] = Some(m);
            }
        });

        let labels: Vec<String> = self.variants.into_iter().map(|v| v.label).collect();
        let mut merged = Vec::with_capacity(n_jobs_total);
        for (i, cell) in cells.into_iter().enumerate() {
            let job_failed = |detail: String| SweepError::JobFailed {
                workload: self.workloads[i / n_variants].name.clone(),
                label: labels[i % n_variants].clone(),
                detail,
            };
            match cell {
                Some(Ok(m)) => merged.push(m),
                Some(Err(detail)) => return Err(job_failed(detail)),
                None => return Err(job_failed("worker exited without a result".to_string())),
            }
        }
        Ok(SweepGrid {
            workloads: self.workloads,
            labels,
            cells: merged,
        })
    }
}

/// The completed (workload × variant) measurement matrix, in spec order.
#[derive(Debug)]
pub struct SweepGrid {
    workloads: Vec<Workload>,
    labels: Vec<String>,
    /// Row-major: `cells[w * labels.len() + v]`.
    cells: Vec<Measurement>,
}

impl SweepGrid {
    /// Assembles a grid from already-measured cells in row-major order
    /// (`cells[w * labels.len() + v]`) — the merge path for runners that
    /// obtain cells outside the parallel engine: the checkpointed serial
    /// runner and the serve daemon's cache-aware scheduler.
    ///
    /// Rejects a cell count that does not match `workloads × labels` with
    /// [`SweepError::Shape`] instead of asserting, so the daemon's merge
    /// path cannot abort the process.
    pub fn from_parts(
        workloads: Vec<Workload>,
        labels: Vec<String>,
        cells: Vec<Measurement>,
    ) -> Result<SweepGrid, SweepError> {
        let expected = workloads.len() * labels.len();
        if cells.len() != expected {
            return Err(SweepError::Shape {
                expected,
                got: cells.len(),
            });
        }
        Ok(SweepGrid {
            workloads,
            labels,
            cells,
        })
    }

    /// The workloads, in spec order.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// The variant labels, in spec order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    fn variant_index(&self, label: &str) -> Result<usize, SweepError> {
        self.labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| SweepError::UnknownVariant {
                label: label.to_string(),
            })
    }

    /// The measurement for workload index `w` under `label`; a label the
    /// spec never declared is [`SweepError::UnknownVariant`], not a panic.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range workload index.
    pub fn get(&self, w: usize, label: &str) -> Result<&Measurement, SweepError> {
        Ok(&self.cells[w * self.labels.len() + self.variant_index(label)?])
    }

    /// The measurement for the workload named `name` under `label`;
    /// `None` if either name is absent from this sweep.
    pub fn by_name(&self, name: &str, label: &str) -> Option<&Measurement> {
        let w = self.workloads.iter().position(|wl| wl.name == name)?;
        self.get(w, label).ok()
    }

    /// Iterates rows (one per workload) in spec order.
    pub fn rows(&self) -> impl Iterator<Item = SweepRow<'_>> {
        (0..self.workloads.len()).map(move |w| SweepRow { grid: self, w })
    }

    /// Geomean speedup (percent) of `label` over `base` across all
    /// workloads of the sweep.
    pub fn geomean_speedup(&self, base: &str, label: &str) -> Result<f64, SweepError> {
        let mut ratios = Vec::with_capacity(self.workloads.len());
        for w in 0..self.workloads.len() {
            ratios.push(
                1.0 + speedup_pct(self.get(w, base)?.ipc(), self.get(w, label)?.ipc()) / 100.0,
            );
        }
        Ok((geomean(&ratios).unwrap_or(1.0) - 1.0) * 100.0)
    }
}

/// One workload's row of a [`SweepGrid`].
#[derive(Debug, Clone, Copy)]
pub struct SweepRow<'a> {
    grid: &'a SweepGrid,
    w: usize,
}

impl<'a> SweepRow<'a> {
    /// The row's workload.
    pub fn workload(&self) -> &'a Workload {
        &self.grid.workloads[self.w]
    }

    /// The row's measurement under `label`; an unknown label is
    /// [`SweepError::UnknownVariant`], not a panic.
    pub fn get(&self, label: &str) -> Result<&'a Measurement, SweepError> {
        self.grid.get(self.w, label)
    }

    /// Speedup (percent) of `label` over `base` for this workload.
    pub fn speedup(&self, base: &str, label: &str) -> Result<f64, SweepError> {
        Ok(speedup_pct(self.get(base)?.ipc(), self.get(label)?.ipc()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_workloads::mini;

    fn tiny_window() -> RunWindow {
        RunWindow {
            warmup: 500,
            measure: 1_500,
        }
    }

    #[test]
    fn grid_is_indexed_in_spec_order() {
        let grid = SweepSpec::new(vec![mini()], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .variant("me", CoreConfig::hpca16().with_me())
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(grid.labels(), &["base".to_string(), "me".to_string()]);
        assert_eq!(grid.workloads().len(), 1);
        let row = grid.rows().next().unwrap();
        assert_eq!(row.workload().name, "mini");
        assert!(row.get("base").unwrap().ipc() > 0.0);
        assert!(grid.by_name("mini", "me").is_some());
        assert!(grid.by_name("absent", "me").is_none());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = |jobs| {
            SweepSpec::new(vec![mini()], tiny_window())
                .variant("base", CoreConfig::hpca16())
                .variant("both", CoreConfig::hpca16().with_me().with_smb())
                .jobs(jobs)
                .run()
                .unwrap()
        };
        let (a, b) = (spec(1), spec(3));
        for w in 0..1 {
            for label in ["base", "both"] {
                assert_eq!(
                    a.get(w, label).unwrap().stats,
                    b.get(w, label).unwrap().stats
                );
            }
        }
    }

    #[test]
    fn unknown_label_is_a_typed_error_not_a_panic() {
        let grid = SweepSpec::new(vec![mini()], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .jobs(1)
            .run()
            .unwrap();
        let err = grid.get(0, "nope").unwrap_err();
        assert_eq!(
            err,
            SweepError::UnknownVariant {
                label: "nope".into()
            }
        );
        assert!(err.to_string().contains("unknown sweep variant"));
        let row = grid.rows().next().unwrap();
        assert!(row.get("nope").is_err());
        assert!(row.speedup("base", "nope").is_err());
        assert!(grid.geomean_speedup("nope", "base").is_err());
        assert!(grid.by_name("mini", "nope").is_none());
    }

    #[test]
    fn worker_panics_surface_as_job_failed_not_aborts() {
        // A hand-built spec with an unregistered profile builds a workload
        // whose program generation panics inside the worker.
        let doomed = regshare_workloads::fuzz::FuzzSpec {
            profile: "doom".into(),
            seed: 1,
        }
        .workload();
        let err = SweepSpec::new(vec![mini(), doomed], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .jobs(2)
            .run()
            .unwrap_err();
        match err {
            SweepError::JobFailed {
                workload,
                label,
                detail,
            } => {
                assert_eq!(workload, "fuzz-doom-1");
                assert_eq!(label, "base");
                assert!(detail.contains("unknown fuzz profile"), "{detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn from_parts_rejects_shape_mismatches() {
        let grid = SweepSpec::new(vec![mini()], tiny_window())
            .variant("base", CoreConfig::hpca16())
            .jobs(1)
            .run()
            .unwrap();
        let cell = grid.get(0, "base").unwrap().clone();
        let rebuilt = SweepGrid::from_parts(
            grid.workloads().to_vec(),
            grid.labels().to_vec(),
            vec![cell.clone()],
        )
        .unwrap();
        assert_eq!(rebuilt.get(0, "base").unwrap().stats, cell.stats);
        let err = SweepGrid::from_parts(
            grid.workloads().to_vec(),
            grid.labels().to_vec(),
            vec![cell.clone(), cell],
        )
        .unwrap_err();
        assert_eq!(
            err,
            SweepError::Shape {
                expected: 1,
                got: 2
            }
        );
    }
}

//! Speculative return address stack (RAS).

/// A fixed-capacity circular return-address stack predicting return targets.
///
/// The RAS is updated speculatively at fetch (push on call, pop on return),
/// so the whole stack supports snapshot/restore for misprediction recovery.
/// Entries are static instruction indices.
///
/// # Examples
///
/// ```
/// use regshare_predictors::ReturnAddressStack;
/// let mut ras = ReturnAddressStack::new(32);
/// ras.push(7);
/// assert_eq!(ras.pop(), Some(7));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnAddressStack {
    entries: Vec<u32>,
    /// Index of the next free slot (top of stack is `top - 1`).
    top: usize,
    /// Number of valid entries (≤ capacity; old entries get overwritten).
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnAddressStack {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Current number of valid entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a return target (on call). Overwrites the oldest entry when
    /// full, as hardware does.
    pub fn push(&mut self, ret_sidx: u32) {
        let cap = self.entries.len();
        self.entries[self.top] = ret_sidx;
        self.top = (self.top + 1) % cap;
        self.depth = (self.depth + 1).min(cap);
    }

    /// Pops the predicted return target (on return), or `None` if empty.
    pub fn pop(&mut self) -> Option<u32> {
        if self.depth == 0 {
            return None;
        }
        let cap = self.entries.len();
        self.top = (self.top + cap - 1) % cap;
        self.depth -= 1;
        Some(self.entries[self.top])
    }

    /// Snapshot for misprediction recovery.
    pub fn snapshot(&self) -> ReturnAddressStack {
        self.clone()
    }

    /// Restores a snapshot taken with [`Self::snapshot`]. In-place: when
    /// the capacities match (the simulator's case — every snapshot comes
    /// from the same configuration) the entries are copied without
    /// allocating, which keeps snapshot pooling on the recovery path free.
    pub fn restore(&mut self, snap: &ReturnAddressStack) {
        if self.entries.len() == snap.entries.len() {
            self.entries.copy_from_slice(&snap.entries);
        } else {
            self.entries.clone_from(&snap.entries);
        }
        self.top = snap.top;
        self.depth = snap.depth;
    }
}

impl regshare_types::snapshot::Snap for ReturnAddressStack {
    fn encode(&self, w: &mut regshare_types::snapshot::SnapWriter) {
        self.entries.encode(w);
        w.put_u64(self.top as u64);
        w.put_u64(self.depth as u64);
    }
    fn decode(
        r: &mut regshare_types::snapshot::SnapReader<'_>,
    ) -> Result<Self, regshare_types::snapshot::SnapError> {
        let entries: Vec<u32> = regshare_types::snapshot::Snap::decode(r)?;
        let top = r.get_u64()? as usize;
        let depth = r.get_u64()? as usize;
        if entries.is_empty() || top >= entries.len() || depth > entries.len() {
            return Err(r.corrupt("ReturnAddressStack bounds"));
        }
        Ok(ReturnAddressStack {
            entries,
            top,
            depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // evicts 1
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(10);
        ras.push(20);
        let snap = ras.snapshot();
        ras.pop();
        ras.push(99);
        ras.push(98);
        ras.restore(&snap);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}

//! **Figure 6(a)+(b)**: speculative memory bypassing (store-load +
//! load-load, in-window only).
//!
//! (a) Speedup over baseline vs ISRB entries (16/24/32/∞) with the
//!     TAGE-like distance predictor, plus the NoSQ-style predictor at ∞
//!     (the paper finds the 2-table predictor "does not improve performance
//!     much, contrarily to our TAGE-like predictor").
//! (b) Reduction in memory traps and false dependencies (∞ ISRB), reported
//!     for workloads where the baseline events occur reasonably often.
//!
//! Paper shape: SMB needs ~24 entries; speedups correlate with trap /
//! false-dependency reductions; TAGE-like > NoSQ-style.

use regshare_bench::{measure, RunWindow, Table};
use regshare_core::{CoreConfig, DistancePredictorKind};
use regshare_distance::NosqConfig;
use regshare_types::stats::{geomean, speedup_pct};
use regshare_workloads::suite;

fn main() {
    let window = RunWindow::from_env();
    let sizes = [16usize, 24, 32, 0];
    let mut t = Table::new(vec![
        "bench",
        "base_ipc",
        "smb16%",
        "smb24%",
        "smb32%",
        "smbUnl%",
        "nosqUnl%",
        "loads_byp%",
    ]);
    let mut t2 = Table::new(vec![
        "bench",
        "traps_base",
        "traps_smb",
        "fdeps_base",
        "fdeps_smb",
        "speedup%",
    ]);
    let mut per_size: Vec<Vec<f64>> = vec![Vec::new(); sizes.len() + 1];
    for wl in suite() {
        let base = measure(&wl, CoreConfig::hpca16(), window);
        let mut cells = vec![wl.name.to_string(), format!("{:.3}", base.ipc())];
        let mut unl_stats = None;
        for (i, &n) in sizes.iter().enumerate() {
            let m = measure(
                &wl,
                CoreConfig::hpca16().with_smb().with_isrb_entries(n),
                window,
            );
            let sp = speedup_pct(base.ipc(), m.ipc());
            per_size[i].push(1.0 + sp / 100.0);
            cells.push(format!("{sp:+.2}"));
            if n == 0 {
                unl_stats = Some(m.clone());
            }
        }
        // NoSQ-style predictor at unlimited ISRB.
        let mut nosq_cfg = CoreConfig::hpca16().with_smb().with_isrb_entries(0);
        nosq_cfg.distance_predictor = DistancePredictorKind::Nosq(NosqConfig::hpca16());
        let nosq = measure(&wl, nosq_cfg, window);
        let nosq_sp = speedup_pct(base.ipc(), nosq.ipc());
        per_size[sizes.len()].push(1.0 + nosq_sp / 100.0);
        cells.push(format!("{nosq_sp:+.2}"));
        let unl = unl_stats.expect("unlimited run present");
        cells.push(format!("{:.1}%", unl.stats.pct_loads_bypassed()));
        t.row(cells);
        // Figure 6(b): only workloads with meaningful baseline event counts.
        if base.stats.memory_traps >= 3 || base.stats.false_dependencies >= 100 {
            t2.row(vec![
                wl.name.to_string(),
                format!("{}", base.stats.memory_traps),
                format!("{}", unl.stats.memory_traps),
                format!("{}", base.stats.false_dependencies),
                format!("{}", unl.stats.false_dependencies),
                format!("{:+.2}", speedup_pct(base.ipc(), unl.ipc())),
            ]);
        }
    }
    println!("# Figure 6(a): SMB speedup vs ISRB size (+ NoSQ-style predictor)\n");
    t.print();
    let labels = ["16", "24", "32", "unlimited", "nosq-unl"];
    for (i, l) in labels.iter().enumerate() {
        let g = (geomean(&per_size[i]).unwrap_or(1.0) - 1.0) * 100.0;
        println!("geomean speedup, {l}: {g:+.2}%");
    }
    println!("\n# Figure 6(b): trap / false-dependency reduction (unlimited ISRB)\n");
    t2.print();
}

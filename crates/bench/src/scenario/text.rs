//! The `.scenario` text format: a dependency-free TOML subset.
//!
//! ```text
//! # comment
//! name = "isrb_sizing"
//! note = "free text"
//! warmup = 1000
//! measure = 4000
//! jobs = 2
//! workloads = ["crafty", "hmmer"]
//! ```
//!
//! Generated (fuzz) scenarios replace `workloads` with a family spec:
//!
//! ```text
//! kind = "fuzz"
//! profile = "balanced"
//! seed = 1
//! programs = 8
//!
//! [variant.base]
//! preset = "hpca16"
//!
//! [variant.both24]
//! preset = "me_smb"
//! isrb_entries = 24
//! ```
//!
//! Assembled-kernel scenarios (`kind = "asm"`) run the embedded
//! `programs/*.asm` corpus, one of its kernels (`kernel = "quicksort"`),
//! or an external assembly file (`path = "my.asm"`).
//!
//! Supported values: unsigned integers, `true`/`false`, quoted strings
//! (identifier charset plus spaces for `note`), and arrays of quoted
//! strings. [`render`] emits keys in one canonical order and only when
//! set, so `render(parse(text))` is a canonical form and
//! `parse(render(scenario))` is the identity — the round-trip guarantees
//! the proptest in `tests/scenario_roundtrip.rs` pins down.

use super::{AsmSource, FuzzSource, Scenario, ScenarioError, VariantSpec};
use crate::options::RunOptions;

/// One parsed right-hand-side value.
enum Value {
    Int(u64),
    Bool(bool),
    Str(String),
    StrArray(Vec<String>),
}

fn syntax(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError::Syntax {
        line,
        msg: msg.into(),
    }
}

/// Parses a quoted string; rejects embedded quotes/backslashes (the
/// renderer never emits them, keeping round trips unambiguous).
fn parse_quoted(line: usize, s: &str) -> Result<(String, &str), ScenarioError> {
    let rest = s
        .strip_prefix('"')
        .ok_or_else(|| syntax(line, format!("expected a quoted string at {s:?}")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| syntax(line, "unterminated string"))?;
    let content = &rest[..end];
    if content.contains('\\') {
        return Err(syntax(line, "escape sequences are not supported"));
    }
    Ok((content.to_string(), &rest[end + 1..]))
}

fn parse_value(line: usize, s: &str) -> Result<Value, ScenarioError> {
    let s = s.trim();
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if s.starts_with('"') {
        let (v, rest) = parse_quoted(line, s)?;
        if !rest.trim().is_empty() {
            return Err(syntax(
                line,
                format!("trailing input after string: {rest:?}"),
            ));
        }
        return Ok(Value::Str(v));
    }
    if let Some(inner) = s.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| syntax(line, "unterminated array"))?
            .trim();
        let mut items = Vec::new();
        let mut rest = inner;
        while !rest.is_empty() {
            let (item, after) = parse_quoted(line, rest)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma.trim_start();
                if rest.is_empty() {
                    return Err(syntax(line, "trailing comma in array"));
                }
            } else if !rest.is_empty() {
                return Err(syntax(line, "expected `,` between array items"));
            }
        }
        return Ok(Value::StrArray(items));
    }
    if s.bytes().all(|b| b.is_ascii_digit()) && !s.is_empty() {
        return s
            .parse::<u64>()
            .map(Value::Int)
            .map_err(|e| syntax(line, format!("bad integer {s:?}: {e}")));
    }
    Err(syntax(line, format!("cannot parse value {s:?}")))
}

fn expect_int(line: usize, key: &str, v: Value) -> Result<u64, ScenarioError> {
    match v {
        Value::Int(n) => Ok(n),
        _ => Err(ScenarioError::WrongType {
            line,
            key: key.to_string(),
            expected: "an integer",
        }),
    }
}

fn expect_bool(line: usize, key: &str, v: Value) -> Result<bool, ScenarioError> {
    match v {
        Value::Bool(b) => Ok(b),
        _ => Err(ScenarioError::WrongType {
            line,
            key: key.to_string(),
            expected: "a boolean",
        }),
    }
}

fn expect_str(line: usize, key: &str, v: Value) -> Result<String, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s),
        _ => Err(ScenarioError::WrongType {
            line,
            key: key.to_string(),
            expected: "a string",
        }),
    }
}

/// Tracks duplicate keys within one scope (top level or one variant).
struct SeenKeys(Vec<String>);

impl SeenKeys {
    fn new() -> SeenKeys {
        SeenKeys(Vec::new())
    }

    fn check(&mut self, line: usize, key: &str) -> Result<(), ScenarioError> {
        if self.0.iter().any(|k| k == key) {
            return Err(ScenarioError::DuplicateKey {
                line,
                key: key.to_string(),
            });
        }
        self.0.push(key.to_string());
        Ok(())
    }
}

fn apply_variant_key(
    spec: &mut VariantSpec,
    line: usize,
    key: &str,
    value: Value,
) -> Result<(), ScenarioError> {
    match key {
        "preset" => spec.preset = expect_str(line, key, value)?,
        "me" => spec.me = Some(expect_bool(line, key, value)?),
        "me_fp_moves" => spec.me_fp_moves = Some(expect_bool(line, key, value)?),
        "smb" => spec.smb = Some(expect_bool(line, key, value)?),
        "smb_load_load" => spec.smb_load_load = Some(expect_bool(line, key, value)?),
        "smb_from_committed" => spec.smb_from_committed = Some(expect_bool(line, key, value)?),
        "tracker" => spec.tracker = Some(expect_str(line, key, value)?),
        "isrb_entries" => spec.isrb_entries = Some(expect_int(line, key, value)? as usize),
        "counter_bits" => spec.counter_bits = Some(expect_int(line, key, value)? as u32),
        "rename_ports" => spec.rename_ports = Some(expect_int(line, key, value)? as usize),
        "reclaim_ports" => spec.reclaim_ports = Some(expect_int(line, key, value)? as usize),
        "walk_width" => spec.walk_width = Some(expect_int(line, key, value)? as usize),
        "tracker_entries" => spec.tracker_entries = Some(expect_int(line, key, value)? as usize),
        "distance" => spec.distance = Some(expect_str(line, key, value)?),
        "ddt" => spec.ddt = Some(expect_str(line, key, value)?),
        "frontend_width" => spec.frontend_width = Some(expect_int(line, key, value)? as usize),
        "issue_width" => spec.issue_width = Some(expect_int(line, key, value)? as usize),
        "commit_width" => spec.commit_width = Some(expect_int(line, key, value)? as usize),
        "rob_entries" => spec.rob_entries = Some(expect_int(line, key, value)? as usize),
        "iq_entries" => spec.iq_entries = Some(expect_int(line, key, value)? as usize),
        "lq_entries" => spec.lq_entries = Some(expect_int(line, key, value)? as usize),
        "sq_entries" => spec.sq_entries = Some(expect_int(line, key, value)? as usize),
        "pregs_per_class" => spec.pregs_per_class = Some(expect_int(line, key, value)? as usize),
        _ => {
            return Err(ScenarioError::UnknownKey {
                line,
                key: key.to_string(),
            })
        }
    }
    Ok(())
}

/// Parses `.scenario` text into a [`Scenario`].
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut name: Option<String> = None;
    let mut note = String::new();
    let mut options = RunOptions::default();
    let mut workloads: Vec<String> = Vec::new();
    let mut kind: Option<String> = None;
    let mut checkpoint_interval: Option<u64> = None;
    let mut resume_from: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut profile: Option<String> = None;
    let mut programs: Option<u32> = None;
    let mut kernel: Option<String> = None;
    let mut path: Option<String> = None;
    let mut variants: Vec<(String, VariantSpec)> = Vec::new();
    // None = top level; Some(i) = inside variants[i].
    let mut current: Option<usize> = None;
    let mut top_seen = SeenKeys::new();
    let mut variant_seen = SeenKeys::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section
                .strip_suffix(']')
                .ok_or_else(|| syntax(lineno, "unterminated section header"))?
                .trim();
            let label = section.strip_prefix("variant.").ok_or_else(|| {
                syntax(
                    lineno,
                    format!("unknown section [{section}] (expected [variant.<label>])"),
                )
            })?;
            super::check_name("variant label", label)?;
            if variants.iter().any(|(l, _)| l == label) {
                return Err(ScenarioError::DuplicateVariant(label.to_string()));
            }
            variants.push((label.to_string(), VariantSpec::preset("hpca16")));
            current = Some(variants.len() - 1);
            variant_seen = SeenKeys::new();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| syntax(lineno, format!("expected `key = value`, got {line:?}")))?;
        let key = line[..eq].trim();
        let value = parse_value(lineno, &line[eq + 1..])?;
        match current {
            Some(v) => {
                variant_seen.check(lineno, key)?;
                apply_variant_key(&mut variants[v].1, lineno, key, value)?;
            }
            None => {
                top_seen.check(lineno, key)?;
                match key {
                    "name" => name = Some(expect_str(lineno, key, value)?),
                    "note" => note = expect_str(lineno, key, value)?,
                    "warmup" => options.warmup = Some(expect_int(lineno, key, value)?),
                    "measure" => options.measure = Some(expect_int(lineno, key, value)?),
                    "jobs" => {
                        let n = expect_int(lineno, key, value)? as usize;
                        // Typed, not a generic syntax error: the same
                        // ZeroJobs every other front door reports.
                        options = options.try_jobs(n).map_err(|_| ScenarioError::ZeroJobs)?;
                    }
                    "checkpoint_interval" => {
                        let n = expect_int(lineno, key, value)?;
                        if n == 0 {
                            // Same typed error scenario validation uses.
                            return Err(ScenarioError::ZeroCheckpointInterval);
                        }
                        checkpoint_interval = Some(n);
                    }
                    "resume_from" => {
                        let path = expect_str(lineno, key, value)?;
                        if path.is_empty() || !super::valid_note(&path) {
                            return Err(ScenarioError::InvalidResumePath(path));
                        }
                        resume_from = Some(path);
                    }
                    "kind" => kind = Some(expect_str(lineno, key, value)?),
                    "seed" => seed = Some(expect_int(lineno, key, value)?),
                    "profile" => profile = Some(expect_str(lineno, key, value)?),
                    "kernel" => kernel = Some(expect_str(lineno, key, value)?),
                    "path" => {
                        let p = expect_str(lineno, key, value)?;
                        if p.is_empty() || !super::valid_note(&p) {
                            return Err(ScenarioError::InvalidAsmPath(p));
                        }
                        path = Some(p);
                    }
                    "programs" => {
                        let n = expect_int(lineno, key, value)?;
                        if n > u32::MAX as u64 {
                            return Err(ScenarioError::WrongType {
                                line: lineno,
                                key: key.to_string(),
                                expected: "a family size that fits 32 bits",
                            });
                        }
                        programs = Some(n as u32);
                    }
                    "workloads" => match value {
                        Value::StrArray(items) => workloads = items,
                        _ => {
                            return Err(ScenarioError::WrongType {
                                line: lineno,
                                key: key.to_string(),
                                expected: "an array of strings",
                            })
                        }
                    },
                    _ => {
                        return Err(ScenarioError::UnknownKey {
                            line: lineno,
                            key: key.to_string(),
                        })
                    }
                }
            }
        }
    }

    // Kind-specific keys are meaningless under any other kind.
    let fuzz_keys = [
        ("seed", seed.is_some()),
        ("profile", profile.is_some()),
        ("programs", programs.is_some()),
    ];
    let asm_keys = [("kernel", kernel.is_some()), ("path", path.is_some())];
    let reject_fuzz_keys = || {
        fuzz_keys
            .iter()
            .find(|(_, set)| *set)
            .map_or(Ok(()), |(key, _)| {
                Err(ScenarioError::FuzzKeyWithoutKind { key })
            })
    };
    let reject_asm_keys = || {
        asm_keys
            .iter()
            .find(|(_, set)| *set)
            .map_or(Ok(()), |(key, _)| {
                Err(ScenarioError::AsmKeyWithoutKind { key })
            })
    };
    let (fuzz, asm) = match kind.as_deref() {
        None | Some("suite") => {
            reject_fuzz_keys()?;
            reject_asm_keys()?;
            (None, None)
        }
        Some("fuzz") => {
            reject_asm_keys()?;
            (
                Some(FuzzSource {
                    profile: profile.unwrap_or_else(|| "balanced".to_string()),
                    seed: seed.unwrap_or(1),
                    programs: programs.unwrap_or(8),
                }),
                None,
            )
        }
        Some("asm") => {
            reject_fuzz_keys()?;
            (None, Some(AsmSource { kernel, path }))
        }
        Some(other) => return Err(ScenarioError::UnknownKind(other.to_string())),
    };
    Ok(Scenario {
        name: name.ok_or(ScenarioError::MissingName)?,
        note,
        options,
        workloads,
        fuzz,
        asm,
        variants,
        checkpoint_interval,
        resume_from,
    })
}

fn push_variant_key(out: &mut String, key: &str, value: String) {
    out.push_str(key);
    out.push_str(" = ");
    out.push_str(&value);
    out.push('\n');
}

/// Renders the canonical `.scenario` text for a scenario.
pub fn render(s: &Scenario) -> String {
    let mut out = String::new();
    out.push_str("# regshare scenario — see README \"Defining scenarios\".\n");
    out.push_str(&format!("name = \"{}\"\n", s.name));
    if !s.note.is_empty() {
        out.push_str(&format!("note = \"{}\"\n", s.note));
    }
    if let Some(fuzz) = &s.fuzz {
        out.push_str("kind = \"fuzz\"\n");
        out.push_str(&format!("profile = \"{}\"\n", fuzz.profile));
        out.push_str(&format!("seed = {}\n", fuzz.seed));
        out.push_str(&format!("programs = {}\n", fuzz.programs));
    }
    if let Some(asm) = &s.asm {
        out.push_str("kind = \"asm\"\n");
        if let Some(kernel) = &asm.kernel {
            out.push_str(&format!("kernel = \"{kernel}\"\n"));
        }
        if let Some(path) = &asm.path {
            out.push_str(&format!("path = \"{path}\"\n"));
        }
    }
    if let Some(v) = s.options.warmup {
        out.push_str(&format!("warmup = {v}\n"));
    }
    if let Some(v) = s.options.measure {
        out.push_str(&format!("measure = {v}\n"));
    }
    if let Some(v) = s.options.jobs {
        out.push_str(&format!("jobs = {v}\n"));
    }
    if let Some(v) = s.checkpoint_interval {
        out.push_str(&format!("checkpoint_interval = {v}\n"));
    }
    if let Some(p) = &s.resume_from {
        out.push_str(&format!("resume_from = \"{p}\"\n"));
    }
    if !s.workloads.is_empty() {
        let quoted: Vec<String> = s.workloads.iter().map(|w| format!("\"{w}\"")).collect();
        out.push_str(&format!("workloads = [{}]\n", quoted.join(", ")));
    }
    for (label, spec) in &s.variants {
        out.push_str(&format!("\n[variant.{label}]\n"));
        push_variant_key(&mut out, "preset", format!("\"{}\"", spec.preset));
        for (key, v) in [
            ("me", spec.me),
            ("me_fp_moves", spec.me_fp_moves),
            ("smb", spec.smb),
            ("smb_load_load", spec.smb_load_load),
            ("smb_from_committed", spec.smb_from_committed),
        ] {
            if let Some(v) = v {
                push_variant_key(&mut out, key, v.to_string());
            }
        }
        if let Some(t) = &spec.tracker {
            push_variant_key(&mut out, "tracker", format!("\"{t}\""));
        }
        if let Some(v) = spec.isrb_entries {
            push_variant_key(&mut out, "isrb_entries", v.to_string());
        }
        if let Some(v) = spec.counter_bits {
            push_variant_key(&mut out, "counter_bits", v.to_string());
        }
        for (key, v) in [
            ("rename_ports", spec.rename_ports),
            ("reclaim_ports", spec.reclaim_ports),
            ("walk_width", spec.walk_width),
            ("tracker_entries", spec.tracker_entries),
        ] {
            if let Some(v) = v {
                push_variant_key(&mut out, key, v.to_string());
            }
        }
        if let Some(d) = &spec.distance {
            push_variant_key(&mut out, "distance", format!("\"{d}\""));
        }
        if let Some(d) = &spec.ddt {
            push_variant_key(&mut out, "ddt", format!("\"{d}\""));
        }
        for (key, v) in [
            ("frontend_width", spec.frontend_width),
            ("issue_width", spec.issue_width),
            ("commit_width", spec.commit_width),
            ("rob_entries", spec.rob_entries),
            ("iq_entries", spec.iq_entries),
            ("lq_entries", spec.lq_entries),
            ("sq_entries", spec.sq_entries),
            ("pregs_per_class", spec.pregs_per_class),
        ] {
            if let Some(v) = v {
                push_variant_key(&mut out, key, v.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{preset, AsmSource, Scenario, ScenarioError, VariantSpec, SCENARIO_PRESETS};

    #[test]
    fn worked_example_parses() {
        let text = r#"
            # ISRB sizing sweep on two workloads.
            name = "isrb_sizing"
            warmup = 1000
            measure = 4000
            workloads = ["crafty", "hmmer"]

            [variant.base]
            preset = "hpca16"

            [variant.both24]
            preset = "me_smb"
            isrb_entries = 24
        "#;
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.name, "isrb_sizing");
        assert_eq!(s.workloads, vec!["crafty", "hmmer"]);
        assert_eq!(s.variants.len(), 2);
        assert_eq!(s.variants[1].1.isrb_entries, Some(24));
        s.validate().unwrap();
    }

    #[test]
    fn every_preset_round_trips_exactly() {
        for (name, _) in SCENARIO_PRESETS {
            let s = preset(name).unwrap();
            let text = s.render();
            let back = Scenario::parse(&text).unwrap();
            assert_eq!(back, s, "value round trip for {name}");
            assert_eq!(back.render(), text, "byte-identical render for {name}");
        }
    }

    #[test]
    fn unknown_keys_duplicates_and_bad_types_are_typed_errors() {
        let base = "name = \"x\"\n[variant.v]\npreset = \"hpca16\"\n";
        assert_eq!(
            Scenario::parse(&format!("{base}isrb_size = 3\n")).unwrap_err(),
            ScenarioError::UnknownKey {
                line: 4,
                key: "isrb_size".into()
            }
        );
        assert_eq!(
            Scenario::parse(&format!("{base}me = true\nme = false\n")).unwrap_err(),
            ScenarioError::DuplicateKey {
                line: 5,
                key: "me".into()
            }
        );
        assert_eq!(
            Scenario::parse(&format!("{base}me = 3\n")).unwrap_err(),
            ScenarioError::WrongType {
                line: 4,
                key: "me".into(),
                expected: "a boolean"
            }
        );
        assert_eq!(
            Scenario::parse("note = \"no name\"\n").unwrap_err(),
            ScenarioError::MissingName
        );
        assert!(matches!(
            Scenario::parse("name = \"x\"\n[section]\n").unwrap_err(),
            ScenarioError::Syntax { line: 2, .. }
        ));
        assert_eq!(
            Scenario::parse("name = \"x\"\n[variant.v]\n[variant.v]\n").unwrap_err(),
            ScenarioError::DuplicateVariant("v".into())
        );
        // jobs = 0 is rejected here just like the CLI rejects --jobs 0,
        // keeping the Some(n) => n >= 1 invariant from every front door —
        // with the same typed error scenario validation uses.
        assert_eq!(
            Scenario::parse("name = \"x\"\njobs = 0\n").unwrap_err(),
            ScenarioError::ZeroJobs
        );
    }

    #[test]
    fn fuzz_kind_parses_renders_and_is_guarded() {
        let text = "name = \"f\"\nkind = \"fuzz\"\nprofile = \"memory\"\nseed = 7\nprograms = 3\n\n[variant.base]\npreset = \"hpca16\"\n";
        let s = Scenario::parse(text).unwrap();
        let fuzz = s.fuzz.as_ref().expect("fuzz source");
        assert_eq!(
            (fuzz.profile.as_str(), fuzz.seed, fuzz.programs),
            ("memory", 7, 3)
        );
        s.validate().unwrap();
        // Canonical render round-trips.
        let rendered = s.render();
        assert_eq!(Scenario::parse(&rendered).unwrap(), s);
        assert_eq!(Scenario::parse(&rendered).unwrap().render(), rendered);
        // Omitted fuzz keys take documented defaults.
        let s = Scenario::parse("name = \"f\"\nkind = \"fuzz\"\n[variant.v]\n").unwrap();
        let fuzz = s.fuzz.unwrap();
        assert_eq!(
            (fuzz.profile.as_str(), fuzz.seed, fuzz.programs),
            ("balanced", 1, 8)
        );
        // kind = "suite" is the explicit spelling of the default.
        assert_eq!(
            Scenario::parse("name = \"x\"\nkind = \"suite\"\n[variant.v]\n")
                .unwrap()
                .fuzz,
            None
        );
        // Typed guards.
        assert_eq!(
            Scenario::parse("name = \"x\"\nkind = \"doom\"\n").unwrap_err(),
            ScenarioError::UnknownKind("doom".into())
        );
        assert_eq!(
            Scenario::parse("name = \"x\"\nseed = 3\n").unwrap_err(),
            ScenarioError::FuzzKeyWithoutKind { key: "seed" }
        );
        assert_eq!(
            Scenario::parse("name = \"x\"\nprograms = 3\n").unwrap_err(),
            ScenarioError::FuzzKeyWithoutKind { key: "programs" }
        );
        // Out-of-range family sizes are rejected, never silently clamped.
        assert_eq!(
            Scenario::parse("name = \"x\"\nkind = \"fuzz\"\nprograms = 4294967296\n").unwrap_err(),
            ScenarioError::WrongType {
                line: 3,
                key: "programs".into(),
                expected: "a family size that fits 32 bits"
            }
        );
    }

    #[test]
    fn asm_kind_parses_renders_and_is_guarded() {
        let text = "name = \"a\"\nkind = \"asm\"\nkernel = \"quicksort\"\n\n\
                    [variant.base]\npreset = \"hpca16\"\n";
        let s = Scenario::parse(text).unwrap();
        let asm = s.asm.as_ref().expect("asm source");
        assert_eq!(asm.kernel.as_deref(), Some("quicksort"));
        assert_eq!(asm.path, None);
        s.validate().unwrap();
        // Canonical render round-trips.
        let rendered = s.render();
        assert_eq!(Scenario::parse(&rendered).unwrap(), s);
        assert_eq!(Scenario::parse(&rendered).unwrap().render(), rendered);
        // No selector keys = the whole embedded corpus.
        let s = Scenario::parse("name = \"a\"\nkind = \"asm\"\n[variant.v]\n").unwrap();
        assert_eq!(
            s.asm,
            Some(AsmSource {
                kernel: None,
                path: None
            })
        );
        assert_eq!(s.resolve_workloads().unwrap().len(), 4);
        // A path key survives the round trip too.
        let s = Scenario::parse("name = \"a\"\nkind = \"asm\"\npath = \"k.asm\"\n[variant.v]\n")
            .unwrap();
        assert_eq!(s.asm.as_ref().unwrap().path.as_deref(), Some("k.asm"));
        assert_eq!(Scenario::parse(&s.render()).unwrap(), s);
        // Typed guards.
        assert_eq!(
            Scenario::parse("name = \"a\"\nkernel = \"quicksort\"\n").unwrap_err(),
            ScenarioError::AsmKeyWithoutKind { key: "kernel" }
        );
        assert_eq!(
            Scenario::parse("name = \"a\"\nkind = \"fuzz\"\npath = \"x.asm\"\n").unwrap_err(),
            ScenarioError::AsmKeyWithoutKind { key: "path" }
        );
        assert_eq!(
            Scenario::parse("name = \"a\"\nkind = \"asm\"\nseed = 1\n").unwrap_err(),
            ScenarioError::FuzzKeyWithoutKind { key: "seed" }
        );
        assert_eq!(
            Scenario::parse("name = \"a\"\nkind = \"asm\"\npath = \"\"\n").unwrap_err(),
            ScenarioError::InvalidAsmPath(String::new())
        );
    }

    #[test]
    fn checkpoint_keys_parse_render_and_are_guarded() {
        let text = "name = \"c\"\ncheckpoint_interval = 5000\n\
                    resume_from = \"out/c.ckpt\"\n\n[variant.base]\npreset = \"hpca16\"\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.checkpoint_interval, Some(5000));
        assert_eq!(s.resume_from.as_deref(), Some("out/c.ckpt"));
        s.validate().unwrap();
        let rendered = s.render();
        assert_eq!(Scenario::parse(&rendered).unwrap(), s);
        assert_eq!(Scenario::parse(&rendered).unwrap().render(), rendered);
        // A zero interval is the same typed error validation reports.
        assert_eq!(
            Scenario::parse("name = \"c\"\ncheckpoint_interval = 0\n").unwrap_err(),
            ScenarioError::ZeroCheckpointInterval
        );
        // An unrenderable resume path is refused at the parse boundary.
        assert_eq!(
            Scenario::parse("name = \"c\"\nresume_from = \"\"\n").unwrap_err(),
            ScenarioError::InvalidResumePath(String::new())
        );
    }

    #[test]
    fn default_spec_renders_only_its_preset() {
        let s = Scenario {
            name: "min".into(),
            note: String::new(),
            options: Default::default(),
            workloads: vec![],
            fuzz: None,
            asm: None,
            variants: vec![("only".into(), VariantSpec::hpca16())],
            checkpoint_interval: None,
            resume_from: None,
        };
        let text = s.render();
        assert!(text.contains("[variant.only]\npreset = \"hpca16\"\n"));
        assert_eq!(Scenario::parse(&text).unwrap(), s);
    }
}

//! Checkpoint/resume equivalence: for every checked-in scenario × variant,
//! a run that is snapshotted mid-flight, restored into a fresh simulator,
//! and finished must be indistinguishable from the uninterrupted run —
//! same committed architectural digest, same statistics (including cycle
//! counts), clean register accounting.
//!
//! This is the correctness contract of `Simulator::save_snapshot` /
//! `Simulator::resume_from`: a snapshot captures the *complete* machine,
//! so resuming replays the remainder byte-for-byte. Anything the snapshot
//! forgets (a predictor table, a wheel event, a free-list pointer) shows
//! up here as a digest or stats divergence.
//!
//! The digests are also cross-checked against `tests/golden_digests.txt`
//! where the cells overlap, tying resume correctness to the same goldens
//! the plain runs are pinned to.

use regshare::bench::Scenario;
use regshare::core::Simulator;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Same committed window as `digest_stability`, so the final digests can
/// be cross-checked against its goldens.
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 4_000;
const TOTAL: u64 = WARMUP + MEASURE;

/// Mid-run snapshot points, in cycles. Chosen so even the fastest
/// configuration (IPC ≈ 3.5) is still well short of the `TOTAL` commit
/// budget at the later point, while the slowest is past warmup activity
/// (live checkpoints, in-flight loads, populated wheel slots).
const SNAPSHOT_CYCLES: [u64; 2] = [250, 800];

/// One workload per scenario keeps the matrix cheap; the scenario ×
/// variant spread is what exercises the distinct machine states.
const WORKLOAD_CAP: usize = 1;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn scenario_paths() -> Vec<PathBuf> {
    let dir = repo_root().join("scenarios");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir:?}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .scenario files in {dir:?}");
    paths
}

/// `scenario/workload/variant → digest` from the checked-in goldens.
fn golden_digests() -> HashMap<String, u64> {
    let path = repo_root().join("tests/golden_digests.txt");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    text.lines()
        .filter_map(|l| {
            let (cell, hex) = l.rsplit_once(' ')?;
            Some((cell.to_string(), u64::from_str_radix(hex, 16).ok()?))
        })
        .collect()
}

#[test]
fn resumed_runs_match_uninterrupted_runs() {
    let goldens = golden_digests();
    let mut cells = 0usize;
    for path in scenario_paths() {
        let scenario = Scenario::load(path.to_str().expect("utf-8 path"))
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let workloads = scenario
            .resolve_workloads()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        for wl in workloads.iter().take(WORKLOAD_CAP) {
            let program = wl.build();
            for (label, spec) in &scenario.variants {
                let cell = format!("{}/{}/{label}", scenario.name, wl.name);
                let cfg = spec.to_config().unwrap_or_else(|e| panic!("{cell}: {e}"));

                // Uninterrupted reference run.
                let mut reference = Simulator::new(&program, cfg.clone());
                let ref_stats = reference.run(TOTAL);
                if let Some(&golden) = goldens.get(&cell) {
                    assert_eq!(
                        reference.arch_digest(),
                        golden,
                        "{cell}: reference run diverged from golden digest"
                    );
                }

                for k in SNAPSHOT_CYCLES {
                    // Run to the snapshot point, save, and discard.
                    let mut a = Simulator::new(&program, cfg.clone());
                    a.run_cycles(k);
                    let bytes = a.save_snapshot();
                    drop(a);

                    // Restore into a fresh machine and finish the run.
                    let mut b = Simulator::resume_from(&program, cfg.clone(), &bytes)
                        .unwrap_or_else(|e| panic!("{cell} @ {k}: resume failed: {e}"));
                    assert_eq!(
                        b.save_snapshot(),
                        bytes,
                        "{cell} @ {k}: re-saving a just-restored machine \
                         must reproduce the snapshot bytes"
                    );
                    let committed = b.stats().committed;
                    assert!(
                        committed < TOTAL,
                        "{cell} @ {k}: snapshot point past the commit budget \
                         ({committed} ≥ {TOTAL}); lower SNAPSHOT_CYCLES"
                    );
                    let resumed_stats = b.run(TOTAL - committed);

                    assert_eq!(
                        b.arch_digest(),
                        reference.arch_digest(),
                        "{cell} @ {k}: resumed run committed a different \
                         architectural trace"
                    );
                    assert_eq!(
                        resumed_stats, ref_stats,
                        "{cell} @ {k}: resumed run statistics diverged"
                    );
                    b.audit_registers()
                        .unwrap_or_else(|e| panic!("{cell} @ {k}: register audit failed: {e}"));
                }
                cells += 1;
            }
        }
    }
    assert!(cells >= 8, "scenario matrix shrank to {cells} cells");
}

//! The `regshare` micro-op ISA, static programs and their interpreter.
//!
//! The paper evaluates on x86_64/gem5; this crate provides the equivalent
//! substrate: a compact, renamable micro-op ISA with 16 INT + 16 FP
//! architectural registers, x86-style move semantics (32/64-bit moves are
//! *true* moves and eliminable, 8/16-bit moves are *merge* µ-ops that also
//! read their destination and are not eliminable), loads/stores of 1–8
//! bytes, and control flow (conditional branches, jumps, calls, returns).
//!
//! Programs are real control-flow graphs executed by [`interp::Machine`];
//! the [`stream::FetchStream`] wrapper is what the out-of-order core
//! consumes: it serves correct-path micro-ops from an *oracle* in-order
//! interpreter, genuinely executes wrong paths after branch mispredictions
//! (forked register state + copy-on-write memory overlay), and supports
//! redirect/replay for pipeline flushes.
//!
//! # Examples
//!
//! ```
//! use regshare_isa::program::{Program, ProgramBuilder};
//! use regshare_isa::interp::Machine;
//! use regshare_isa::op::{Op, Operand, AluOp};
//! use regshare_types::ArchReg;
//!
//! let mut b = ProgramBuilder::new();
//! let r0 = ArchReg::int(0);
//! b.push(Op::LoadImm { dst: r0, imm: 5 });
//! b.push(Op::IntAlu { op: AluOp::Add, dst: r0, src1: r0, src2: Operand::Imm(1) });
//! b.push(Op::Halt);
//! let program = b.build();
//! let mut m = Machine::new(std::sync::Arc::new(program));
//! let _ = m.step(); // LoadImm
//! let uop = m.step(); // Add
//! assert_eq!(uop.result, 6);
//! ```

#![deny(missing_docs)]

pub mod asm;
pub mod interp;
pub mod mem;
pub mod op;
pub mod program;
pub mod stream;

pub use asm::{assemble, AsmError};
pub use interp::Machine;
pub use op::{
    AluOp, BranchOutcome, Cond, DynUop, ExecClass, MemRef, MoveWidth, Op, Operand, UopKind,
};
pub use program::{Program, ProgramBuilder};
pub use stream::{stream_cache_stats, FetchStream, StreamCacheStats};

//! **Figure 7** + §6.3: ME and SMB combined, as a function of ISRB size,
//! plus the counter-width study and the ISRB traffic statistics.
//!
//! Paper shape: with 32 entries combined performance is often higher than
//! either mechanism alone and ≈ unlimited (5.5% vs 5.6% geomean in the
//! paper); 24 entries is a good tradeoff; 16 entries often loses to the
//! best single mechanism because ME and SMB compete for entries. 3-bit
//! counters are within ~0.1% gmean of 32-bit. Mean µ-op distance between
//! ISRB allocations ≈ 20; between reclaim CAM checks ≈ 3-4.
//!
//! The main matrix is the `fig7_combined` preset scenario; the §6.3
//! counter-width study is a second scenario built inline with the
//! `counter_bits` knob on a representative subset.

use regshare_bench::{preset, Scenario, Table, VariantSpec};
use regshare_types::stats::speedup_pct;

const SIZES: [(usize, &str); 4] = [
    (16, "both16"),
    (24, "both24"),
    (32, "both32"),
    (0, "bothUnl"),
];
const WIDTH_SUBSET: [&str; 6] = ["crafty", "hmmer", "astar", "applu", "namd", "bzip"];
const WIDTHS: [(u32, &str); 5] = [(1, "w1"), (2, "w2"), (3, "w3"), (4, "w4"), (31, "w31")];

fn main() {
    let scenario = preset("fig7_combined").expect("built-in scenario");
    let grid = scenario
        .to_sweep()
        .expect("preset validates")
        .run()
        .expect("sweep completes");

    let mut t = Table::new(vec![
        "bench",
        "both16%",
        "both24%",
        "both32%",
        "bothUnl%",
        "me_only%",
        "smb_only%",
    ]);
    let mut share_dist = Vec::new();
    let mut cam_dist = Vec::new();
    for row in grid.rows() {
        let mut cells = vec![row.workload().name.clone()];
        for (_, label) in SIZES {
            cells.push(format!(
                "{:+.2}",
                row.speedup("base", label).expect("declared label")
            ));
        }
        cells.push(format!(
            "{:+.2}",
            row.speedup("base", "meUnl").expect("declared label")
        ));
        cells.push(format!(
            "{:+.2}",
            row.speedup("base", "smbUnl").expect("declared label")
        ));
        t.row(cells);
        let m32 = row.get("both32").expect("declared label");
        if let Some(d) = m32.stats.share_distance.mean() {
            share_dist.push(d);
        }
        if let Some(d) = m32.stats.reclaim_check_distance.mean() {
            cam_dist.push(d);
        }
    }
    for (label, pretty) in [
        ("both16", "both-16"),
        ("both24", "both-24"),
        ("both32", "both-32"),
        ("bothUnl", "both-unl"),
        ("meUnl", "me-only-unl"),
        ("smbUnl", "smb-only-unl"),
    ] {
        t.footer(format!(
            "geomean speedup, {pretty}: {:+.2}%",
            grid.geomean_speedup("base", label).expect("declared label")
        ));
    }
    println!("# Figure 7: ME + SMB combined vs ISRB size\n");
    t.print();

    // §6.3 counter width study on a representative subset (baseline IPCs are
    // reused from the main grid; only the width variants run here).
    println!("\n# §6.3: counter width (32-entry ISRB, ME+SMB)\n");
    let mut b = Scenario::builder("fig7_counter_width")
        .options(scenario.options)
        .workloads(&WIDTH_SUBSET);
    for (bits, label) in WIDTHS {
        b = b.variant(
            label,
            VariantSpec::preset("me_smb")
                .isrb_entries(32)
                .counter_bits(bits),
        );
    }
    let wgrid = b
        .build()
        .expect("width-study scenario validates")
        .to_sweep()
        .expect("validated")
        .run()
        .expect("sweep completes");
    let mut tw = Table::new(vec!["bench", "1bit%", "2bit%", "3bit%", "4bit%", "31bit%"]);
    for row in wgrid.rows() {
        let base = grid
            .by_name(&row.workload().name, "base")
            .expect("subset workload present in main sweep");
        let mut cells = vec![row.workload().name.clone()];
        for (_, label) in WIDTHS {
            cells.push(format!(
                "{:+.2}",
                speedup_pct(base.ipc(), row.get(label).expect("declared label").ipc())
            ));
        }
        tw.row(cells);
    }
    tw.print();

    // §6.3 ISRB traffic.
    println!("\n# §6.3: ISRB traffic (32-entry, ME+SMB)");
    println!(
        "mean µ-op distance between ISRB allocations:   {:.1} (paper: 19.7, min 3.8)",
        share_dist.iter().sum::<f64>() / share_dist.len().max(1) as f64
    );
    println!(
        "mean µ-op distance between reclaim CAM checks: {:.1} (paper: 3.4, min 2.3)",
        cam_dist.iter().sum::<f64>() / cam_dist.len().max(1) as f64
    );
}
